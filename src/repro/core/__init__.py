"""Public facade: one-call builders for every configuration in the paper.

The same environment script can drive three worlds:

* ``ideal``   — dummy parties over the ideal functionality (the left-hand
  side of each "Π realizes F" statement);
* ``hybrid``  — the protocol over ideal lower functionalities (the
  setting in which each lemma/theorem is stated);
* ``composed`` — the protocol over *realized* lower layers, i.e. the
  fully-composed world of Corollary 1
  (ΠSBC over ΠUBC and ΠTLE-over-ΠFBC-over-ΠUBC, resource-metered).

Example:
    >>> from repro.core import build_sbc_stack
    >>> stack = build_sbc_stack(n=4, mode="hybrid", seed=7)
    >>> stack.parties["P0"].broadcast(b"hello")
    >>> stack.run_until_delivery()
    >>> stack.outputs()["P3"]
    [b'hello']
"""

from repro.core.repeated import RepeatedSBC, RepeatedSBCParty
from repro.core.stacks import (
    SBC_DEFAULTS,
    DURSStack,
    SBCStack,
    TLEStack,
    VotingStack,
    build_durs_stack,
    build_fbc_fixture,
    build_sbc_stack,
    build_tle_stack,
    build_voting_stack,
)

__all__ = [
    "DURSStack",
    "RepeatedSBC",
    "RepeatedSBCParty",
    "SBCStack",
    "SBC_DEFAULTS",
    "TLEStack",
    "VotingStack",
    "build_durs_stack",
    "build_fbc_fixture",
    "build_sbc_stack",
    "build_tle_stack",
    "build_voting_stack",
]
