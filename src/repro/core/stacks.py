"""Stack builders: assemble ideal / hybrid / composed worlds.

Every builder accepts ``backend=`` (name or
:class:`~repro.runtime.backend.ExecutionBackend`) selecting the execution
runtime for the session, and ``trace=`` to override its trace mode; the
default (``sequential``) reproduces the reference engine byte-for-byte.
See ARCHITECTURE.md for the full layer map.

Layer plumbing (composed SBC, the Corollary 1 world)::

    SBCParty … SBCParty                      (top-of-stack parties)
        └── SBCProtocolAdapter (ΠSBC)
              ├── UnfairBroadcast or ΠUBC    (session messages + Wake_Up)
              ├── RandomOracle (equivocation, digest = SBC msg_len)
              └── TLEProtocolAdapter (ΠTLE)
                    ├── RandomOracle (digest = TLE msg_len)
                    ├── QueryWrapper Wq(F*RO)   (TLE puzzle metering)
                    └── FBCProtocolAdapter (ΠFBC)
                          ├── UnfairBroadcast or ΠUBC
                          ├── RandomOracle (digest = FBC msg_len)
                          └── QueryWrapper Wq(F*RO)  (FBC puzzle metering)

Each wrapped oracle is a *separate* instance — in UC each subroutine
session has its own resource budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.functionalities.certification import Certification
from repro.functionalities.dummy import (
    DummyBroadcastParty,
    DummyTLEParty,
    DummyURSParty,
    DummyVoterParty,
)
from repro.functionalities.durs import DelayedURS
from repro.functionalities.fbc import FairBroadcast
from repro.functionalities.keygen import AuthorityKeyGen, VoterKeyGen
from repro.functionalities.random_oracle import RandomOracle
from repro.functionalities.sbc import SimultaneousBroadcast
from repro.functionalities.tle import TimeLockEncryption
from repro.functionalities.ubc import UnfairBroadcast
from repro.functionalities.voting import VotingSystem
from repro.functionalities.wrapper import QueryWrapper
from repro.protocols.durs_protocol import make_durs_network
from repro.protocols.fbc_protocol import FBCProtocolAdapter
from repro.protocols.sbc_protocol import SBCParty, SBCProtocolAdapter
from repro.protocols.tle_protocol import TLEProtocolAdapter
from repro.protocols.ubc_protocol import UBCProtocolAdapter
from repro.protocols.voting_protocol import AuthorityParty, Election, VoterParty
from repro.runtime.backend import ExecutionBackend
from repro.uc.adversary import Adversary
from repro.uc.environment import Environment
from repro.uc.session import Session

#: A backend argument: a registry name, an instance, or None (default).
BackendArg = Union[str, ExecutionBackend, None]

#: Corollary 1 default parameters: Φ > 3, ∆ > 2, α = 3.
SBC_DEFAULTS = {"phi": 5, "delta": 3, "q": 4}

#: Wire sizes per layer (bytes).  FBC carries ΠTLE's puzzle ciphertexts,
#: which grow with q·τdec, hence the large FBC frame.
MSG_LEN_SBC = 192
MSG_LEN_TLE = 128
MSG_LEN_FBC = 8192


@dataclass
class _BaseStack:
    session: Session
    env: Environment
    parties: Dict[str, Any]
    mode: str

    def outputs(self) -> Dict[str, List[Any]]:
        """pid -> outputs handed to Z so far."""
        return {pid: list(party.outputs) for pid, party in self.parties.items()}

    def run_rounds(self, count: int) -> int:
        """Advance ``count`` empty rounds."""
        return self.env.run_rounds(count)


def _modes(mode: str, allowed: Sequence[str]) -> None:
    if mode not in allowed:
        raise ValueError(f"mode must be one of {list(allowed)}, got {mode!r}")


# ---------------------------------------------------------------------------
# FBC fixture (used by FBC tests/benches and by the composed TLE stack)
# ---------------------------------------------------------------------------


@dataclass
class FBCFixture:
    """A ΠFBC instance with its UBC, wrapper and oracles."""

    fbc: FBCProtocolAdapter
    ubc: Any
    wrapper: QueryWrapper
    oracle: RandomOracle
    star_oracle: RandomOracle


def build_fbc_fixture(
    session: Session,
    q: int,
    msg_len: int = MSG_LEN_FBC,
    real_ubc: bool = False,
    tag: str = "fbc",
) -> FBCFixture:
    """Assemble ΠFBC over (ideal or ΠUBC) unfair broadcast in ``session``."""
    ubc = (
        UBCProtocolAdapter(session, fid=f"PiUBC:{tag}")
        if real_ubc
        else UnfairBroadcast(session, fid=f"FUBC:{tag}")
    )
    star = RandomOracle(session, fid=f"F*RO:{tag}")
    wrapper = QueryWrapper(session, star, q=q, fid=f"Wq:{tag}")
    oracle = RandomOracle(session, fid=f"FRO:{tag}", digest_size=msg_len)
    fbc = FBCProtocolAdapter(
        session, ubc=ubc, wrapper=wrapper, oracle=oracle, msg_len=msg_len,
        fid=f"PiFBC:{tag}",
    )
    return FBCFixture(fbc=fbc, ubc=ubc, wrapper=wrapper, oracle=oracle, star_oracle=star)


# ---------------------------------------------------------------------------
# TLE stack
# ---------------------------------------------------------------------------


@dataclass
class TLEStack(_BaseStack):
    tle: Any = None
    fbc: Optional[Any] = None
    wrapper: Optional[QueryWrapper] = None

    def enc(self, pid: str, message: Any, tau: int) -> str:
        return self.parties[pid].enc(message, tau)

    def dec(self, pid: str, ciphertext: Any, tau: int) -> Any:
        return self.parties[pid].dec(ciphertext, tau)


def build_tle_stack(
    n: int = 3,
    mode: str = "hybrid",
    seed: int = 0,
    q: int = 4,
    delta: int = 2,
    alpha: int = 2,
    msg_len: int = MSG_LEN_TLE,
    adversary: Optional[Adversary] = None,
    backend: "BackendArg" = None,
    trace: Optional[str] = None,
) -> TLEStack:
    """Build a TLE world.

    Modes:
        * ``ideal``  — dummies over ``FTLE`` (leak = Cl + α, delay = ∆ + 1);
        * ``hybrid`` — ΠTLE over the ideal ``F∆,α_FBC`` (Theorem 1);
        * ``composed`` — ΠTLE over ΠFBC over ideal ``FUBC`` (∆ = α = 2).
    """
    _modes(mode, ("ideal", "hybrid", "composed"))
    session = Session(sid=f"tle-{mode}", seed=seed, adversary=adversary, backend=backend, trace=trace)
    pids = [f"P{i}" for i in range(n)]
    fbc = None
    wrapper = None
    if mode == "ideal":
        tle = TimeLockEncryption(
            session, leak=lambda cl: cl + alpha, delay=delta + 1, fid="FTLE"
        )
        parties = {pid: DummyTLEParty(session, pid, tle) for pid in pids}
    else:
        if mode == "hybrid":
            fbc = FairBroadcast(session, delta=delta, alpha=alpha, fid="FFBC")
        else:
            fixture = build_fbc_fixture(session, q=q)
            fbc = fixture.fbc
            wrapper = fixture.wrapper
        star = RandomOracle(session, fid="F*RO:tle")
        tle_wrapper = QueryWrapper(session, star, q=q, fid="Wq:tle")
        oracle = RandomOracle(session, fid="FRO:tle", digest_size=msg_len)
        tle = TLEProtocolAdapter(
            session, fbc=fbc, wrapper=tle_wrapper, oracle=oracle, msg_len=msg_len
        )
        parties = {}
        for pid in pids:
            party = DummyTLEParty(session, pid, tle)
            tle.attach(party)
            parties[pid] = party
        wrapper = wrapper or tle_wrapper
    env = Environment(session)
    return TLEStack(
        session=session, env=env, parties=parties, mode=mode,
        tle=tle, fbc=fbc, wrapper=wrapper,
    )


# ---------------------------------------------------------------------------
# SBC stack
# ---------------------------------------------------------------------------


@dataclass
class SBCStack(_BaseStack):
    sbc: Any = None
    ubc: Optional[Any] = None
    tle: Optional[Any] = None
    phi: int = 0
    delta: int = 0

    @property
    def delivery_round(self) -> int:
        """Round at which outputs appear, assuming the period opens at 0."""
        return self.phi + self.delta

    def run_until_delivery(self, slack: int = 2) -> int:
        """Run rounds until every honest party has produced an output."""
        target = self.delivery_round + slack

        def done(session: Session) -> bool:
            return all(
                party.outputs
                for pid, party in self.parties.items()
                if not session.is_corrupted(pid)
            )

        return self.env.run_until(done, max_rounds=target + 20)

    def delivered(self) -> Dict[str, List[Any]]:
        """pid -> the delivered message batch (last Broadcast output)."""
        result = {}
        for pid, party in self.parties.items():
            batches = [o[1] for o in party.outputs if o and o[0] == "Broadcast"]
            result[pid] = batches[-1] if batches else None
        return result


def build_sbc_stack(
    n: int = 4,
    mode: str = "hybrid",
    seed: int = 0,
    phi: int = SBC_DEFAULTS["phi"],
    delta: int = SBC_DEFAULTS["delta"],
    q: int = SBC_DEFAULTS["q"],
    msg_len: int = MSG_LEN_SBC,
    adversary: Optional[Adversary] = None,
    backend: "BackendArg" = None,
    trace: Optional[str] = None,
) -> SBCStack:
    """Build an SBC world.

    Modes:
        * ``ideal``   — dummies over ``FΦ,∆,α_SBC`` (α = 2, matching the
          hybrid world's simulator advantage);
        * ``hybrid``  — ΠSBC over ideal ``FUBC`` + ``FTLE`` + ``FRO``
          (Theorem 2; ideal FTLE has leak = Cl + 1, so α = 2, ∆ ≥ 2);
        * ``composed`` — the Corollary 1 world: ΠSBC over ΠUBC and
          ΠTLE-over-ΠFBC-over-ΠUBC (α = 3, ∆ ≥ 3, Φ > 3).
    """
    _modes(mode, ("ideal", "hybrid", "composed"))
    session = Session(sid=f"sbc-{mode}", seed=seed, adversary=adversary, backend=backend, trace=trace)
    pids = [f"P{i}" for i in range(n)]
    ubc = None
    tle = None
    if mode == "ideal":
        alpha = 2
        sbc = SimultaneousBroadcast(session, phi=phi, delta=delta, alpha=alpha)
        parties = {pid: DummyBroadcastParty(session, pid, sbc) for pid in pids}
    else:
        ubc = UnfairBroadcast(session, fid="FUBC:sbc")
        if mode == "hybrid":
            tle = TimeLockEncryption(session, leak=lambda cl: cl + 1, delay=1, fid="FTLE")
        else:
            fixture = build_fbc_fixture(session, q=q)
            star = RandomOracle(session, fid="F*RO:tle")
            tle_wrapper = QueryWrapper(session, star, q=q, fid="Wq:tle")
            tle_oracle = RandomOracle(session, fid="FRO:tle", digest_size=MSG_LEN_TLE)
            tle = TLEProtocolAdapter(
                session,
                fbc=fixture.fbc,
                wrapper=tle_wrapper,
                oracle=tle_oracle,
                msg_len=MSG_LEN_TLE,
            )
        oracle = RandomOracle(session, fid="FRO:sbc", digest_size=msg_len)
        sbc = SBCProtocolAdapter(
            session, ubc=ubc, tle=tle, oracle=oracle,
            phi=phi, delta=delta, msg_len=msg_len,
        )
        parties = {pid: SBCParty(session, pid, sbc) for pid in pids}
    env = Environment(session)
    return SBCStack(
        session=session, env=env, parties=parties, mode=mode,
        sbc=sbc, ubc=ubc, tle=tle, phi=phi, delta=delta,
    )


# ---------------------------------------------------------------------------
# DURS stack
# ---------------------------------------------------------------------------


@dataclass
class DURSStack(_BaseStack):
    durs_or_sbc: Any = None
    phi: int = 0
    delta: int = 0

    def urs_values(self) -> Dict[str, Optional[bytes]]:
        """pid -> the URS each party output (None if not yet)."""
        result = {}
        for pid, party in self.parties.items():
            values = [o[1] for o in party.outputs if o and o[0] == "URS"]
            result[pid] = values[-1] if values else None
        return result

    def run_until_urs(self) -> int:
        """Run until every honest party that *requested* the URS has it."""

        def done(session: Session) -> bool:
            requesters = [
                party
                for pid, party in self.parties.items()
                if not session.is_corrupted(pid) and getattr(party, "waiting", False)
            ]
            return bool(requesters) and all(party.outputs for party in requesters)

        return self.env.run_until(done, max_rounds=self.phi + self.delta + 25)


def build_durs_stack(
    n: int = 4,
    mode: str = "hybrid",
    seed: int = 0,
    phi: int = 3,
    delta: int = 6,
    alpha: int = 2,
    q: int = SBC_DEFAULTS["q"],
    adversary: Optional[Adversary] = None,
    backend: "BackendArg" = None,
    trace: Optional[str] = None,
) -> DURSStack:
    """Build a DURS world.

    Modes:
        * ``ideal``  — dummies over ``F∆,α_DURS``;
        * ``hybrid`` — ΠDURS over the ideal ``F^{Φ,∆−Φ,α}_SBC`` (Thm 3,
          needs ∆ > Φ > 0 and ∆ − Φ ≥ α);
        * ``composed`` — ΠDURS over the full ΠSBC stack of Corollary 1
          (needs Φ > 3 and ∆ − Φ ≥ 3, since the composed SBC has α = 3).
    """
    _modes(mode, ("ideal", "hybrid", "composed"))
    if mode != "ideal" and not (delta > phi > 0 and delta - phi >= alpha):
        raise ValueError("Theorem 3 requires delta > phi > 0 and delta - phi >= alpha")
    session = Session(sid=f"durs-{mode}", seed=seed, adversary=adversary, backend=backend, trace=trace)
    pids = [f"P{i}" for i in range(n)]
    if mode == "ideal":
        durs = DelayedURS(session, delta=delta, alpha=alpha)
        parties = {pid: DummyURSParty(session, pid, durs) for pid in pids}
        service = durs
    elif mode == "composed":
        sbc = _composed_sbc_service(
            session, phi=phi, delta=delta - phi, q=q, tag="durs"
        )
        parties = make_durs_network(session, pids, sbc)
        service = sbc
    else:
        sbc = SimultaneousBroadcast(
            session, phi=phi, delta=delta - phi, alpha=alpha, fid="FSBC:durs"
        )
        parties = make_durs_network(session, pids, sbc)
        service = sbc
    env = Environment(session)
    return DURSStack(
        session=session, env=env, parties=parties, mode=mode,
        durs_or_sbc=service, phi=phi, delta=delta,
    )


def _composed_sbc_service(
    session: Session, phi: int, delta: int, q: int, tag: str,
    msg_len: int = MSG_LEN_SBC,
) -> SBCProtocolAdapter:
    """Assemble the Corollary 1 SBC stack as a service inside ``session``.

    Used by application builders (DURS, voting) whose protocols sit on
    top of SBC: the returned adapter is a drop-in for the ideal
    ``SimultaneousBroadcast``.
    """
    ubc = UnfairBroadcast(session, fid=f"FUBC:sbc:{tag}")
    fixture = build_fbc_fixture(session, q=q, tag=f"fbc:{tag}")
    star = RandomOracle(session, fid=f"F*RO:tle:{tag}")
    tle_wrapper = QueryWrapper(session, star, q=q, fid=f"Wq:tle:{tag}")
    tle_oracle = RandomOracle(
        session, fid=f"FRO:tle:{tag}", digest_size=MSG_LEN_TLE
    )
    tle = TLEProtocolAdapter(
        session, fbc=fixture.fbc, wrapper=tle_wrapper, oracle=tle_oracle,
        msg_len=MSG_LEN_TLE, fid=f"PiTLE:{tag}",
    )
    oracle = RandomOracle(session, fid=f"FRO:sbc:{tag}", digest_size=msg_len)
    return SBCProtocolAdapter(
        session, ubc=ubc, tle=tle, oracle=oracle,
        phi=phi, delta=delta, msg_len=msg_len, fid=f"PiSBC:{tag}",
    )


# ---------------------------------------------------------------------------
# Voting stack
# ---------------------------------------------------------------------------


@dataclass
class VotingStack(_BaseStack):
    election: Optional[Election] = None
    authorities: Dict[str, AuthorityParty] = field(default_factory=dict)
    service: Any = None
    phi: int = 0
    delta: int = 0

    def results(self) -> Dict[str, Any]:
        """pid -> the tally each voter output (None if not yet)."""
        out = {}
        for pid, party in self.parties.items():
            values = [o[1] for o in party.outputs if o and o[0] == "Result"]
            out[pid] = values[-1] if values else None
        return out

    def run_until_result(self) -> int:
        def done(session: Session) -> bool:
            return all(
                party.outputs
                for pid, party in self.parties.items()
                if not session.is_corrupted(pid)
            )

        return self.env.run_until(done, max_rounds=self.phi + self.delta + 30)


def build_voting_stack(
    voters: int = 3,
    authorities: int = 2,
    candidates: Sequence[str] = ("yes", "no"),
    mode: str = "hybrid",
    seed: int = 0,
    phi: int = 4,
    delta: int = 2,
    alpha: int = 2,
    q: int = SBC_DEFAULTS["q"],
    adversary: Optional[Adversary] = None,
    backend: "BackendArg" = None,
    trace: Optional[str] = None,
) -> VotingStack:
    """Build a voting world.

    Modes:
        * ``ideal``  — dummy voters over ``FΦ,∆,α_VS`` (vote values are
          candidate labels);
        * ``hybrid`` — ΠSTVS over the ideal ``FSBC`` + RBC + FPKG + FSKG
          (Theorem 4);
        * ``composed`` — ΠSTVS over the full ΠSBC stack (needs Φ > 3 and
          ∆ > 2, the Corollary 1 minima; ballots are ~1 KiB so the SBC
          frame is widened).
    """
    _modes(mode, ("ideal", "hybrid", "composed"))
    session = Session(sid=f"vote-{mode}", seed=seed, adversary=adversary, backend=backend, trace=trace)
    voter_pids = [f"V{i}" for i in range(voters)]
    election = Election(voters=tuple(voter_pids), candidates=tuple(candidates))
    authority_parties: Dict[str, AuthorityParty] = {}
    if mode == "ideal":
        vs = VotingSystem(
            session, phi=phi, delta=delta, alpha=alpha,
            valid_votes=list(candidates),
        )
        parties = {pid: DummyVoterParty(session, pid, vs) for pid in voter_pids}
        service = vs
    else:
        from repro.functionalities.rbc import RelaxedBroadcast

        if mode == "composed":
            sbc = _composed_sbc_service(
                session, phi=phi, delta=delta, q=q, tag="vote",
                msg_len=4096,
            )
        else:
            sbc = SimultaneousBroadcast(
                session, phi=phi, delta=delta, alpha=alpha, fid="FSBC:vote",
            )
        pkg = VoterKeyGen(session)
        skg = AuthorityKeyGen(session)
        oracle = RandomOracle(session, fid="FRO:vote")
        certs = {
            pid: Certification(session, signer=pid, fid=f"Fcert:vote:{pid}")
            for pid in voter_pids
        }
        authority_pids = [f"A{j}" for j in range(authorities)]
        rbcs = {
            pid: RelaxedBroadcast(session, fid=f"FRBC:vote:{pid}")
            for pid in authority_pids
        }
        parties = {
            pid: VoterParty(
                session, pid, election=election, sbc=sbc, pkg=pkg, skg=skg,
                authority_rbcs=rbcs, certs=certs, oracle=oracle,
            )
            for pid in voter_pids
        }
        authority_parties = {
            pid: AuthorityParty(
                session, pid, election=election, pkg=pkg, skg=skg, rbc=rbcs[pid]
            )
            for pid in authority_pids
        }
        service = sbc
    env = Environment(session)
    return VotingStack(
        session=session, env=env, parties=parties, mode=mode,
        election=election, authorities=authority_parties, service=service,
        phi=phi, delta=delta,
    )
