"""Repeated SBC sessions over a shared substrate ([FKL08]'s concern).

Faust–Käsper–Lucks observed that simultaneous broadcast is typically run
*repeatedly* (every round of an MPC, every lottery draw) and optimized
the amortized cost.  The analogue here: consecutive broadcast periods can
share the expensive substrate — the clock, the UBC channel, the TLE
service and the oracles — with only the light per-period protocol state
(one :class:`~repro.protocols.sbc_protocol.SBCProtocolAdapter`) renewed.

:class:`RepeatedSBC` chains periods inside one session; benchmark E13
compares the marginal per-period cost against cold-started sessions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.stacks import MSG_LEN_SBC
from repro.functionalities.random_oracle import RandomOracle
from repro.functionalities.tle import TimeLockEncryption
from repro.functionalities.ubc import UnfairBroadcast
from repro.protocols.sbc_protocol import SBCProtocolAdapter
from repro.uc.entity import Functionality, Party
from repro.uc.environment import Environment
from repro.uc.session import Session


class RepeatedSBCParty(Party):
    """A party that can join one SBC period after another."""

    def __init__(self, session: Session, pid: str) -> None:
        super().__init__(session, pid)
        self.current: Optional[Functionality] = None

    def join(self, adapter: SBCProtocolAdapter) -> None:
        """Enter a new period: rewire routes and the clock chain."""
        if self.current is not None and self.current in self.clock_recipients:
            self.clock_recipients.remove(self.current)
        self.current = adapter
        adapter.attach(self)
        self.route[adapter.fid] = lambda message, source: self.output(
            (adapter.fid, message)
        )
        if adapter not in self.clock_recipients:
            self.clock_recipients.append(adapter)

    def broadcast(self, message: Any) -> None:
        """Broadcast within the current period."""
        if self.current is None:
            raise RuntimeError("party has not joined a period")
        self.current.broadcast(self, message)


class RepeatedSBC:
    """Run k consecutive SBC periods in one session.

    Args:
        n: Number of parties.
        seed: Session seed.
        phi: Period length Φ.
        delta: Release delay ∆.
        backend: Execution backend name/instance (default ``sequential``).
        trace: Trace-mode override (``"full"`` / ``"light"``).

    The substrate (FUBC, ideal FTLE, the masking oracle) is created once;
    each :meth:`run_period` spins a fresh period adapter over it.
    """

    def __init__(
        self,
        n: int = 3,
        seed: int = 0,
        phi: int = 4,
        delta: int = 2,
        backend=None,
        trace=None,
    ) -> None:
        self.session = Session(sid="sbc-repeated", seed=seed, backend=backend, trace=trace)
        self.phi = phi
        self.delta = delta
        self.ubc = UnfairBroadcast(self.session, fid="FUBC:rep")
        self.tle = TimeLockEncryption(
            self.session, leak=lambda cl: cl + 1, delay=1, fid="FTLE:rep"
        )
        self.oracle = RandomOracle(self.session, fid="FRO:rep", digest_size=MSG_LEN_SBC)
        self.parties = {
            f"P{i}": RepeatedSBCParty(self.session, f"P{i}") for i in range(n)
        }
        self.env = Environment(self.session)
        self.periods_run = 0

    def run_period(self, messages: Dict[str, Any]) -> Dict[str, List[Any]]:
        """Run one full broadcast period; returns pid -> delivered batch.

        Args:
            messages: pid -> the message that party broadcasts this period.
        """
        index = self.periods_run
        self.periods_run += 1
        adapter = SBCProtocolAdapter(
            self.session,
            ubc=self.ubc,
            tle=self.tle,
            oracle=self.oracle,
            phi=self.phi,
            delta=self.delta,
            fid=f"PiSBC:rep{index}",
        )
        for party in self.parties.values():
            party.join(adapter)
        for pid, message in messages.items():
            self.parties[pid].broadcast(message)
        self.env.run_rounds(self.phi + self.delta + 1)
        delivered: Dict[str, List[Any]] = {}
        for pid, party in self.parties.items():
            batches = [
                payload[1]
                for fid, payload in party.outputs
                if fid == adapter.fid and payload[0] == "Broadcast"
            ]
            delivered[pid] = batches[-1] if batches else None
        return delivered
