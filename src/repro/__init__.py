"""repro — Universally Composable Simultaneous Broadcast, executable.

A full reproduction of *"Universally Composable Simultaneous Broadcast
against a Dishonest Majority and Applications"* (Arapinis, Kocsis,
Lamprou, Medley, Zacharias — PODC 2023, arXiv:2305.06468): an executable
UC substrate, every ideal functionality of the paper's figures, every
protocol of its theorems (Dolev–Strong, ΠUBC, ΠFBC, Astrolabous TLE,
ΠTLE, ΠSBC, ΠDURS, ΠSTVS), honest-majority baselines from prior work, and
the adversaries that exercise each security claim.

Quick start::

    from repro.core import build_sbc_stack

    stack = build_sbc_stack(n=4, mode="composed", seed=1)
    stack.parties["P0"].broadcast(b"bid: 42")
    stack.parties["P1"].broadcast(b"bid: 17")
    stack.run_until_delivery()
    print(stack.delivered()["P2"])   # both bids, revealed simultaneously

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md``
for the paper-claim vs. measured record.
"""

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "Session",
    "__version__",
    "build_durs_stack",
    "build_sbc_stack",
    "build_tle_stack",
    "build_voting_stack",
]

# Lazy re-exports (PEP 562): `import repro` must stay lightweight so the
# stdlib-only paths — `repro lint` on a minimal install, tooling that
# just wants __version__ — never pay for (or require) the crypto and
# runtime stacks.  Attribute access resolves the heavy modules on demand.
_LAZY = {
    "build_durs_stack": "repro.core",
    "build_sbc_stack": "repro.core",
    "build_tle_stack": "repro.core",
    "build_voting_stack": "repro.core",
    "Environment": "repro.uc",
    "Session": "repro.uc",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
