"""repro — Universally Composable Simultaneous Broadcast, executable.

A full reproduction of *"Universally Composable Simultaneous Broadcast
against a Dishonest Majority and Applications"* (Arapinis, Kocsis,
Lamprou, Medley, Zacharias — PODC 2023, arXiv:2305.06468): an executable
UC substrate, every ideal functionality of the paper's figures, every
protocol of its theorems (Dolev–Strong, ΠUBC, ΠFBC, Astrolabous TLE,
ΠTLE, ΠSBC, ΠDURS, ΠSTVS), honest-majority baselines from prior work, and
the adversaries that exercise each security claim.

Quick start::

    from repro.core import build_sbc_stack

    stack = build_sbc_stack(n=4, mode="composed", seed=1)
    stack.parties["P0"].broadcast(b"bid: 42")
    stack.parties["P1"].broadcast(b"bid: 17")
    stack.run_until_delivery()
    print(stack.delivered()["P2"])   # both bids, revealed simultaneously

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md``
for the paper-claim vs. measured record.
"""

from repro.core import (
    build_durs_stack,
    build_sbc_stack,
    build_tle_stack,
    build_voting_stack,
)
from repro.uc import Environment, Session

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "Session",
    "__version__",
    "build_durs_stack",
    "build_sbc_stack",
    "build_tle_stack",
    "build_voting_stack",
]
