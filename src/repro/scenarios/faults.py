"""Network-fault knobs for scenario executions, within the sync bound.

The base model is synchronous: a message sent in round ``r`` is delivered
at the start of round ``r + 1``, and the environment (hence the
adversary) picks the activation order inside each round.  Everything the
model leaves open is a fault knob the paper's properties must survive:

* **activation scheduling** — the per-round ``Advance_Clock`` order may
  be permuted arbitrarily (``reversed``, ``rotate``, seeded ``shuffle``);
* **input timing** — sender inputs may be staggered across rounds (as
  long as they stay within the relevant broadcast period);
* **scheduler faults** — for channels routed through the session's
  :class:`~repro.runtime.scheduler.BatchScheduler` (``SyncNetwork``,
  hence Dolev–Strong and every baseline), the round's delivery batch may
  be reordered, messages from chosen senders may be *delayed to the end
  of the batch* (the largest delay the sync bound permits: delivery still
  happens in round ``r + 1``), or dropped entirely (a crash/suppression
  fault — dropping a party's traffic is how a silent crash looks to
  everyone else, and counts against the corruption budget ``t``).

A cross-round delay is deliberately *not* offered: the round structure
is the synchrony assumption, and violating it tests nothing the paper
claims.  All knobs are deterministic — two runs of the same plan produce
identical schedules, so faulty executions stay digest-comparable across
backends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Hashable, List, Optional, Sequence, Tuple

from repro.runtime.scheduler import BatchScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session

#: Supported activation-order policies.
ACTIVATIONS = ("default", "reversed", "rotate", "shuffle")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative bundle of fault knobs for one scenario.

    Attributes:
        name: Short label used in cell ids (``none``, ``reversed`` ...).
        activation: Per-round activation-order policy (one of
            :data:`ACTIVATIONS`).
        activation_seed: Seed for the ``shuffle`` policy.
        stagger: Rounds between successive sender inputs (0 = all inputs
            land in round 0).
        net_reorder: Deterministically shuffle each scheduler drain batch.
        net_reorder_seed: Seed for the batch shuffle.
        net_delay_from: Messages from these senders are moved to the end
            of their round's batch (maximal in-bound delay).
        net_drop_from: Messages from these senders are dropped (crash /
            suppression fault).
    """

    name: str = "none"
    activation: str = "default"
    activation_seed: int = 0
    stagger: int = 0
    net_reorder: bool = False
    net_reorder_seed: int = 0
    net_delay_from: Tuple[str, ...] = ()
    net_drop_from: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.activation not in ACTIVATIONS:
            raise ValueError(
                f"activation must be one of {list(ACTIVATIONS)}, got {self.activation!r}"
            )
        if self.stagger < 0:
            raise ValueError("stagger must be >= 0")

    # -- activation scheduling ---------------------------------------------

    def order_for_round(
        self, round_index: int, pids: Sequence[str]
    ) -> Optional[List[str]]:
        """Activation order for round ``round_index`` (None = registration
        order).  Always a permutation of ``pids``."""
        if self.activation == "default":
            return None
        pids = list(pids)
        if self.activation == "reversed":
            return pids[::-1]
        if self.activation == "rotate":
            shift = round_index % len(pids) if pids else 0
            return pids[shift:] + pids[:shift]
        rng = random.Random(f"activation:{self.activation_seed}:{round_index}")
        rng.shuffle(pids)
        return pids

    # -- input timing ------------------------------------------------------

    def input_round(self, sender_index: int) -> int:
        """The round at which the ``sender_index``-th input is delivered."""
        return sender_index * self.stagger

    # -- scheduler faults ----------------------------------------------------

    @property
    def has_net_faults(self) -> bool:
        return bool(self.net_reorder or self.net_delay_from or self.net_drop_from)

    def install(self, session: "Session") -> None:
        """Swap the session's scheduler for a faulty one (when needed).

        Must run before any message is enqueued; scenario builders call it
        immediately after session construction.
        """
        if self.has_net_faults:
            session.scheduler = FaultyScheduler(
                policy=session.scheduler.policy, plan=self
            )


class FaultyScheduler(BatchScheduler):
    """A :class:`BatchScheduler` applying a plan's drop/delay/reorder knobs.

    Faults act on drained batches only — enqueue order (what producers
    observe) is untouched, and every surviving message is still delivered
    in its own round, so the sync bound holds by construction.  Sender
    identification assumes the ``SyncNetwork`` item shape
    ``(recipient, (sender, payload))``; items of any other shape pass
    through unfiltered.
    """

    def __init__(self, policy: str = "fifo", plan: Optional[FaultPlan] = None) -> None:
        super().__init__(policy)
        self.plan = plan or FaultPlan()
        self.dropped: List[Tuple[Hashable, Any]] = []
        self._drains = 0

    @staticmethod
    def _sender(item: Tuple[Hashable, Any]) -> Optional[str]:
        _key, value = item
        if isinstance(value, tuple) and len(value) == 2 and isinstance(value[0], str):
            return value[0]
        return None

    def drain(self, channel: str) -> List[Tuple[Hashable, Any]]:
        batch = super().drain(channel)
        if not batch:
            return batch
        self._drains += 1
        plan = self.plan
        if plan.net_drop_from:
            kept = []
            for item in batch:
                if self._sender(item) in plan.net_drop_from:
                    self.dropped.append(item)
                else:
                    kept.append(item)
            batch = kept
        if plan.net_reorder:
            rng = random.Random(f"net:{plan.net_reorder_seed}:{self._drains}")
            rng.shuffle(batch)
        if plan.net_delay_from:
            prompt = [i for i in batch if self._sender(i) not in plan.net_delay_from]
            delayed = [i for i in batch if self._sender(i) in plan.net_delay_from]
            batch = prompt + delayed
        return batch


#: The fault patterns swept by the default matrix.  Every paper property
#: must hold (or fail) identically across all of them — scheduling freedom
#: is the adversary's, not the protocol's.
DEFAULT_FAULTS: Tuple[FaultPlan, ...] = (
    FaultPlan(name="none"),
    FaultPlan(name="reversed", activation="reversed"),
    FaultPlan(name="stagger", activation="rotate", stagger=1),
)
