"""Declarative scenario specifications and the expectation table.

A :class:`ScenarioSpec` is one *cell*: which stack to build, which
adversary strategy (from :mod:`repro.attacks`) to install, which
:class:`~repro.scenarios.faults.FaultPlan` to apply and which execution
backend to run under.  A :class:`ScenarioMatrix` expands the cross
product and attaches to every cell the paper-derived **expectation**:
for each trace property, whether it must hold or must be violated in
that world.  The conformance suite then asserts equality — each paper
property holds exactly where the paper says it does, and each attack
succeeds exactly where the paper says it can.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from repro.scenarios.faults import DEFAULT_FAULTS, FaultPlan

#: Marker prefix of every scenario input payload; attack predicates and
#: secrecy scans key on it.
PAYLOAD_PREFIX = b"scn:"

#: The value replacement attacks try to substitute.
REPLACEMENT = PAYLOAD_PREFIX + b"evil"

#: Stack names the runner knows how to build.  ``family`` (the part
#: before the first dash) selects the adversary wiring and expectations.
STACKS = ("ubc", "fbc", "sbc-hybrid", "sbc-composed", "durs", "ds-ubc")

#: Adversary strategy names resolvable by ``scenarios.adversaries``.
STRATEGIES = ("passive", "copy", "replace", "replace-early", "bias")


def payload_for(pid: str) -> bytes:
    """The canonical input payload broadcast by ``pid`` in scenarios."""
    return PAYLOAD_PREFIX + pid.encode()


@dataclass(frozen=True)
class ScenarioSpec:
    """One executable scenario cell.

    Attributes:
        name: Human-readable scenario name (matrix cells derive it).
        stack: Stack to build (one of :data:`STACKS`).
        adversary: Strategy name (one of :data:`STRATEGIES`).
        faults: Fault plan applied while driving the world.
        backend: Execution backend name for the session.
        seed: Session seed.
        n: Party count.
        senders: How many parties provide broadcast inputs (P0, P1, ...).
        params: Stack parameter overrides as ``(key, value)`` pairs
            (kept as a tuple so specs stay hashable and picklable).
        expect: ``(property name, must hold)`` pairs the conformance
            suite asserts.
    """

    name: str
    stack: str
    adversary: str = "passive"
    faults: FaultPlan = field(default_factory=FaultPlan)
    backend: str = "sequential"
    seed: int = 0
    n: int = 4
    senders: int = 2
    params: Tuple[Tuple[str, Any], ...] = ()
    expect: Tuple[Tuple[str, bool], ...] = ()

    @property
    def family(self) -> str:
        """Stack family: ``sbc-hybrid`` -> ``sbc``, ``ds-ubc`` -> ``ds``."""
        return self.stack.split("-", 1)[0]

    @property
    def mode(self) -> str:
        """Stack mode suffix (``hybrid``/``composed``), if any."""
        parts = self.stack.split("-", 1)
        return parts[1] if len(parts) == 2 else ""

    @property
    def cell_id(self) -> str:
        """Stable identifier: ``stack/adversary/fault/backend#seed``."""
        return (
            f"{self.stack}/{self.adversary}/{self.faults.name}/"
            f"{self.backend}#{self.seed}"
        )

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def expectations(self) -> Dict[str, bool]:
        return dict(self.expect)

    def replace(self, **overrides: Any) -> "ScenarioSpec":
        """A copy of this spec with fields overridden."""
        return dataclasses.replace(self, **overrides)


# ---------------------------------------------------------------------------
# The expectation table: (stack family, adversary) -> property -> must hold.
#
# This is the paper, spelled as data:
# * UBC (Figure 8) is *unfair*: plaintexts leak at request time
#   (plaintext_secrecy fails), the copy attack lands, and an adaptive
#   corruption replaces the pending message (replacement observed).
# * FBC (Figure 10) hides the value until ``∆ − α``; once the adversary
#   reads it (Output_Request) the value is locked, so the read-then-replace
#   strategy always fails.
# * SBC (Figure 13 / Theorem 2) adds simultaneity: the copy attack never
#   sees a plaintext, ciphertext replays are dropped, and replacing a
#   sender's UBC traffic cannot smuggle a correlated value into the batch.
# * DURS (Figure 15): one uniform string, agreement and simultaneous
#   release among requesters.
# ---------------------------------------------------------------------------

_LIVE = (("delivery", True), ("agreement", True), ("simultaneous_delivery", True))

EXPECTATIONS: Mapping[Tuple[str, str], Tuple[Tuple[str, bool], ...]] = {
    ("ubc", "passive"): _LIVE
    + (("validity", True), ("no_duplicates", True), ("plaintext_secrecy", False)),
    ("ubc", "copy"): _LIVE
    + (("validity", True), ("plaintext_secrecy", False), ("copy_landed", True)),
    ("ubc", "replace"): _LIVE
    + (
        ("validity", True),
        ("plaintext_secrecy", False),
        ("replacement_delivered", True),
    ),
    ("fbc", "passive"): _LIVE
    + (
        ("validity", True),
        ("no_duplicates", True),
        ("plaintext_secrecy", True),
        ("fbc_lock_before_open", True),
    ),
    ("fbc", "copy"): _LIVE
    + (
        ("validity", True),
        ("plaintext_secrecy", True),
        ("copy_landed", False),
        ("fbc_lock_before_open", True),
    ),
    ("fbc", "replace"): _LIVE
    + (
        ("validity", True),
        ("plaintext_secrecy", True),
        ("replacement_blocked", True),
        ("replacement_delivered", False),
        ("fbc_lock_before_open", True),
    ),
    ("sbc", "passive"): _LIVE
    + (("validity", True), ("no_duplicates", True), ("plaintext_secrecy", True)),
    ("sbc", "copy"): _LIVE
    + (
        ("validity", True),
        ("no_duplicates", True),
        ("plaintext_secrecy", True),
        ("copy_landed", False),
    ),
    ("sbc", "replace"): _LIVE
    + (
        ("validity", True),
        ("plaintext_secrecy", True),
        ("replacement_delivered", False),
    ),
    ("durs", "passive"): _LIVE,
    ("durs", "copy"): _LIVE + (("copy_landed", False),),
    ("durs", "replace"): _LIVE + (("replacement_delivered", False),),
    ("ds", "passive"): _LIVE + (("validity", True), ("no_duplicates", True)),
}


def expected_for(stack: str, adversary: str) -> Tuple[Tuple[str, bool], ...]:
    """Expectation tuple for a (stack, adversary) pair.

    Raises:
        KeyError: no expectation is defined — the matrix refuses to run
            cells whose outcome the paper does not pin down.
    """
    family = stack.split("-", 1)[0]
    try:
        return EXPECTATIONS[(family, adversary)]
    except KeyError:
        raise KeyError(
            f"no expectation defined for stack family {family!r} under "
            f"adversary {adversary!r}"
        ) from None


# ---------------------------------------------------------------------------
# Matrices
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioMatrix:
    """A declarative sweep: stacks × adversaries × faults × backends."""

    name: str
    stacks: Tuple[str, ...]
    adversaries: Tuple[str, ...]
    faults: Tuple[FaultPlan, ...]
    backends: Tuple[str, ...] = ("sequential", "pooled")
    seed: int = 0

    @property
    def cells(self) -> int:
        return (
            len(self.stacks)
            * len(self.adversaries)
            * len(self.faults)
            * len(self.backends)
        )

    def expand(self) -> List[ScenarioSpec]:
        """The cell list, in deterministic axis order."""
        specs: List[ScenarioSpec] = []
        for stack in self.stacks:
            for adversary in self.adversaries:
                expect = expected_for(stack, adversary)
                for plan in self.faults:
                    for backend in self.backends:
                        specs.append(
                            ScenarioSpec(
                                name=f"{self.name}:{stack}/{adversary}",
                                stack=stack,
                                adversary=adversary,
                                faults=plan,
                                backend=backend,
                                seed=self.seed,
                                expect=expect,
                            )
                        )
        return specs


def default_matrix(seed: int = 0) -> ScenarioMatrix:
    """The conformance matrix run by CLI, benchmark E16 and the test suite.

    5 stacks × 3 adversaries × 3 fault patterns × 2 full-trace backends
    = 90 cells; the ``batched`` (trace-off) backend is exercised by the
    cross-backend differential tests instead, since trace properties
    cannot be evaluated without an event log.
    """
    return ScenarioMatrix(
        name="default",
        stacks=("ubc", "fbc", "sbc-hybrid", "sbc-composed", "durs"),
        adversaries=("passive", "copy", "replace"),
        faults=DEFAULT_FAULTS,
        backends=("sequential", "pooled"),
        seed=seed,
    )
