"""Reusable trace predicates for the paper's adversarial properties.

Each property is a function ``fn(outcome) -> (holds, detail)`` evaluated
against a finished :class:`~repro.scenarios.runner.ScenarioOutcome` — the
session's :class:`~repro.uc.trace.EventLog`, the adversary's state and
the per-party delivered views.  The conformance suite compares ``holds``
to the expectation table in :mod:`repro.scenarios.spec`; a property that
*must fail* (e.g. plaintext secrecy over raw UBC) is as much a theorem
as one that must hold.

Trace-dependent properties refuse to evaluate against a trace-off
(``light``) execution: a predicate that vacuously passes because nothing
was recorded is indistinguishable from a real pass, which is exactly the
false positive this module exists to rule out (see also
:func:`repro.runtime.pool.compare_trace_digests`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Tuple

from repro.uc.trace import NullEventLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.runner import ScenarioOutcome


class TraceUnavailable(RuntimeError):
    """A trace property was evaluated against a trace-off execution."""


@dataclass(frozen=True)
class PropertyResult:
    """Outcome of one property check on one scenario cell."""

    name: str
    holds: bool
    expected: bool
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Whether reality matched the paper's prediction."""
        return self.holds == self.expected


def _require_trace(outcome: "ScenarioOutcome", name: str) -> None:
    if isinstance(outcome.session.log, NullEventLog):
        raise TraceUnavailable(
            f"property {name!r} needs the event trace, but the session ran "
            "trace-off (light mode); rerun under a full-trace backend"
        )


# -- liveness and consistency -------------------------------------------------


def prop_delivery(outcome: "ScenarioOutcome") -> Tuple[bool, str]:
    """Every honest party expected to output did so."""
    empty = [pid for pid in outcome.expected_pids if not outcome.delivered.get(pid)]
    return (not empty, f"no output from {empty}" if empty else "all delivered")


def prop_agreement(outcome: "ScenarioOutcome") -> Tuple[bool, str]:
    """All honest delivered views are identical (order included)."""
    views = [outcome.delivered.get(pid) for pid in outcome.expected_pids]
    holds = len(views) > 0 and all(view == views[0] for view in views)
    return (holds, f"{len(set(map(repr, views)))} distinct views")


def prop_validity(outcome: "ScenarioOutcome") -> Tuple[bool, str]:
    """Inputs of senders still honest at the end reach every honest view."""
    missing = []
    for pid, payload, _round in outcome.honest_inputs:
        if outcome.session.is_corrupted(pid):
            continue  # corrupted mid-run: the paper guarantees nothing
        for viewer in outcome.expected_pids:
            if payload not in outcome.delivered.get(viewer, []):
                missing.append((pid, viewer))
    return (not missing, f"missing {missing}" if missing else "all honest inputs in")


def prop_no_duplicates(outcome: "ScenarioOutcome") -> Tuple[bool, str]:
    """No honest input is delivered more than once to any honest party."""
    duplicated = []
    for pid, payload, _round in outcome.honest_inputs:
        for viewer in outcome.expected_pids:
            if outcome.delivered.get(viewer, []).count(payload) > 1:
                duplicated.append((pid, viewer))
    return (not duplicated, f"duplicates at {duplicated}" if duplicated else "unique")


def prop_simultaneous_delivery(outcome: "ScenarioOutcome") -> Tuple[bool, str]:
    """All honest parties produce their first output in the same round."""
    _require_trace(outcome, "simultaneous_delivery")
    rounds: Dict[str, int] = {}
    for pid in outcome.expected_pids:
        event = outcome.session.log.first("output", source=pid)
        if event is None:
            return (False, f"{pid} never output")
        rounds[pid] = event.time
    holds = len(set(rounds.values())) <= 1
    return (holds, f"first-output rounds {rounds}")


# -- secrecy / simultaneity -----------------------------------------------------


def prop_plaintext_secrecy(outcome: "ScenarioOutcome") -> Tuple[bool, str]:
    """No honest payload appears in any *leak* before its reveal deadline.

    The deadline is stack-specific (``∆ − α`` after the request for FBC,
    the adversary-preview round for SBC, the next-round delivery bound
    for UBC — where the property is expected to fail: FUBC leaks the
    plaintext at request time).
    """
    _require_trace(outcome, "plaintext_secrecy")
    early = []
    for payload, deadline in outcome.secrecy_deadlines:
        event = outcome.session.log.first_containing(payload, kind="leak")
        if event is not None and event.time < deadline:
            early.append((payload, event.time, deadline))
    return (
        not early,
        f"leaked early: {early}" if early else "no pre-deadline plaintext leak",
    )


# -- attack-outcome properties -------------------------------------------------


def prop_copy_landed(outcome: "ScenarioOutcome") -> Tuple[bool, str]:
    """The copy strategy obtained an honest plaintext to re-broadcast."""
    adversary = outcome.adversary
    copied = list(getattr(adversary, "copied", ())) or list(
        getattr(adversary, "plaintexts_seen", ())
    )
    return (bool(copied), f"copied {copied!r}")


def prop_replacement_delivered(outcome: "ScenarioOutcome") -> Tuple[bool, str]:
    """The attack's replacement value reached some honest party's view."""
    replacement = getattr(outcome.adversary, "replacement", None)
    if replacement is None:
        return (False, "strategy has no replacement value")
    hit = [
        pid
        for pid in outcome.expected_pids
        if replacement in outcome.delivered.get(pid, [])
    ]
    return (bool(hit), f"replacement seen by {hit}")


def prop_replacement_blocked(outcome: "ScenarioOutcome") -> Tuple[bool, str]:
    """Replacement was attempted and rejected every time."""
    attempts = getattr(outcome.adversary, "attempts", 0)
    successes = getattr(outcome.adversary, "successes", 0)
    return (
        attempts > 0 and successes == 0,
        f"{successes}/{attempts} replacements accepted",
    )


def prop_fbc_lock_before_open(outcome: "ScenarioOutcome") -> Tuple[bool, str]:
    """No successful ``Allow`` at or after the lock of the same tag.

    ``FairBroadcast`` records ``lock`` on reveal and ``allow`` only on
    accepted replacements; fairness is the absence of an ``allow`` once
    the tag is locked.  Holds vacuously when nothing ever locked.
    """
    _require_trace(outcome, "fbc_lock_before_open")
    log = outcome.session.log
    lock_times = {event.detail[0]: event.time for event in log.filter(kind="lock")}
    late = [
        event.detail
        for event in log.filter(kind="allow")
        if event.detail[0] in lock_times and event.time >= lock_times[event.detail[0]]
    ]
    return (not late, f"allow after lock: {late}" if late else f"{len(lock_times)} locks")


def prop_bias_blind(outcome: "ScenarioOutcome") -> Tuple[bool, str]:
    """The biasing contributor had to submit blind (no honest plaintexts)."""
    adversary = outcome.adversary
    submitted = getattr(adversary, "submitted", None)
    informed = getattr(adversary, "informed", True)
    return (
        submitted is not None and not informed,
        f"submitted={submitted is not None} informed={informed}",
    )


PROPERTIES: Mapping[str, Callable[["ScenarioOutcome"], Tuple[bool, str]]] = {
    "delivery": prop_delivery,
    "agreement": prop_agreement,
    "validity": prop_validity,
    "no_duplicates": prop_no_duplicates,
    "simultaneous_delivery": prop_simultaneous_delivery,
    "plaintext_secrecy": prop_plaintext_secrecy,
    "copy_landed": prop_copy_landed,
    "replacement_delivered": prop_replacement_delivered,
    "replacement_blocked": prop_replacement_blocked,
    "fbc_lock_before_open": prop_fbc_lock_before_open,
    "bias_blind": prop_bias_blind,
}


def evaluate(
    outcome: "ScenarioOutcome", expectations: Mapping[str, bool]
) -> List[PropertyResult]:
    """Check every expected property against the finished execution.

    Raises:
        KeyError: an expectation names an unregistered property.
        TraceUnavailable: a trace property met a trace-off execution.
    """
    results = []
    for name, expected in expectations.items():
        holds, detail = PROPERTIES[name](outcome)
        results.append(
            PropertyResult(name=name, holds=holds, expected=expected, detail=detail)
        )
    return results
