"""Declarative adversarial scenarios and the trace-property conformance suite.

The paper's claims (simultaneity, the FBC lock at ``∆ − α``, UBC
unfairness) are *adversarial* properties: each one says what an attacker
can or cannot achieve.  This package turns the hand-written attack tests
into data:

* :class:`~repro.scenarios.spec.ScenarioSpec` — one cell: a stack, an
  adversary strategy from :mod:`repro.attacks`, a
  :class:`~repro.scenarios.faults.FaultPlan` and an execution backend;
* :class:`~repro.scenarios.spec.ScenarioMatrix` — a declarative sweep
  (stacks × adversaries × faults × backends) expanded into cells, each
  carrying the paper-derived expectation for every property;
* :mod:`~repro.scenarios.properties` — reusable trace predicates
  (agreement, validity, simultaneity, lock-before-open, replacement
  observed) evaluated against the session's ``EventLog``;
* :mod:`~repro.scenarios.runner` — builds each world, drives it round by
  round (applying the fault plan), and evaluates the expectations; whole
  matrices run through :class:`~repro.runtime.pool.SessionPool`.

Entry points: ``repro scenarios list|run`` on the CLI,
``tests/test_scenarios_matrix.py`` under pytest, ``bench_scenarios.py``
(E16) in the benchmark suite.
"""

from repro.scenarios.faults import FaultPlan, FaultyScheduler
from repro.scenarios.properties import PropertyResult, TraceUnavailable, evaluate
from repro.scenarios.runner import (
    CellResult,
    MatrixReport,
    ScenarioOutcome,
    evaluate_scenario,
    extra_scenarios,
    run_matrix,
    run_scenario,
    run_scenario_trial,
)
from repro.scenarios.spec import (
    EXPECTATIONS,
    PAYLOAD_PREFIX,
    REPLACEMENT,
    ScenarioMatrix,
    ScenarioSpec,
    default_matrix,
)

__all__ = [
    "CellResult",
    "EXPECTATIONS",
    "FaultPlan",
    "FaultyScheduler",
    "MatrixReport",
    "PAYLOAD_PREFIX",
    "PropertyResult",
    "REPLACEMENT",
    "ScenarioMatrix",
    "ScenarioOutcome",
    "ScenarioSpec",
    "TraceUnavailable",
    "default_matrix",
    "evaluate",
    "evaluate_scenario",
    "extra_scenarios",
    "run_matrix",
    "run_scenario",
    "run_scenario_trial",
]
