"""Adversary strategy registry: strategy name × stack family → attack.

A scenario names a *strategy* ("copy", "replace", ...); the concrete
attack class from :mod:`repro.attacks` depends on the stack under test —
the copy attack against raw UBC hunts plaintext leaks, against SBC it
can only replay ciphertext triples.  This module owns that mapping so
specs stay purely declarative.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.attacks.adaptive import (
    FBCReplaceAttack,
    LockedReplaceAttack,
    UBCReplaceAttack,
)
from repro.attacks.bias import BiasingContributor
from repro.attacks.rushing import SBCCopyAttack, UBCCopyAttack
from repro.functionalities.durs import URS_LEN
from repro.scenarios.spec import PAYLOAD_PREFIX, REPLACEMENT, ScenarioSpec
from repro.uc.adversary import Adversary, PassiveAdversary


def _attacker(spec: ScenarioSpec) -> str:
    """The pid the strategy corrupts and acts through (the last party)."""
    return f"P{spec.n - 1}"


#: The sender every replacement strategy targets.
VICTIM = "P0"


def _passive(spec: ScenarioSpec) -> Adversary:
    return PassiveAdversary()


def _copy(spec: ScenarioSpec) -> Adversary:
    if spec.family == "sbc":
        return SBCCopyAttack(
            attacker=_attacker(spec),
            is_plaintext=lambda m: isinstance(m, bytes) and m.startswith(PAYLOAD_PREFIX),
        )
    if spec.family == "durs":
        # Honest contributions are λ-bit strings; copying one would break
        # the beacon's independence.
        return SBCCopyAttack(
            attacker=_attacker(spec),
            is_plaintext=lambda m: isinstance(m, bytes) and len(m) == URS_LEN,
        )
    # UBC-shaped stacks (and FBC, whose leaks the attack cannot use).
    return UBCCopyAttack(attacker=_attacker(spec))


def _replace(spec: ScenarioSpec) -> Adversary:
    if spec.family == "fbc":
        # Against fair broadcast the observe-then-replace order is forced:
        # the value is unknown until ∆ − α, and reading it locks it.
        return LockedReplaceAttack(victim=VICTIM, replacement=REPLACEMENT)
    return UBCReplaceAttack(victim=VICTIM, replacement=REPLACEMENT)


def _replace_early(spec: ScenarioSpec) -> Adversary:
    # Corrupt immediately and replace blind — the window the FBC lock
    # deliberately leaves open (Figure 10: replacement before the lock).
    return FBCReplaceAttack(victim=VICTIM, replacement=REPLACEMENT, corrupt_after=0)


def _bias(spec: ScenarioSpec) -> Adversary:
    return BiasingContributor(
        attacker=_attacker(spec), target_bit=0, phi=spec.param("phi", 3)
    )


ADVERSARIES: Dict[str, Callable[[ScenarioSpec], Adversary]] = {
    "passive": _passive,
    "copy": _copy,
    "replace": _replace,
    "replace-early": _replace_early,
    "bias": _bias,
}


def make_adversary(spec: ScenarioSpec) -> Adversary:
    """Instantiate the strategy for one cell (fresh state every call).

    Raises:
        KeyError: unknown strategy name.
    """
    try:
        factory = ADVERSARIES[spec.adversary]
    except KeyError:
        known = ", ".join(sorted(ADVERSARIES))
        raise KeyError(
            f"unknown adversary strategy {spec.adversary!r} (known: {known})"
        ) from None
    return factory(spec)
