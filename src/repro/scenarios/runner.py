"""Build, drive and judge scenario cells; sweep matrices via SessionPool.

One cell = one UC execution: the runner builds the spec'd stack with a
fresh adversary instance, applies the fault plan (activation schedules,
staggered inputs, scheduler faults), drives the world for a
deterministic number of rounds, and evaluates the expected trace
properties against the finished execution.  Whole matrices run through
:class:`~repro.runtime.pool.SessionPool` — inline for determinism-
sensitive sweeps, thread/process workers for wall-clock — and the
resulting :class:`CellResult` records are picklable and JSON-friendly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.runtime.config import SweepConfig
from repro.runtime.pool import TrialResult, compare_trace_digests, trace_digest
from repro.runtime.sweep import ParallelSweep
from repro.scenarios.adversaries import make_adversary
from repro.scenarios.faults import FaultPlan
from repro.scenarios.properties import PropertyResult, evaluate
from repro.scenarios.spec import (
    ScenarioSpec,
    expected_for,
    payload_for,
)
from repro.uc.adversary import Adversary
from repro.uc.environment import Action, Environment
from repro.uc.session import Session

__all__ = [
    "CellResult",
    "MatrixReport",
    "ScenarioOutcome",
    "evaluate_scenario",
    "extra_scenarios",
    "online_slots_for",
    "run_matrix",
    "run_scenario",
    "run_scenario_trial",
]


@dataclass
class ScenarioOutcome:
    """Everything a property predicate may inspect about one execution."""

    spec: ScenarioSpec
    session: Session
    adversary: Adversary
    #: Honest parties expected to produce output (corrupted ones excluded).
    expected_pids: List[str]
    #: pid -> flattened delivered view (messages in delivery order).
    delivered: Dict[str, List[Any]]
    #: (sender pid, payload, input round) for every scripted honest input.
    honest_inputs: List[Tuple[str, bytes, int]]
    #: (payload, earliest round a leak may contain it) — see
    #: :func:`repro.scenarios.properties.prop_plaintext_secrecy`.
    secrecy_deadlines: List[Tuple[bytes, int]]
    rounds: int
    wall_time_s: float
    digest: str


@dataclass(frozen=True)
class CellResult:
    """Picklable verdict for one executed cell."""

    cell_id: str
    stack: str
    adversary: str
    fault: str
    backend: str
    seed: int
    rounds: int
    messages: int
    wall_time_s: float
    digest: str
    properties: Tuple[PropertyResult, ...]

    @property
    def ok(self) -> bool:
        """All properties matched the paper's prediction."""
        return all(result.ok for result in self.properties)

    @property
    def mismatches(self) -> List[PropertyResult]:
        return [result for result in self.properties if not result.ok]

    def summary(self) -> Dict[str, Any]:
        """Uniform record for JSON emission."""
        return {
            "cell": self.cell_id,
            "stack": self.stack,
            "adversary": self.adversary,
            "fault": self.fault,
            "backend": self.backend,
            "seed": self.seed,
            "rounds": self.rounds,
            "ok": self.ok,
            "properties": {
                result.name: {
                    "holds": result.holds,
                    "expected": result.expected,
                    "detail": result.detail,
                }
                for result in self.properties
            },
        }


# ---------------------------------------------------------------------------
# Worlds: how each stack is built, scripted and read out
# ---------------------------------------------------------------------------


class _World:
    """One buildable/driveable stack.  Subclasses fill in the specifics."""

    def __init__(self, spec: ScenarioSpec, adversary: Adversary) -> None:
        self.spec = spec
        self.adversary = adversary
        self.honest_inputs: List[Tuple[str, bytes, int]] = []
        self.session: Session = None  # type: ignore[assignment]
        self.env: Environment = None  # type: ignore[assignment]
        self.parties: Dict[str, Any] = {}
        self._build()

    # -- subclass surface ---------------------------------------------------

    def _build(self) -> None:
        raise NotImplementedError

    def actions_by_round(self) -> Dict[int, List[Action]]:
        raise NotImplementedError

    def total_rounds(self) -> int:
        raise NotImplementedError

    def delivered(self) -> Dict[str, List[Any]]:
        raise NotImplementedError

    def secrecy_deadlines(self) -> List[Tuple[bytes, int]]:
        return []

    # -- shared helpers ------------------------------------------------------

    def _sender_inputs(self) -> List[Tuple[str, bytes, int]]:
        """The scripted ``(pid, payload, round)`` broadcast schedule."""
        if not self.honest_inputs:
            plan = self.spec.faults
            for index in range(self.spec.senders):
                pid = f"P{index}"
                self.honest_inputs.append(
                    (pid, payload_for(pid), plan.input_round(index))
                )
        return self.honest_inputs

    def _broadcast_actions(self) -> Dict[int, List[Action]]:
        actions: Dict[int, List[Action]] = {}
        for pid, payload, round_index in self._sender_inputs():
            actions.setdefault(round_index, []).append(
                (pid, lambda p, m=payload: p.broadcast(m))
            )
        return actions

    def _last_input_round(self) -> int:
        return max((r for _p, _m, r in self._sender_inputs()), default=0)

    def _honest_views(self, extract: Callable[[Any], List[Any]]) -> Dict[str, List[Any]]:
        return {
            pid: extract(party)
            for pid, party in self.parties.items()
            if not self.session.is_corrupted(pid)
        }

    def drive(self) -> None:
        """Run the scripted rounds under the fault plan's schedules."""
        plan = self.spec.faults
        pids = list(self.session.parties)
        actions = self.actions_by_round()
        for round_index in range(self.total_rounds()):
            self.env.run_round(
                actions.get(round_index, ()),
                order=plan.order_for_round(round_index, pids),
            )


class _UBCWorld(_World):
    """Raw ``FUBC``: the unfair baseline every attack beats."""

    def _build(self) -> None:
        from repro.functionalities.dummy import DummyBroadcastParty
        from repro.functionalities.ubc import UnfairBroadcast

        spec = self.spec
        session = Session(
            sid=f"scn-{spec.stack}", seed=spec.seed,
            adversary=self.adversary, backend=spec.backend,
        )
        spec.faults.install(session)
        self.ubc = UnfairBroadcast(session)
        self.parties = {
            f"P{i}": DummyBroadcastParty(session, f"P{i}", self.ubc)
            for i in range(spec.n)
        }
        self.session = session
        self.env = Environment(session)

    def actions_by_round(self) -> Dict[int, List[Action]]:
        return self._broadcast_actions()

    def total_rounds(self) -> int:
        return self._last_input_round() + 3

    def delivered(self) -> Dict[str, List[Any]]:
        return self._honest_views(
            lambda p: [m for kind, m, _s in p.outputs if kind == "Broadcast"]
        )

    def secrecy_deadlines(self) -> List[Tuple[bytes, int]]:
        # Sync bound: honest delivery completes within the input round;
        # any leak before the next round exposes the plaintext early —
        # and FUBC leaks at request time, which is the point.
        return [(m, r + 1) for _p, m, r in self._sender_inputs()]


class _DSUBCWorld(_World):
    """UBC over real Dolev–Strong runs: scheduler faults bite here."""

    def _build(self) -> None:
        from repro.functionalities.dummy import DummyBroadcastParty
        from repro.protocols.ds_ubc import DolevStrongUBCAdapter

        spec = self.spec
        session = Session(
            sid=f"scn-{spec.stack}", seed=spec.seed,
            adversary=self.adversary, backend=spec.backend,
        )
        spec.faults.install(session)
        pids = [f"P{i}" for i in range(spec.n)]
        self.ubc = DolevStrongUBCAdapter(session, pids=pids, t=spec.param("t", 1))
        self.parties = {}
        for pid in pids:
            party = DummyBroadcastParty(session, pid, self.ubc)
            self.ubc.attach(party)
            self.parties[pid] = party
        self.session = session
        self.env = Environment(session)

    def actions_by_round(self) -> Dict[int, List[Action]]:
        return self._broadcast_actions()

    def total_rounds(self) -> int:
        return self._last_input_round() + self.ubc.latency + 2

    def delivered(self) -> Dict[str, List[Any]]:
        return self._honest_views(
            lambda p: [m for kind, m, _s in p.outputs if kind == "Broadcast"]
        )


class _FBCWorld(_World):
    """Ideal ``F∆,α_FBC``: the fairness boundary."""

    def _build(self) -> None:
        from repro.functionalities.dummy import DummyBroadcastParty
        from repro.functionalities.fbc import FairBroadcast

        spec = self.spec
        session = Session(
            sid=f"scn-{spec.stack}", seed=spec.seed,
            adversary=self.adversary, backend=spec.backend,
        )
        spec.faults.install(session)
        self.delta = spec.param("delta", 3)
        self.alpha = spec.param("alpha", 1)
        self.fbc = FairBroadcast(session, delta=self.delta, alpha=self.alpha)
        self.parties = {
            f"P{i}": DummyBroadcastParty(session, f"P{i}", self.fbc)
            for i in range(spec.n)
        }
        self.session = session
        self.env = Environment(session)

    def actions_by_round(self) -> Dict[int, List[Action]]:
        return self._broadcast_actions()

    def total_rounds(self) -> int:
        return self._last_input_round() + self.delta + 2

    def delivered(self) -> Dict[str, List[Any]]:
        return self._honest_views(
            lambda p: [m for _kind, m in p.outputs]
        )

    def secrecy_deadlines(self) -> List[Tuple[bytes, int]]:
        # Figure 10: the adversary may first obtain the value ∆ − α
        # rounds after the request, never earlier.
        return [
            (m, r + self.delta - self.alpha) for _p, m, r in self._sender_inputs()
        ]


class _SBCWorld(_World):
    """ΠSBC over its hybrid or fully composed stack (Theorem 2 / Cor. 1)."""

    def _build(self) -> None:
        from repro.core.stacks import build_sbc_stack

        spec = self.spec
        self.stack = build_sbc_stack(
            n=spec.n,
            mode=spec.mode,
            seed=spec.seed,
            phi=spec.param("phi", 5),
            delta=spec.param("delta", 3),
            adversary=self.adversary,
            backend=spec.backend,
        )
        spec.faults.install(self.stack.session)
        self.session = self.stack.session
        self.env = self.stack.env
        self.parties = self.stack.parties

    def actions_by_round(self) -> Dict[int, List[Action]]:
        return self._broadcast_actions()

    def total_rounds(self) -> int:
        return self._last_input_round() + self.stack.phi + self.stack.delta + 2

    def delivered(self) -> Dict[str, List[Any]]:
        batches = self.stack.delivered()
        return {
            pid: list(batch) if batch else []
            for pid, batch in batches.items()
            if not self.session.is_corrupted(pid)
        }

    def secrecy_deadlines(self) -> List[Tuple[bytes, int]]:
        # The adversary's preview round is t_end + ∆ − α; t_end comes from
        # the protocol's own "awake" record (the wake-up may have been
        # delayed or destroyed by the attack).
        awake = self.session.log.filter(kind="awake")
        if not awake:
            return []
        t_end = min(event.detail[2] for event in awake)
        deadline = t_end + self.stack.delta - self.stack.sbc.alpha
        return [(m, deadline) for _p, m, _r in self._sender_inputs()]


class _DURSWorld(_World):
    """ΠDURS over the ideal SBC: the delayed randomness beacon."""

    def _build(self) -> None:
        from repro.core.stacks import build_durs_stack

        spec = self.spec
        self.stack = build_durs_stack(
            n=spec.n,
            mode="hybrid",
            seed=spec.seed,
            phi=spec.param("phi", 3),
            delta=spec.param("delta", 6),
            adversary=self.adversary,
            backend=spec.backend,
        )
        spec.faults.install(self.stack.session)
        self.session = self.stack.session
        self.env = self.stack.env
        self.parties = self.stack.parties

    def actions_by_round(self) -> Dict[int, List[Action]]:
        return {
            0: [(pid, lambda p: p.urs_request()) for pid in self.parties]
        }

    def total_rounds(self) -> int:
        return self.stack.delta + 2

    def delivered(self) -> Dict[str, List[Any]]:
        return self._honest_views(
            lambda p: [v for kind, v in p.outputs if kind == "URS"]
        )


_WORLDS: Dict[str, Callable[[ScenarioSpec, Adversary], _World]] = {
    "ubc": _UBCWorld,
    "ds-ubc": _DSUBCWorld,
    "fbc": _FBCWorld,
    "sbc-hybrid": _SBCWorld,
    "sbc-composed": _SBCWorld,
    "durs": _DURSWorld,
}


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def run_scenario(
    spec: ScenarioSpec,
    cursor: Optional[Any] = None,
    batch: Optional[Any] = None,
) -> ScenarioOutcome:
    """Build and drive one cell; returns the live outcome (session attached).

    With ``cursor`` (a :class:`~repro.runtime.material.MaterialCursor`)
    the cell spends its reserved slice of the preprocessed randomness
    pools and records the consumption in its trace — the online mode's
    digest-pinning rule, applied to scenario cells.  With ``batch`` (a
    :class:`~repro.crypto.batch.BatchPolicy`) verification-heavy rounds
    inside the cell batch their checks, pinned the same way via
    ``verify.batch`` events.

    Raises:
        KeyError: unknown stack or adversary strategy.
    """
    from repro.crypto.batch import batching
    from repro.crypto.randomness import spending
    from repro.runtime.pool import record_online_spend

    try:
        world_cls = _WORLDS[spec.stack]
    except KeyError:
        known = ", ".join(sorted(_WORLDS))
        raise KeyError(f"unknown stack {spec.stack!r} (known: {known})") from None
    adversary = make_adversary(spec)
    start = time.perf_counter()
    with spending(cursor), batching(batch):
        world = world_cls(spec, adversary)
        world.drive()
    elapsed = time.perf_counter() - start
    session = world.session
    record_online_spend(session, cursor)
    expected_pids = [
        pid for pid in world.parties if not session.is_corrupted(pid)
    ]
    return ScenarioOutcome(
        spec=spec,
        session=session,
        adversary=adversary,
        expected_pids=expected_pids,
        delivered=world.delivered(),
        honest_inputs=list(world.honest_inputs),
        secrecy_deadlines=world.secrecy_deadlines(),
        rounds=session.metrics.get("rounds.advanced"),
        wall_time_s=elapsed,
        digest=trace_digest(session.log),
    )


def evaluate_scenario(
    spec: ScenarioSpec,
    cursor: Optional[Any] = None,
    batch: Optional[Any] = None,
) -> CellResult:
    """Run one cell and judge its expected properties."""
    outcome = run_scenario(spec, cursor=cursor, batch=batch)
    results = evaluate(outcome, spec.expectations())
    return CellResult(
        cell_id=spec.cell_id,
        stack=spec.stack,
        adversary=spec.adversary,
        fault=spec.faults.name,
        backend=spec.backend,
        seed=spec.seed,
        rounds=outcome.rounds,
        messages=outcome.session.metrics.get("messages.total"),
        wall_time_s=outcome.wall_time_s,
        digest=outcome.digest,
        properties=tuple(results),
    )


def run_scenario_trial(
    index: int,
    specs: Sequence[ScenarioSpec] = (),
    backend: Any = None,
    trace: Optional[str] = None,
    online: Optional[Any] = None,
    batch: Optional[Any] = None,
) -> TrialResult:
    """SessionPool trial runner: one matrix cell per "seed" (the index).

    ``backend``/``trace`` are accepted because :class:`SessionPool`
    forwards its own defaults to every runner, but each cell pins its
    backend as a matrix axis, so the pool-level values are ignored.
    ``online`` (an :class:`~repro.runtime.material.OnlinePlan`) gives
    the cell a cursor over its reserved pool slice; ``batch`` (a
    :class:`~repro.crypto.batch.BatchPolicy`) batches the cell's
    verification rounds.
    """
    cursor = online.open(index) if online is not None else None
    cell = evaluate_scenario(specs[index], cursor=cursor, batch=batch)
    return TrialResult(
        seed=index,
        wall_time_s=cell.wall_time_s,
        rounds=cell.rounds,
        messages=cell.messages,
        digest=cell.digest,
        outputs=cell,
        online=cursor.spend_summary() if cursor is not None else None,
    )


@dataclass
class MatrixReport:
    """Aggregate verdict over one matrix sweep."""

    cells: List[CellResult] = field(default_factory=list)
    executor: str = "inline"
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> List[CellResult]:
        return [cell for cell in self.cells if not cell.ok]

    def backend_mismatches(self) -> List[str]:
        """Cells whose trace digest differs across backends.

        Same stack + adversary + fault + seed must execute identically
        under every full-trace backend (the PR-1 determinism contract,
        now enforced under adversarial scenarios too).
        """
        groups: Dict[Tuple[str, str, str, int], Dict[str, str]] = {}
        for cell in self.cells:
            key = (cell.stack, cell.adversary, cell.fault, cell.seed)
            groups.setdefault(key, {})[cell.backend] = cell.digest
        mismatches = []
        for key, digests in groups.items():
            if len(digests) < 2:
                continue
            values = list(digests.items())
            reference_backend, reference = values[0]
            for backend, digest in values[1:]:
                if not compare_trace_digests(reference, digest):
                    mismatches.append(
                        f"{'/'.join(map(str, key))}: {reference_backend}!={backend}"
                    )
        return mismatches

    def summary(self) -> Dict[str, Any]:
        return {
            "cells": len(self.cells),
            "ok": sum(1 for cell in self.cells if cell.ok),
            "failed": len(self.failures),
            "executor": self.executor,
            "wall_time_s": round(self.wall_time_s, 6),
        }


def online_slots_for(specs: Sequence[ScenarioSpec]) -> List[int]:
    """Pool-slot assignment for a spec list in online mode.

    Cells that are the *same execution* replayed under a different
    backend must spend the same pool entries, or the matrix's
    cross-backend digest check would always fail in online mode.  The
    replay key is therefore the whole execution identity except the
    backend — stack, adversary, full fault plan, seed, party/sender
    counts and parameter overrides — so two cells only share a slot
    (and pool entries) when they are bit-for-bit the same execution;
    any genuinely distinct cell gets its own slot and can never
    double-spend.
    """
    groups: Dict[Tuple[Any, ...], int] = {}
    slots = []
    for spec in specs:
        key = (
            spec.stack, spec.adversary, spec.faults, spec.seed,
            spec.n, spec.senders, spec.params,
        )
        slots.append(groups.setdefault(key, len(groups)))
    return slots


def run_matrix(
    specs: Iterable[ScenarioSpec],
    executor: str = "inline",
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    max_tasks_per_child: Optional[int] = None,
    warmup: bool = True,
    material: Optional[str] = None,
    adaptive: bool = False,
    online: bool = False,
    consume_forward: bool = False,
    batch_verify: Any = False,
    chaos: Optional[Any] = None,
    retry: Optional[Any] = None,
    deadline: Optional[Any] = None,
    journal: Optional[Any] = None,
    resume: bool = False,
    trace: Optional[str] = None,
    config: Optional[SweepConfig] = None,
) -> MatrixReport:
    """Execute every cell through a :class:`ParallelSweep`.

    Cells are dispatched by index into ``specs`` (the cell pins its own
    backend and seed), so results — and therefore the report's cell
    order — match the spec order under every executor.  Execution knobs
    are best passed as one ``config=``
    :class:`~repro.runtime.config.SweepConfig` — the same object
    ``SessionPool``/``ParallelSweep`` take, so the matrix accepts the
    identical knob set (the pre-config signature silently lacked
    ``retry``/``deadline``/``journal``/``resume``/``trace``); the
    individual keywords remain as a shim.  Two knobs are interpreted,
    not forwarded: the backend is forced to ``sequential`` at the pool
    level (each cell pins its own backend as a matrix axis), and
    ``online=True`` becomes an
    :class:`~repro.runtime.material.OnlinePlan` whose backend-variant
    replays of one execution share a pool slot (see
    :func:`online_slots_for`) — so the cross-backend digest check holds
    in online mode.  ``consume_forward`` offsets that plan by the
    persisted spend ledger; ``chaos``/``retry``/``deadline``/``journal``
    /``resume`` configure the supervised process fan-out exactly as in
    :class:`~repro.runtime.pool.SessionPool`.
    """
    specs = tuple(specs)
    if config is None:
        config = SweepConfig(
            backend="sequential",
            executor=executor,
            workers=workers,
            chunksize=chunksize,
            max_tasks_per_child=max_tasks_per_child,
            warmup=warmup,
            material=material,
            adaptive=adaptive,
            online=online,
            consume_forward=consume_forward,
            batch_verify=batch_verify,
            chaos=chaos,
            retry=retry,
            deadline=deadline,
            journal=journal,
            resume=resume,
            trace=trace,
        )
    online_plan: Any = config.online
    if config.online and isinstance(config.online, bool):
        from repro.runtime.material import OnlinePlan

        online_plan = OnlinePlan.for_tasks(
            range(len(specs)),
            slots=online_slots_for(specs),
            consume_forward=config.consume_forward,
        )
    config = config.replace(
        backend="sequential", online=online_plan, consume_forward=False
    )
    sweep = ParallelSweep(
        runner=run_scenario_trial,
        config=config,
        specs=specs,
    )
    report = sweep.run(range(len(specs)))
    return MatrixReport(
        cells=[trial.outputs for trial in report.results],
        executor=config.executor,
        wall_time_s=report.wall_time_s,
    )


def extra_scenarios(seed: int = 0) -> List[ScenarioSpec]:
    """Targeted one-off scenarios beyond the cross-product matrix.

    These pin the *timing-sensitive* halves of the paper's claims that a
    plain cross product cannot express: the FBC replacement window
    before the lock, Dolev–Strong under scheduler faults, and the
    beacon's bias resistance.
    """
    return [
        # Figure 10, the open half: replacement *before* the lock works.
        ScenarioSpec(
            name="fbc-replace-early",
            stack="fbc",
            adversary="replace-early",
            seed=seed,
            expect=(
                ("delivery", True),
                ("agreement", True),
                ("simultaneous_delivery", True),
                ("plaintext_secrecy", True),
                ("replacement_delivered", True),
                ("fbc_lock_before_open", True),
            ),
        ),
        # Dolev–Strong with one silently crashed party (all its traffic
        # dropped at the scheduler) plus batch reordering: within t = 1.
        ScenarioSpec(
            name="ds-crash",
            stack="ds-ubc",
            adversary="passive",
            seed=seed,
            faults=FaultPlan(
                name="crash", net_drop_from=("P2",), net_reorder=True
            ),
            expect=expected_for("ds-ubc", "passive"),
        ),
        # Dolev–Strong under maximal in-bound delay + reordering.
        ScenarioSpec(
            name="ds-net-chaos",
            stack="ds-ubc",
            adversary="passive",
            seed=seed,
            faults=FaultPlan(
                name="net-chaos",
                net_reorder=True,
                net_reorder_seed=7,
                net_delay_from=("P1",),
            ),
            expect=expected_for("ds-ubc", "passive"),
        ),
        # The last-mover must contribute blind through DURS (Figure 15).
        ScenarioSpec(
            name="durs-bias",
            stack="durs",
            adversary="bias",
            seed=seed,
            params=(("phi", 3),),
            expect=(
                ("delivery", True),
                ("agreement", True),
                ("simultaneous_delivery", True),
                ("bias_blind", True),
            ),
        ),
    ]
