"""The Astrolabous TLE algorithms (AST.Enc, AST.Dec) — paper Section 2.4.

The hash function is *injected* (``hash_fn``) so that protocol code can
route every query through the resource-restricted wrapper
:class:`~repro.functionalities.wrapper.QueryWrapper` (the paper's
``Wq(F*_RO)``), while standalone users and tests may pass a plain hash.

Chain layout (for difficulty ``τdec`` and rate ``q``, with
``L = q · τdec`` links)::

    z_0 = r_0
    z_j = r_j  ⊕ H(r_{j-1})     for j = 1 .. L-1
    z_L = k    ⊕ H(r_{L-1})

where ``r_0..r_{L-1}`` are fresh random λ-bit strings and ``k`` is the SKE
key encrypting the message body.  The decryption witness is
``(H(r_0), ..., H(r_{L-1}))``, computable only link-by-link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.crypto.hashing import DIGEST_SIZE, xor_bytes
from repro.crypto.ske import (
    DecryptionError,
    SymmetricKey,
    ske_decrypt,
    ske_encrypt,
    ske_gen,
)

HashFn = Callable[[bytes], bytes]

from repro.uc.encoding import register_dataclass  # noqa: E402


class PuzzleError(Exception):
    """Raised on malformed ciphertexts or invalid witnesses."""


@register_dataclass
@dataclass(frozen=True)
class TLECiphertext:
    """An Astrolabous ciphertext ``c = (τdec, c_{M,k}, c_{k,τdec})``.

    Attributes:
        difficulty: Time-lock difficulty ``τdec`` in rounds.
        rate: Queries per round ``q`` the chain was built for.
        body: ``SKE.Enc(k, M)``.
        chain: The ``q·τdec + 1`` chain elements ``z_0 .. z_L``.
    """

    difficulty: int
    rate: int
    body: bytes
    chain: Tuple[bytes, ...]

    @property
    def length(self) -> int:
        """Number of sequential hash queries needed to solve (``q·τdec``)."""
        return self.difficulty * self.rate

    def __post_init__(self) -> None:
        if self.difficulty < 0 or self.rate <= 0:
            raise PuzzleError("difficulty must be >= 0 and rate positive")
        if len(self.chain) != self.length + 1:
            raise PuzzleError(
                f"chain must have q*tau+1 = {self.length + 1} elements, got {len(self.chain)}"
            )
        for element in self.chain:
            if len(element) != DIGEST_SIZE:
                raise PuzzleError("chain elements must be digest-sized")


def ast_encrypt(
    message: bytes,
    difficulty: int,
    rate: int,
    hash_fn: HashFn,
    rng,
    randomness: Optional[Sequence[bytes]] = None,
) -> TLECiphertext:
    """AST.Enc: time-lock ``message`` for ``difficulty`` rounds.

    Args:
        message: Plaintext of any length.
        difficulty: ``τdec`` — rounds of sequential work to open.
        rate: ``q`` — hash queries available per round.
        hash_fn: The hash/random oracle (possibly resource-metered).
        rng: Randomness source.
        randomness: Optionally the pre-sampled ``r_0..r_{L-1}`` (the
            protocols sample these up-front so all encryption queries can
            be batched into the round's query budget).

    Note the ``L = q·difficulty`` hash queries made here are *independent*
    of one another — encryption is one-round work under the wrapper.
    """
    length = difficulty * rate
    key = ske_gen(rng)
    body = ske_encrypt(key, message, rng)
    if randomness is None:
        randomness = [
            rng.getrandbits(8 * DIGEST_SIZE).to_bytes(DIGEST_SIZE, "big")
            for _ in range(length)
        ]
    randomness = list(randomness)
    if len(randomness) != length:
        raise PuzzleError(f"need {length} randomness values, got {len(randomness)}")
    chain: List[bytes] = []
    if length == 0:
        # Degenerate puzzle: the key is exposed directly (difficulty 0).
        chain.append(key.material)
    else:
        chain.append(randomness[0])
        for j in range(1, length):
            chain.append(xor_bytes(randomness[j], hash_fn(randomness[j - 1])))
        chain.append(xor_bytes(key.material, hash_fn(randomness[length - 1])))
    return TLECiphertext(
        difficulty=difficulty, rate=rate, body=body, chain=tuple(chain)
    )


class PuzzleSolver:
    """Incremental, step-at-a-time puzzle solving.

    Protocol machines (ΠFBC Figure 11, ΠTLE Figure 12) interleave the
    solving of many puzzles with their per-round query budget: each call
    to :meth:`next_query` yields the unique value that must be hashed
    next, and :meth:`absorb` consumes the oracle's response.  The solver
    *cannot* be advanced without the previous response — this is the
    sequentiality that makes the time lock a lock.
    """

    def __init__(self, ciphertext: TLECiphertext) -> None:
        self.ciphertext = ciphertext
        self.witness: List[bytes] = []
        self._current: Optional[bytes] = (
            ciphertext.chain[0] if ciphertext.length > 0 else None
        )

    @property
    def position(self) -> int:
        """Number of chain links already unwound."""
        return len(self.witness)

    @property
    def solved(self) -> bool:
        """Whether the full witness has been computed."""
        return self.position >= self.ciphertext.length

    def next_query(self) -> bytes:
        """The value that must be hashed to advance one link.

        Raises:
            PuzzleError: if the puzzle is already solved.
        """
        if self.solved:
            raise PuzzleError("puzzle already solved")
        return self._current

    def absorb(self, digest: bytes) -> None:
        """Consume the oracle response for the last :meth:`next_query`."""
        if self.solved:
            raise PuzzleError("puzzle already solved")
        if len(digest) != DIGEST_SIZE:
            raise PuzzleError("response has wrong size")
        self.witness.append(digest)
        if not self.solved:
            # r_{j} = z_{j} XOR H(r_{j-1})
            self._current = xor_bytes(self.ciphertext.chain[self.position], digest)
        else:
            self._current = None

    def step(self, hash_fn: HashFn, queries: int = 1) -> int:
        """Advance up to ``queries`` links using ``hash_fn``; returns #used."""
        used = 0
        while used < queries and not self.solved:
            self.absorb(hash_fn(self.next_query()))
            used += 1
        return used


def ast_solve(ciphertext: TLECiphertext, hash_fn: HashFn) -> Tuple[bytes, ...]:
    """Compute the full decryption witness (all ``q·τdec`` sequential queries)."""
    solver = PuzzleSolver(ciphertext)
    while not solver.solved:
        solver.absorb(hash_fn(solver.next_query()))
    return tuple(solver.witness)


def ast_decrypt(ciphertext: TLECiphertext, witness: Sequence[bytes]) -> bytes:
    """AST.Dec: recover the message given the witness.

    Raises:
        PuzzleError: if the witness has the wrong length or the recovered
            key fails to authenticate the body (invalid puzzle/witness).
    """
    if ciphertext.length == 0:
        key = SymmetricKey(ciphertext.chain[0])
    else:
        witness = list(witness)
        if len(witness) != ciphertext.length:
            raise PuzzleError(
                f"witness must have {ciphertext.length} digests, got {len(witness)}"
            )
        key = SymmetricKey(xor_bytes(witness[-1], ciphertext.chain[-1]))
    try:
        return ske_decrypt(key, ciphertext.body)
    except DecryptionError as exc:
        raise PuzzleError("witness does not open this ciphertext") from exc
