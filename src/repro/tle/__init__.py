"""Time-lock encryption: the Astrolabous scheme of [ALZ21] (paper Sec. 2.4).

The scheme hides an SKE key at the end of a hash chain of length
``q · τdec``: building the chain needs that many hash queries but they are
*independent* (parallelizable within one round under the resource wrapper),
while unwinding it is inherently *sequential* — each link's preimage is
only known after hashing the previous link.  Under the paper's
resource-restricted model (``q`` oracle queries per party per round) a
difficulty-``τdec`` ciphertext therefore takes exactly ``τdec`` rounds to
open, which is the timing property every protocol in the stack builds on.
"""

from repro.tle.astrolabous import (
    PuzzleSolver,
    TLECiphertext,
    ast_decrypt,
    ast_encrypt,
    ast_solve,
)

__all__ = [
    "PuzzleSolver",
    "TLECiphertext",
    "ast_decrypt",
    "ast_encrypt",
    "ast_solve",
]
