"""Symmetric-key encryption ΣSKE = (SKE.Gen, SKE.Enc, SKE.Dec).

The Astrolabous TLE scheme (paper Section 2.4) is generic over any
IND-CPA symmetric scheme.  We use a hash-based stream cipher with a fresh
random nonce plus an encrypt-then-MAC tag, giving authenticated encryption
— decryption with a wrong key *fails loudly*, which the TLE decryption
path relies on to reject malformed puzzles.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from repro.crypto.hashing import expand, xor_bytes

KEY_SIZE = 32
NONCE_SIZE = 16
TAG_SIZE = 32


class DecryptionError(Exception):
    """Ciphertext failed authentication (wrong key or tampered data)."""


@dataclass(frozen=True)
class SymmetricKey:
    """An SKE key (32 random bytes)."""

    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) != KEY_SIZE:
            raise ValueError(f"key must be {KEY_SIZE} bytes")


def ske_gen(rng=None) -> SymmetricKey:
    """SKE.Gen: sample a fresh key.

    Args:
        rng: Optional ``random.Random`` for deterministic tests; defaults
            to the OS CSPRNG.
    """
    # SKE keys are not preprocessed material (only Schnorr nonces and
    # Feldman polynomials are pooled), so key sampling stays outside the
    # RandomnessSource seam: OS entropy in production, caller rng in
    # deterministic tests.
    if rng is None:
        return SymmetricKey(secrets.token_bytes(KEY_SIZE))  # repro: allow[RPR002]
    return SymmetricKey(rng.getrandbits(8 * KEY_SIZE).to_bytes(KEY_SIZE, "big"))  # repro: allow[RPR002]


def _keystream(key: SymmetricKey, nonce: bytes, length: int) -> bytes:
    return expand(key.material + nonce, length, domain=b"ske-stream")


def _mac(key: SymmetricKey, data: bytes) -> bytes:
    return hmac.new(key.material, data, hashlib.sha256).digest()


def ske_encrypt(key: SymmetricKey, plaintext: bytes, rng=None) -> bytes:
    """SKE.Enc: encrypt ``plaintext`` under ``key``.

    Layout: ``nonce || body || tag`` where ``body = plaintext XOR stream``
    and ``tag = HMAC(key, nonce || body)``.
    """
    # Like ske_keygen: SKE nonces are not pooled material, so they are
    # sampled outside the RandomnessSource seam.
    if rng is None:
        nonce = secrets.token_bytes(NONCE_SIZE)  # repro: allow[RPR002]
    else:
        nonce = rng.getrandbits(8 * NONCE_SIZE).to_bytes(NONCE_SIZE, "big")  # repro: allow[RPR002]
    body = xor_bytes(plaintext, _keystream(key, nonce, len(plaintext)))
    tag = _mac(key, nonce + body)
    return nonce + body + tag


def ske_decrypt(key: SymmetricKey, ciphertext: bytes) -> bytes:
    """SKE.Dec: decrypt, verifying the authentication tag.

    Raises:
        DecryptionError: if the ciphertext is malformed or the tag does
            not verify under ``key``.
    """
    if len(ciphertext) < NONCE_SIZE + TAG_SIZE:
        raise DecryptionError("ciphertext too short")
    nonce = ciphertext[:NONCE_SIZE]
    body = ciphertext[NONCE_SIZE:-TAG_SIZE]
    tag = ciphertext[-TAG_SIZE:]
    if not hmac.compare_digest(tag, _mac(key, nonce + body)):
        raise DecryptionError("authentication failed")
    return xor_bytes(body, _keystream(key, nonce, len(body)))
