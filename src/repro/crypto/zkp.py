"""Σ-protocol zero-knowledge proofs (Fiat–Shamir, non-interactive).

The self-tallying protocol ΠSTVS (paper Figure 18) posts each ballot "along
with a proof that the ballot encrypts an allowable vote and that the
correct secret exponent was used".  We provide:

* :func:`pok_prove` / :func:`pok_verify` — Schnorr proof of knowledge of a
  discrete log;
* :func:`cp_prove` / :func:`cp_verify` — Chaum–Pedersen proof that two
  logs are equal (same secret under two bases);
* :func:`ballot_prove` / :func:`ballot_verify` — disjunctive (OR-composed)
  Chaum–Pedersen proof that a ballot :math:`b = r^{x} g^{v}` was formed
  with the registered secret exponent ``x`` (i.e. ``w = g^x``) and a vote
  ``v`` from the allowed choice set.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Sequence, Tuple

from repro.crypto.batch import BatchItem, Equation
from repro.crypto.groups import SchnorrGroup
from repro.crypto.hashing import hash_to_int
from repro.crypto.randomness import current_source


def _commitment_nonce(group: SchnorrGroup, base: int, rng) -> Tuple[int, int]:
    """One fresh ``(k, base^k)`` from the ambient randomness source.

    When the base is the group generator the preprocessed ``(k, g^k)``
    pool applies directly; any other base gets a pool/sampled scalar and
    pays the exponentiation online (the commitment cannot be precomputed
    for a base only known at proving time).
    """
    source = current_source()
    if base == group.g:
        return source.schnorr_nonce(group, rng)
    k = source.nonce_scalar(group, rng)
    return k, group.exp(base, k)


# ---------------------------------------------------------------------------
# Schnorr proof of knowledge of a discrete log
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchnorrProof:
    """Non-interactive Schnorr PoK: commitment ``a``, response ``s``."""

    a: int
    s: int


def _fs_challenge(group: SchnorrGroup, *elements: int, domain: bytes) -> int:
    return hash_to_int(
        *[group.element_to_bytes(element) for element in elements],
        modulus=group.q,
        domain=domain,
    )


def pok_prove(group: SchnorrGroup, base: int, public: int, secret: int, rng) -> SchnorrProof:
    """Prove knowledge of ``secret`` with ``public = base^secret``."""
    k, a = _commitment_nonce(group, base, rng)
    e = _fs_challenge(group, base, public, a, domain=b"pok")
    s = (k + e * secret) % group.q
    return SchnorrProof(a=a, s=s)


def pok_verify(group: SchnorrGroup, base: int, public: int, proof: SchnorrProof) -> bool:
    """Check ``base^s == a · public^e``."""
    if not group.is_member(proof.a):
        return False
    e = _fs_challenge(group, base, public, proof.a, domain=b"pok")
    return group.exp(base, proof.s) == group.multi_exp(((proof.a, 1), (public, e)))


def pok_batch_item(
    group: SchnorrGroup, base: int, public: int, proof: SchnorrProof
) -> BatchItem:
    """A batch item for one PoK check: ``base^s == a · public^e``.

    :func:`pok_verify` only membership-checks the commitment, but RLC
    soundness needs *every* base in the order-q subgroup, so ``base`` and
    ``public`` join the screen too; any screen failure falls back to the
    exact verifier, preserving its (laxer) verdict.
    """
    check = partial(pok_verify, group, base, public, proof)
    if not all(0 < element < group.p for element in (base, public, proof.a)):
        return BatchItem(bases=(), equations=(), check=check)
    e = _fs_challenge(group, base, public, proof.a, domain=b"pok")
    equation = Equation(
        lhs=((base, proof.s),),
        rhs=((proof.a, 1), (public, e)),
    )
    return BatchItem(bases=(base, public, proof.a), equations=(equation,), check=check)


# ---------------------------------------------------------------------------
# Chaum–Pedersen equality of discrete logs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CPProof:
    """Chaum–Pedersen proof: commitments ``a1, a2``, response ``s``."""

    a1: int
    a2: int
    s: int


def cp_prove(
    group: SchnorrGroup,
    base1: int,
    public1: int,
    base2: int,
    public2: int,
    secret: int,
    rng,
) -> CPProof:
    """Prove ``log_base1(public1) == log_base2(public2) == secret``."""
    k, a1 = _commitment_nonce(group, base1, rng)
    a2 = group.exp(base2, k)
    e = _fs_challenge(group, base1, public1, base2, public2, a1, a2, domain=b"cp")
    s = (k + e * secret) % group.q
    return CPProof(a1=a1, a2=a2, s=s)


def cp_verify(
    group: SchnorrGroup,
    base1: int,
    public1: int,
    base2: int,
    public2: int,
    proof: CPProof,
) -> bool:
    """Check both verification equations against the joint challenge."""
    if not (group.is_member(proof.a1) and group.is_member(proof.a2)):
        return False
    e = _fs_challenge(
        group, base1, public1, base2, public2, proof.a1, proof.a2, domain=b"cp"
    )
    ok1 = group.exp(base1, proof.s) == group.multi_exp(((proof.a1, 1), (public1, e)))
    ok2 = group.exp(base2, proof.s) == group.multi_exp(((proof.a2, 1), (public2, e)))
    return ok1 and ok2


def cp_batch_item(
    group: SchnorrGroup,
    base1: int,
    public1: int,
    base2: int,
    public2: int,
    proof: CPProof,
) -> BatchItem:
    """A batch item for one Chaum–Pedersen check (two equations).

    Each equation draws its own RLC coefficient in :func:`verify_batch`;
    a shared per-item coefficient would let errors in the two equations
    cancel.
    """
    check = partial(cp_verify, group, base1, public1, base2, public2, proof)
    elements = (base1, public1, base2, public2, proof.a1, proof.a2)
    if not all(0 < element < group.p for element in elements):
        return BatchItem(bases=(), equations=(), check=check)
    e = _fs_challenge(
        group, base1, public1, base2, public2, proof.a1, proof.a2, domain=b"cp"
    )
    equations = (
        Equation(lhs=((base1, proof.s),), rhs=((proof.a1, 1), (public1, e))),
        Equation(lhs=((base2, proof.s),), rhs=((proof.a2, 1), (public2, e))),
    )
    return BatchItem(bases=elements, equations=equations, check=check)


# ---------------------------------------------------------------------------
# Disjunctive ballot validity proof (OR of Chaum–Pedersen statements)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BallotProof:
    """An OR-proof over the allowed vote set.

    For each allowed vote ``v`` there is a branch with commitments
    ``(a1, a2)``, a per-branch challenge ``e`` and response ``s``; the
    per-branch challenges sum to the Fiat–Shamir challenge.
    """

    branches: Tuple[Tuple[int, int, int, int], ...]  # (a1, a2, e, s) per choice


def _ballot_statement(
    group: SchnorrGroup, seed: int, w: int, ballot: int, vote: int
) -> Tuple[int, int]:
    """Statement for branch ``vote``: log_g(w) = log_seed(ballot / g^vote)."""
    shifted = group.mul(ballot, group.inv(group.power_of_g(vote)))
    return w, shifted


def ballot_prove(
    group: SchnorrGroup,
    seed: int,
    w: int,
    ballot: int,
    secret: int,
    vote: int,
    choices: Sequence[int],
    rng,
    key_base: int = 0,
) -> BallotProof:
    """Prove ``ballot = seed^secret · g^vote`` with ``w = base^secret``, vote ∈ choices.

    ``key_base`` is the base of the verification key (default ``g``); the
    STVS protocol uses a separate public base ``w`` for voter keys.

    Standard CDS OR-composition: the real branch is proved honestly, every
    other branch is simulated with a random challenge/response pair, and
    the real branch's challenge absorbs the difference so the challenges
    sum to the global Fiat–Shamir challenge.
    """
    key_base = key_base or group.g
    choices = list(choices)
    if vote not in choices:
        raise ValueError("vote not in allowed choice set")
    real_index = choices.index(vote)
    commitments: List[Tuple[int, int]] = [(0, 0)] * len(choices)
    challenges: List[int] = [0] * len(choices)
    responses: List[int] = [0] * len(choices)

    k, real_a1 = _commitment_nonce(group, key_base, rng)
    for index, choice in enumerate(choices):
        public1, public2 = _ballot_statement(group, seed, w, ballot, choice)
        if index == real_index:
            commitments[index] = (real_a1, group.exp(seed, k))
        else:
            challenges[index] = group.random_scalar(rng)
            responses[index] = group.random_scalar(rng)
            a1 = group.mul(
                group.exp(key_base, responses[index]),
                group.inv(group.exp(public1, challenges[index])),
            )
            a2 = group.mul(
                group.exp(seed, responses[index]),
                group.inv(group.exp(public2, challenges[index])),
            )
            commitments[index] = (a1, a2)

    flat: List[int] = [seed, w, ballot]
    for a1, a2 in commitments:
        flat.extend((a1, a2))
    global_challenge = _fs_challenge(group, *flat, domain=b"ballot-or")

    challenges[real_index] = (global_challenge - sum(challenges)) % group.q
    responses[real_index] = (k + challenges[real_index] * secret) % group.q

    return BallotProof(
        branches=tuple(
            (commitments[i][0], commitments[i][1], challenges[i], responses[i])
            for i in range(len(choices))
        )
    )


def ballot_verify(
    group: SchnorrGroup,
    seed: int,
    w: int,
    ballot: int,
    proof: BallotProof,
    choices: Sequence[int],
    key_base: int = 0,
) -> bool:
    """Verify a disjunctive ballot proof against the allowed choice set."""
    key_base = key_base or group.g
    choices = list(choices)
    if len(proof.branches) != len(choices):
        return False
    flat: List[int] = [seed, w, ballot]
    for a1, a2, _, _ in proof.branches:
        flat.extend((a1, a2))
    global_challenge = _fs_challenge(group, *flat, domain=b"ballot-or")
    if sum(e for _, _, e, _ in proof.branches) % group.q != global_challenge:
        return False
    for (a1, a2, e, s), choice in zip(proof.branches, choices):
        public1, public2 = _ballot_statement(group, seed, w, ballot, choice)
        if group.exp(key_base, s) != group.multi_exp(((a1, 1), (public1, e))):
            return False
        if group.exp(seed, s) != group.multi_exp(((a2, 1), (public2, e))):
            return False
    return True


def ballot_batch_item(
    group: SchnorrGroup,
    seed: int,
    w: int,
    ballot: int,
    proof: BallotProof,
    choices: Sequence[int],
    key_base: int = 0,
) -> BatchItem:
    """A batch item for one disjunctive ballot proof.

    The cheap structural checks (branch count, challenge sum, Fiat–Shamir
    binding) happen here; only the 2-per-branch exponentiation equations
    enter the batch.  Any structural failure, out-of-range element, or
    membership-screen miss resolves through :func:`ballot_verify` for an
    exact verdict (the per-item verifier does no membership checks of its
    own, so the screen must never overrule it directly).
    """
    check = partial(ballot_verify, group, seed, w, ballot, proof, choices, key_base)
    key_base = key_base or group.g
    choice_list = list(choices)
    elements = (key_base, seed, w, ballot) + tuple(
        element for a1, a2, _, _ in proof.branches for element in (a1, a2)
    )
    if len(proof.branches) != len(choice_list) or not all(
        0 < element < group.p for element in elements
    ):
        return BatchItem(bases=(), equations=(), check=check)
    flat: List[int] = [seed, w, ballot]
    for a1, a2, _, _ in proof.branches:
        flat.extend((a1, a2))
    global_challenge = _fs_challenge(group, *flat, domain=b"ballot-or")
    if sum(e for _, _, e, _ in proof.branches) % group.q != global_challenge:
        return BatchItem(bases=(), equations=(), check=check)
    equations: List[Equation] = []
    for (a1, a2, e, s), choice in zip(proof.branches, choice_list):
        public1, public2 = _ballot_statement(group, seed, w, ballot, choice)
        equations.append(Equation(lhs=((key_base, s),), rhs=((a1, 1), (public1, e))))
        equations.append(Equation(lhs=((seed, s),), rhs=((a2, 1), (public2, e))))
    # Membership of the derived statements follows from the screened
    # inputs (the subgroup is closed under mul/inv), so ``elements``
    # covers every base the equations touch.
    return BatchItem(bases=elements, equations=tuple(equations), check=check)
