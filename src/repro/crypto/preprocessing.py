"""Offline crypto preprocessing: build, serialize and attach material.

The process-fan-out sweep engine used to pay a fixed warm-up tax in every
worker (and again on every recycle): each process rebuilt the
:class:`~repro.crypto.groups.SchnorrGroup` fixed-base window tables from
scratch.  Following the offline/online split of preprocessing-based MPC
systems (HoneyBadgerMPC ships Beaver triples and shares to its worker
fleet the same way), this module implements the *offline* phase:

* :func:`build_material` computes everything a worker would otherwise
  recompute — the fixed-base window table, plus batched Shamir/ZKP
  randomness (Feldman-committed random polynomials and Schnorr nonce
  pairs ``(k, g^k)``) derived from a recorded seed;
* :func:`serialize_material` / :func:`deserialize_material` round-trip it
  through a versioned, integrity-hashed binary blob suitable for an
  on-disk cache file or a shared-memory segment;
* :meth:`CryptoMaterial.attach` is the *online* step: install the table
  into a live group without recomputation (shape- and spot-checked, so a
  blob for the wrong parameters can never corrupt ``power_of_g``).

Only the mathematically transparent caches (fixed-base table, encoding
cache) are attached into protocol executions — seeded runs draw their
own randomness, so trace digests are identical whatever the material
source.  The randomness pools are *consumable* preprocessing for
explicit draws (benchmarks, future offline/online protocol phases); they
never leak into a seeded execution implicitly.  The store is
trusted-local material for a simulator fleet, not a production secret
vault: nonce scalars and polynomial coefficients are stored in the
clear, exactly like HoneyBadgerMPC's offline share files.

Blob layout (version 1)::

    b"RPM1" | sha256(payload) (32 bytes) | payload
    payload = header_len (u32 BE) | header JSON | body
    body    = fb-table entries, nonce (k, r) pairs, Feldman entries
              (coefficients then commitments), all fixed-width big-endian

The header records the group parameters, the fingerprint, the window
width and every pool count, so :func:`deserialize_material` can validate
the body length before touching a single integer.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.crypto.groups import SchnorrGroup
from repro.crypto.shamir import FeldmanCommitment

__all__ = [
    "CryptoMaterial",
    "FeldmanEntry",
    "MaterialError",
    "MaterialFormatError",
    "MaterialIntegrityError",
    "MATERIAL_MAGIC",
    "MATERIAL_VERSION",
    "NoncePair",
    "build_material",
    "deserialize_material",
    "extend_material",
    "group_fingerprint",
    "serialize_material",
]

#: File magic for serialized material blobs ("RePro Material", version 1).
MATERIAL_MAGIC = b"RPM1"

#: Serialization format version recorded in every header.
MATERIAL_VERSION = 1


class MaterialError(Exception):
    """Base class for preprocessing-material failures."""


class MaterialFormatError(MaterialError):
    """The blob is not a recognizable material serialization."""


class MaterialIntegrityError(MaterialError):
    """The blob's integrity hash does not cover its payload."""


def _fingerprint(p: int, q: int, g: int) -> str:
    """Fingerprint from raw parameters (no group construction).

    The attach hot path runs once per worker; building a throwaway
    :class:`SchnorrGroup` just to name its parameters would pay a
    full-width order check per call.
    """
    h = hashlib.sha256()
    h.update(b"repro-material|")
    for value in (p, q, g):
        h.update(format(value, "x").encode())
        h.update(b"|")
    return h.hexdigest()[:16]


def group_fingerprint(group: SchnorrGroup) -> str:
    """Stable identifier for a parameter set: SHA-256 over ``(p, q, g)``.

    Names the store's cache files (``<fingerprint>.v1``) and is embedded
    in every blob header, so material can never be attached to a group it
    was not built for.
    """
    return _fingerprint(group.p, group.q, group.g)


@dataclass(frozen=True)
class NoncePair:
    """One preprocessed Schnorr nonce: scalar ``k`` with ``r = g^k``.

    Signing and Σ-protocol proving spend one fresh ``(k, g^k)`` pair per
    operation; precomputing the pairs moves the exponentiation into the
    offline phase.
    """

    k: int
    r: int


@dataclass(frozen=True)
class FeldmanEntry:
    """A random degree-t polynomial with its Feldman commitments.

    The offline half of a verifiable sharing of a *random* secret
    (``a_0`` is the secret): dealers consume one entry per sharing and
    only evaluate the polynomial at the recipients' points online.
    """

    coefficients: Tuple[int, ...]
    commitments: Tuple[int, ...]

    @property
    def threshold(self) -> int:
        return len(self.coefficients) - 1

    @property
    def commitment(self) -> FeldmanCommitment:
        """The entry's commitments as a :class:`FeldmanCommitment`."""
        return FeldmanCommitment(commitments=self.commitments)


@dataclass
class CryptoMaterial:
    """Everything the offline phase precomputes for one parameter set."""

    p: int
    q: int
    g: int
    fb_window: int
    fb_table: List[List[int]]
    nonces: Tuple[NoncePair, ...] = ()
    feldman: Tuple[FeldmanEntry, ...] = ()
    built_with_seed: int = 0
    _drawn: int = field(default=0, repr=False)

    @property
    def fingerprint(self) -> str:
        return _fingerprint(self.p, self.q, self.g)

    @property
    def element_width(self) -> int:
        """Fixed big-endian width (bytes) of one serialized element."""
        return (self.p.bit_length() + 7) // 8

    @property
    def fb_table_bytes(self) -> int:
        """Serialized footprint of the fixed-base table."""
        if not self.fb_table:
            return 0
        return len(self.fb_table) * len(self.fb_table[0]) * self.element_width

    def matches(self, group: SchnorrGroup) -> bool:
        """Whether this material was built for ``group``'s parameters."""
        return (self.p, self.q, self.g) == (group.p, group.q, group.g)

    def attach(self, group: SchnorrGroup) -> SchnorrGroup:
        """Install the precomputed caches into ``group`` (online phase).

        Raises:
            MaterialError: the material was built for other parameters.
            ValueError: the table fails the group's consistency checks.
        """
        if not self.matches(group):
            raise MaterialError(
                f"material fingerprint {self.fingerprint} does not match the "
                f"target group ({group_fingerprint(group)})"
            )
        group.install_fixed_base(self.fb_table, self.fb_window)
        # Seed the encoding cache with the elements every Fiat–Shamir
        # transcript starts from.
        group.element_to_bytes(1)
        group.element_to_bytes(group.g)
        return group

    def draw_nonce(self) -> NoncePair:
        """Consume one preprocessed nonce pair (never reuse a nonce).

        Raises:
            MaterialError: the pool is exhausted.
        """
        if self._drawn >= len(self.nonces):
            raise MaterialError(
                f"nonce pool exhausted after {len(self.nonces)} draws; "
                "rebuild the material with a larger --nonces"
            )
        pair = self.nonces[self._drawn]
        self._drawn += 1
        return pair

    def iter_feldman(self) -> Iterator[FeldmanEntry]:
        return iter(self.feldman)

    def summary(self) -> Dict[str, Any]:
        """Uniform record for the store inspector and CLI."""
        return {
            "fingerprint": self.fingerprint,
            "bits": self.p.bit_length(),
            "fb_window": self.fb_window,
            "fb_rows": len(self.fb_table),
            "fb_table_bytes": self.fb_table_bytes,
            "nonces": len(self.nonces),
            "feldman": len(self.feldman),
            "feldman_threshold": self.feldman[0].threshold if self.feldman else None,
            "seed": self.built_with_seed,
        }


def build_material(
    group: SchnorrGroup,
    nonces: int = 128,
    feldman: int = 16,
    feldman_threshold: int = 2,
    seed: int = 0,
    window: Optional[int] = None,
) -> CryptoMaterial:
    """The offline phase: precompute everything a worker would redo online.

    Deterministic in ``seed`` (recorded in the material), so two builds
    of the same parameters produce byte-identical blobs — which makes the
    store's integrity hash double as a reproducibility check.
    """
    if nonces < 0 or feldman < 0:
        raise ValueError("pool sizes must be >= 0")
    if feldman and feldman_threshold < 0:
        raise ValueError("feldman_threshold must be >= 0")
    scratch = SchnorrGroup(p=group.p, q=group.q, g=group.g)
    scratch.precompute_fixed_base(window)
    rng = random.Random(f"repro-material|{group_fingerprint(group)}|{seed}")
    nonce_pool = []
    for _ in range(nonces):
        k = rng.randrange(1, group.q)
        nonce_pool.append(NoncePair(k=k, r=scratch.power_of_g(k)))
    feldman_pool = []
    for _ in range(feldman):
        coefficients = tuple(
            rng.randrange(group.q) for _ in range(feldman_threshold + 1)
        )
        feldman_pool.append(
            FeldmanEntry(
                coefficients=coefficients,
                commitments=tuple(scratch.power_of_g(a) for a in coefficients),
            )
        )
    state = scratch._fb_state
    assert state is not None
    fb_window, fb_table = state
    return CryptoMaterial(
        p=group.p,
        q=group.q,
        g=group.g,
        fb_window=fb_window,
        fb_table=fb_table,
        nonces=tuple(nonce_pool),
        feldman=tuple(feldman_pool),
        built_with_seed=seed,
    )


def extend_material(
    material: CryptoMaterial,
    nonces: int = 0,
    feldman: int = 0,
    feldman_threshold: Optional[int] = None,
) -> CryptoMaterial:
    """Append freshly derived entries to the pools (the replenish phase).

    The existing entries — and therefore every absolute pool index a
    spend ledger or recorded :class:`~repro.runtime.material.OnlinePlan`
    refers to — are preserved byte for byte: extension only appends, the
    fingerprint is parameter-derived so the store filename is unchanged,
    and ``built_with_seed`` stays the original offline seed, so the blob
    lineage (seed + growing pools) remains one generation.  The appended
    randomness is derived from a stream keyed on the *current* pool
    lengths, so repeating the same extension from the same state is
    deterministic, and no extension can ever replay an entry the original
    build (or an earlier extension) already produced.

    Raises:
        ValueError: negative extension counts, or a ``feldman_threshold``
            that disagrees with the existing entries (one pool, one
            threshold — the serializer enforces it too).
    """
    if nonces < 0 or feldman < 0:
        raise ValueError("extension counts must be >= 0")
    existing_threshold = material.feldman[0].threshold if material.feldman else None
    if feldman_threshold is None:
        feldman_threshold = existing_threshold if existing_threshold is not None else 2
    if existing_threshold is not None and feldman_threshold != existing_threshold:
        raise ValueError(
            f"existing feldman entries have threshold {existing_threshold}, "
            f"cannot append threshold-{feldman_threshold} entries"
        )
    if not nonces and not feldman:
        return material
    scratch = SchnorrGroup(p=material.p, q=material.q, g=material.g)
    # The material carries a validated table already; reuse it instead of
    # paying a full fixed-base rebuild per replenishment.
    scratch.install_fixed_base(material.fb_table, material.fb_window)
    rng = random.Random(
        f"repro-material|{material.fingerprint}|{material.built_with_seed}"
        f"|extend|{len(material.nonces)}|{len(material.feldman)}"
    )
    nonce_pool = list(material.nonces)
    for _ in range(nonces):
        k = rng.randrange(1, material.q)
        nonce_pool.append(NoncePair(k=k, r=scratch.power_of_g(k)))
    feldman_pool = list(material.feldman)
    for _ in range(feldman):
        coefficients = tuple(
            rng.randrange(material.q) for _ in range(feldman_threshold + 1)
        )
        feldman_pool.append(
            FeldmanEntry(
                coefficients=coefficients,
                commitments=tuple(scratch.power_of_g(a) for a in coefficients),
            )
        )
    return CryptoMaterial(
        p=material.p,
        q=material.q,
        g=material.g,
        fb_window=material.fb_window,
        fb_table=material.fb_table,
        nonces=tuple(nonce_pool),
        feldman=tuple(feldman_pool),
        built_with_seed=material.built_with_seed,
    )


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _pack_ints(values: List[int], width: int) -> bytes:
    return b"".join(value.to_bytes(width, "big") for value in values)


def serialize_material(material: CryptoMaterial) -> bytes:
    """Render the material as a versioned, integrity-hashed blob."""
    width = material.element_width
    threshold = material.feldman[0].threshold if material.feldman else 0
    header = {
        "version": MATERIAL_VERSION,
        "fingerprint": material.fingerprint,
        "p": format(material.p, "x"),
        "q": format(material.q, "x"),
        "g": format(material.g, "x"),
        "width": width,
        "fb_window": material.fb_window,
        "fb_rows": len(material.fb_table),
        "fb_cols": len(material.fb_table[0]) if material.fb_table else 0,
        "nonces": len(material.nonces),
        "feldman": len(material.feldman),
        "feldman_threshold": threshold,
        "seed": material.built_with_seed,
    }
    flat: List[int] = [entry for row in material.fb_table for entry in row]
    for pair in material.nonces:
        flat.extend((pair.k, pair.r))
    for entry in material.feldman:
        if entry.threshold != threshold:
            raise MaterialFormatError("feldman entries must share one threshold")
        flat.extend(entry.coefficients)
        flat.extend(entry.commitments)
    header_bytes = json.dumps(header, sort_keys=True).encode()
    payload = (
        len(header_bytes).to_bytes(4, "big") + header_bytes + _pack_ints(flat, width)
    )
    return MATERIAL_MAGIC + hashlib.sha256(payload).digest() + payload


def deserialize_material(blob: bytes) -> CryptoMaterial:
    """Parse and validate a serialized material blob.

    Raises:
        MaterialFormatError: wrong magic, version, header or body shape
            (covers truncated and garbage files).
        MaterialIntegrityError: payload hash mismatch (bit rot, partial
            writes that kept the magic intact).
    """
    if len(blob) < len(MATERIAL_MAGIC) + 32 + 4:
        raise MaterialFormatError("blob too short to be preprocessing material")
    if blob[: len(MATERIAL_MAGIC)] != MATERIAL_MAGIC:
        raise MaterialFormatError("bad magic: not a preprocessing material blob")
    digest = blob[len(MATERIAL_MAGIC) : len(MATERIAL_MAGIC) + 32]
    payload = blob[len(MATERIAL_MAGIC) + 32 :]
    if hashlib.sha256(payload).digest() != digest:
        raise MaterialIntegrityError("material payload fails its integrity hash")
    header_len = int.from_bytes(payload[:4], "big")
    try:
        header = json.loads(payload[4 : 4 + header_len])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MaterialFormatError(f"unreadable material header: {exc}") from None
    if header.get("version") != MATERIAL_VERSION:
        raise MaterialFormatError(
            f"unsupported material version {header.get('version')!r}"
        )
    try:
        p = int(header["p"], 16)
        q = int(header["q"], 16)
        g = int(header["g"], 16)
        width = int(header["width"])
        fb_window = int(header["fb_window"])
        fb_rows = int(header["fb_rows"])
        fb_cols = int(header["fb_cols"])
        nonce_count = int(header["nonces"])
        feldman_count = int(header["feldman"])
        threshold = int(header["feldman_threshold"])
        seed = int(header["seed"])
    except (KeyError, TypeError, ValueError) as exc:
        raise MaterialFormatError(f"malformed material header: {exc}") from None
    body = payload[4 + header_len :]
    expected = width * (
        fb_rows * fb_cols + 2 * nonce_count + feldman_count * 2 * (threshold + 1)
    )
    if len(body) != expected:
        raise MaterialFormatError(
            f"material body is {len(body)} bytes, header promises {expected}"
        )

    offset = 0

    def take(count: int) -> List[int]:
        nonlocal offset
        values = [
            int.from_bytes(body[offset + i * width : offset + (i + 1) * width], "big")
            for i in range(count)
        ]
        offset += count * width
        return values

    fb_table = [take(fb_cols) for _ in range(fb_rows)]
    nonce_pool = tuple(
        NoncePair(k=pair[0], r=pair[1])
        for pair in (take(2) for _ in range(nonce_count))
    )
    feldman_pool = []
    for _ in range(feldman_count):
        coefficients = tuple(take(threshold + 1))
        commitments = tuple(take(threshold + 1))
        feldman_pool.append(
            FeldmanEntry(coefficients=coefficients, commitments=commitments)
        )
    material = CryptoMaterial(
        p=p,
        q=q,
        g=g,
        fb_window=fb_window,
        fb_table=fb_table,
        nonces=nonce_pool,
        feldman=tuple(feldman_pool),
        built_with_seed=seed,
    )
    if header.get("fingerprint") != material.fingerprint:
        raise MaterialIntegrityError(
            "header fingerprint does not match the embedded parameters"
        )
    return material
