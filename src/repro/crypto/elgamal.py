"""(Exponential) ElGamal encryption over a Schnorr group.

Used by the self-tallying voting substrate: authorities in ΠSTVS (paper
Figure 18) send each voter encrypted shares of their secret exponent, and
ballots are ElGamal-form values whose product self-tallies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.crypto.groups import TEST_GROUP, SchnorrGroup


@dataclass(frozen=True)
class ElGamalCiphertext:
    """An ElGamal pair ``(a, b) = (g^k, m · y^k)``."""

    a: int
    b: int


def elgamal_keygen(rng, group: SchnorrGroup = TEST_GROUP) -> Tuple[int, int]:
    """Return ``(secret, public)`` with ``public = g^secret``."""
    secret = group.random_scalar(rng)
    return secret, group.power_of_g(secret)


def elgamal_encrypt(
    group: SchnorrGroup, public: int, message: int, rng
) -> ElGamalCiphertext:
    """Encrypt group element ``message`` under ``public``."""
    if not group.is_member(message):
        raise ValueError("message must be a group element")
    k = group.random_scalar(rng)
    return ElGamalCiphertext(
        a=group.power_of_g(k), b=group.multi_exp(((message, 1), (public, k)))
    )


def elgamal_ciphertext_valid(group: SchnorrGroup, ciphertext: ElGamalCiphertext) -> bool:
    """Whether both components are elements of the order-``q`` subgroup.

    Honest ciphertexts always are; batch-verification layers and decrypt
    fast paths screen with this (a single Jacobi symbol per component on
    safe-prime groups) before assuming subgroup-order arithmetic applies.
    """
    return group.is_member(ciphertext.a) and group.is_member(ciphertext.b)


def elgamal_decrypt(group: SchnorrGroup, secret: int, ciphertext: ElGamalCiphertext) -> int:
    """Recover the group element: ``b / a^secret``.

    For well-formed ciphertexts ``a`` has order ``q``, so the quotient
    collapses to one multi-exp ``b^1 · a^(q - secret mod q)`` — no
    modular inverse.  Malformed ciphertexts (components outside the
    subgroup) keep the literal invert-then-multiply evaluation.
    """
    if elgamal_ciphertext_valid(group, ciphertext):
        return group.multi_exp(
            ((ciphertext.b, 1), (ciphertext.a, (group.q - secret % group.q) % group.q))
        )
    return group.mul(ciphertext.b, group.inv(group.exp(ciphertext.a, secret)))


def elgamal_encrypt_exponent(
    group: SchnorrGroup, public: int, exponent: int, rng
) -> ElGamalCiphertext:
    """Exponential ElGamal: encrypt ``g^exponent`` (additively homomorphic)."""
    return elgamal_encrypt(group, public, group.power_of_g(exponent), rng)


def elgamal_decrypt_exponent(
    group: SchnorrGroup, secret: int, ciphertext: ElGamalCiphertext, bound: int = 1 << 20
) -> int:
    """Recover a small exponent from an exponential-ElGamal ciphertext."""
    return group.discrete_log_small(elgamal_decrypt(group, secret, ciphertext), bound=bound)


def elgamal_multiply(group: SchnorrGroup, c1: ElGamalCiphertext, c2: ElGamalCiphertext) -> ElGamalCiphertext:
    """Homomorphic combination (message multiplication / exponent addition)."""
    return ElGamalCiphertext(a=group.mul(c1.a, c2.a), b=group.mul(c1.b, c2.b))
