"""Schnorr signatures (EUF-CMA in the random-oracle model).

Fact 1 of the paper realizes ``FRBC`` via Dolev–Strong, which needs a
UC-secure signature scheme; ``Fcert`` (Figure 4) abstracts exactly that.
This module provides the concrete scheme used when running the *composed*
world (Dolev–Strong over real signatures instead of the ideal ``Fcert``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.crypto.batch import BatchItem, Equation
from repro.crypto.groups import TEST_GROUP, SchnorrGroup
from repro.crypto.hashing import hash_to_int
from repro.crypto.randomness import current_source


@dataclass(frozen=True)
class SchnorrKeyPair:
    """A Schnorr signing key ``x`` with verification key ``y = g^x``."""

    group: SchnorrGroup
    secret: int
    public: int


@dataclass(frozen=True)
class SchnorrSignature:
    """A signature (commitment ``r``, response ``s``)."""

    r: int
    s: int


def schnorr_keygen(rng, group: SchnorrGroup = TEST_GROUP) -> SchnorrKeyPair:
    """Sample a key pair in ``group``."""
    secret = group.random_scalar(rng)
    return SchnorrKeyPair(group=group, secret=secret, public=group.power_of_g(secret))


def _challenge(group: SchnorrGroup, r: int, public: int, message: bytes) -> int:
    return hash_to_int(
        group.element_to_bytes(r),
        group.element_to_bytes(public),
        message,
        modulus=group.q,
        domain=b"schnorr-sig",
    )


def schnorr_sign(keypair: SchnorrKeyPair, message: bytes, rng) -> SchnorrSignature:
    """Sign ``message``: r = g^k, e = H(r, y, M), s = k + e·x mod q.

    The nonce pair comes from the ambient
    :class:`~repro.crypto.randomness.RandomnessSource`: sampled from
    ``rng`` by default, spent from a preprocessed pool in online mode.
    """
    group = keypair.group
    k, r = current_source().schnorr_nonce(group, rng)
    e = _challenge(group, r, keypair.public, message)
    s = (k + e * keypair.secret) % group.q
    return SchnorrSignature(r=r, s=s)


def schnorr_verify(
    group: SchnorrGroup, public: int, message: bytes, signature: SchnorrSignature
) -> bool:
    """Verify: g^s == r · y^e."""
    if not group.is_member(public) or not group.is_member(signature.r):
        return False
    e = _challenge(group, signature.r, public, message)
    lhs = group.power_of_g(signature.s)
    rhs = group.multi_exp(((signature.r, 1), (public, e)))
    return lhs == rhs


def schnorr_batch_item(
    group: SchnorrGroup, public: int, message: bytes, signature: SchnorrSignature
) -> BatchItem:
    """A :class:`~repro.crypto.batch.BatchItem` for one signature check.

    Equation: ``g^s == r · y^e`` with ``e`` bound here (the Fiat–Shamir
    hash is cheap; the exponentiations are what the batch amortises).
    Out-of-range elements skip equation construction entirely and resolve
    through :func:`schnorr_verify`, which rejects them via the membership
    checks — verdict parity is exact.
    """
    check = partial(schnorr_verify, group, public, message, signature)
    if not (0 < public < group.p and 0 < signature.r < group.p):
        return BatchItem(bases=(), equations=(), check=check)
    e = _challenge(group, signature.r, public, message)
    equation = Equation(
        lhs=((group.g, signature.s),),
        rhs=((signature.r, 1), (public, e)),
    )
    return BatchItem(bases=(public, signature.r), equations=(equation,), check=check)
