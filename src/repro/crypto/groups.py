"""Schnorr groups: prime-order subgroups of Z_p^*.

Used by the signature scheme realizing ``Fcert`` (Fact 1 needs an EUF-CMA
scheme) and by the self-tallying voting application ([SP15]/[KY02] work in
a DDH group where ballots have the form :math:`r^{x_i} g^{v_i}`).

Two parameter sets ship:

* :data:`TEST_GROUP` — a 256-bit safe prime, fast enough to run thousands
  of protocol instances in tests and benchmarks while preserving all the
  algebraic structure (the paper's proofs never depend on the modulus
  size, only on group structure);
* :data:`GROUP_2048` — a 2048-bit MODP group (RFC 3526) for
  production-strength parameters.

Acceleration layer
------------------

The group carries three caches, all mathematically transparent (every
accelerated path returns bit-identical values to the naive formulas, so
seeded executions are unaffected):

* **fixed-base windows** — ``g``-powers dominate the signing/proving hot
  path, so :meth:`power_of_g` uses a precomputed table of
  :math:`g^{d \\cdot 2^{wi}}` digits (built lazily; small groups build it
  on first use, large groups after :data:`FIXED_BASE_AUTO_CALLS` uses or
  via an explicit :meth:`precompute_fixed_base`);
* **simultaneous multi-exponentiation** — :meth:`multi_exp` evaluates
  :math:`\\prod b_i^{e_i}` sharing the squaring ladder between bases
  (Straus interleaving) when the modulus is large enough for Python-level
  interleaving to beat repeated C ``pow``; verification equations of the
  form ``a · y^e`` route through it;
* **cached element encodings** — :meth:`element_to_bytes` memoises the
  fixed-width encodings that Fiat–Shamir challenges hash over and over.

Arithmetic tier
---------------

Underneath the caches sits a swappable :class:`ArithBackend` carrying the
primitive big-integer operations (modular exponentiation, inversion,
Jacobi symbols, and the native representation used inside multiplication
loops).  Two backends ship: :class:`PythonArith` (plain ``int`` — always
available, the compatibility reference) and :class:`Gmpy2Arith` (GMP via
``gmpy2`` where installed).  Selection order: an explicit
:func:`set_arith_backend` call (the CLI's ``--arith``) wins, then the
``REPRO_ARITH`` environment variable (``auto``/``gmpy2``/``python``,
read at import with warn-and-fallback), then auto-detection (gmpy2 if
importable, else python).  Every public :class:`SchnorrGroup` method
normalizes results to built-in ``int`` whatever the backend, so pickled
groups, serialized material blobs and trace digests are byte-identical
across backends.
"""

from __future__ import annotations

import math
import os
import threading
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Moduli at most this many bits precompute the fixed-base table on first
#: use (the build is ~1k multiplications — microseconds at test sizes).
FIXED_BASE_AUTO_BITS = 512

#: Larger moduli (e.g. the 2048-bit MODP group) amortise the table build
#: only across repeated use; they switch after this many ``g``-powers.
FIXED_BASE_AUTO_CALLS = 32

#: Interleaved multi-exponentiation beats repeated C ``pow`` only once the
#: per-multiplication cost dwarfs interpreter overhead; below this modulus
#: size :meth:`SchnorrGroup.multi_exp` just multiplies ``pow`` results.
MULTI_EXP_MIN_BITS = 1024

#: ... unless enough bases share the squaring ladder: from this many
#: general bases up, Straus interleaving amortises the shared squarings
#: even at test-size moduli (the batch-verification regime, where one
#: combined equation carries dozens of bases with short coefficients).
MULTI_EXP_MIN_BASES = 6

#: Bound on the per-group encoding cache (entries).
_ENCODING_CACHE_MAX = 4096


# -- arithmetic backends ---------------------------------------------------


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd ``n > 0`` (binary algorithm).

    For prime ``n`` this is the Legendre symbol, so for a safe prime
    ``p = 2q + 1`` membership in the order-``q`` subgroup (the quadratic
    residues) is ``jacobi(a, p) == 1`` by Euler's criterion — a few
    thousand word operations instead of a full-width exponentiation.
    """
    a %= n
    result = 1
    while a:
        while a & 1 == 0:
            a >>= 1
            r = n & 7
            if r == 3 or r == 5:
                result = -result
        a, n = n, a
        if a & 3 == 3 and n & 3 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


class ArithBackend:
    """Primitive big-integer operations behind :class:`SchnorrGroup`.

    Implementations must be value-identical: same inputs, same integers
    out.  ``powmod``/``invert`` return built-in ``int``; ``to_native``
    wraps a value in the backend's fastest multiplication type for use
    inside tight ``a * b % p`` loops (callers normalize with ``int()``
    before anything crosses an API boundary).
    """

    name: str = "abstract"

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        raise NotImplementedError

    def invert(self, a: int, modulus: int) -> int:
        raise NotImplementedError

    def jacobi(self, a: int, n: int) -> int:
        raise NotImplementedError

    def to_native(self, value: int):
        raise NotImplementedError


class PythonArith(ArithBackend):
    """Pure-python reference backend (always available)."""

    name = "python"

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)

    def invert(self, a: int, modulus: int) -> int:
        return pow(a, -1, modulus)

    def jacobi(self, a: int, n: int) -> int:
        return jacobi(a, n)

    def to_native(self, value: int) -> int:
        return value


class Gmpy2Arith(ArithBackend):
    """GMP-backed backend via ``gmpy2`` (when importable)."""

    name = "gmpy2"

    def __init__(self, module) -> None:
        self._gmpy2 = module
        self._mpz = module.mpz

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return int(self._gmpy2.powmod(base, exponent, modulus))

    def invert(self, a: int, modulus: int) -> int:
        try:
            return int(self._gmpy2.invert(a, modulus))
        except ZeroDivisionError:
            # Match CPython's pow(a, -1, m) error so callers catch one type.
            raise ValueError("base is not invertible for the given modulus") from None

    def jacobi(self, a: int, n: int) -> int:
        return int(self._gmpy2.jacobi(a, n))

    def to_native(self, value: int):
        return self._mpz(value)


def _detect_backends() -> Dict[str, ArithBackend]:
    backends: Dict[str, ArithBackend] = {"python": PythonArith()}
    try:
        import gmpy2  # noqa: F401 — optional accelerator
    except ImportError:
        return backends
    backends["gmpy2"] = Gmpy2Arith(gmpy2)
    return backends


_ARITH_BACKENDS: Dict[str, ArithBackend] = _detect_backends()
_ARITH: ArithBackend = _ARITH_BACKENDS["python"]


def available_arith_backends() -> Tuple[str, ...]:
    """Names of the arithmetic backends importable in this process."""
    return tuple(sorted(_ARITH_BACKENDS))


def get_arith_backend() -> ArithBackend:
    """The arithmetic backend currently in effect."""
    return _ARITH


def set_arith_backend(name: Optional[str]) -> ArithBackend:
    """Select the arithmetic backend by name.

    ``"auto"`` (or ``None``) picks gmpy2 when importable, else python.
    Explicit names must be available — an unknown or uninstalled backend
    raises :class:`ValueError` (the ``REPRO_ARITH`` environment variable
    gets warn-and-fallback instead; see module init).  Values are
    identical across backends, so switching mid-process is safe: only
    speed changes, never results.
    """
    global _ARITH
    if name is None or name == "auto":
        _ARITH = _ARITH_BACKENDS.get("gmpy2", _ARITH_BACKENDS["python"])
        return _ARITH
    try:
        _ARITH = _ARITH_BACKENDS[name]
    except KeyError:
        known = ", ".join(("auto",) + available_arith_backends())
        raise ValueError(f"unknown arith backend {name!r} (known: {known})") from None
    return _ARITH


def _init_arith_from_env() -> None:
    requested = os.environ.get("REPRO_ARITH", "auto").strip().lower() or "auto"
    try:
        set_arith_backend(requested)
    except ValueError:
        warnings.warn(
            f"REPRO_ARITH={requested!r} is not available here "
            f"(importable: {', '.join(available_arith_backends())}); "
            "falling back to auto-detection",
            RuntimeWarning,
            stacklevel=2,
        )
        set_arith_backend("auto")


_init_arith_from_env()


@dataclass(frozen=True)
class SchnorrGroup:
    """A cyclic group of prime order ``q`` inside Z_p^* with generator ``g``.

    For a safe prime ``p = 2q + 1`` the quadratic residues form the unique
    subgroup of order ``q``.
    """

    p: int
    q: int
    g: int

    def __post_init__(self) -> None:
        if _ARITH.powmod(self.g, self.q, self.p) != 1:
            raise ValueError("generator does not have order q")
        if self.g in (0, 1):
            raise ValueError("degenerate generator")
        # Safe primes (p = 2q + 1) get the Jacobi-symbol membership fast
        # path: the order-q subgroup is exactly the quadratic residues,
        # so Euler's criterion replaces a full-width pow.
        object.__setattr__(self, "_safe_prime", self.p == 2 * self.q + 1)
        # Acceleration state (not dataclass fields: excluded from eq/hash/repr).
        # A group instance is shared across SessionPool thread workers, so
        # lazy population of these caches is guarded by ``_accel_lock``;
        # reads stay lock-free (once set, the table never changes, and the
        # encoding cache only ever gains idempotently-computed entries).
        object.__setattr__(self, "_width", (self.p.bit_length() + 7) // 8)
        object.__setattr__(self, "_fb_state", None)
        object.__setattr__(self, "_fb_calls", 0)
        object.__setattr__(self, "_encoding_cache", {})
        object.__setattr__(self, "_accel_lock", threading.Lock())

    def __getstate__(self) -> Dict[str, Any]:
        # Process workers receive groups by value (e.g. inside runner
        # kwargs); ship only the mathematical identity — locks don't
        # pickle, and each worker rebuilds its caches (or pre-warms them
        # via :func:`warm_groups` in the pool initializer).
        return {"p": self.p, "q": self.q, "g": self.g}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        self.__post_init__()

    # -- group operations ------------------------------------------------

    def exp(self, base: int, exponent: int) -> int:
        """``base ** exponent mod p`` (exponent reduced mod q)."""
        if base == self.g:
            return self.power_of_g(exponent)
        return _ARITH.powmod(base, exponent % self.q, self.p)

    def power_of_g(self, exponent: int) -> int:
        """``g ** exponent mod p`` (fixed-base windowed once warmed up)."""
        e = exponent % self.q
        if self._fb_state is None:
            if self.p.bit_length() > FIXED_BASE_AUTO_BITS and self._fb_calls < FIXED_BASE_AUTO_CALLS:
                # Racing threads may each bump the counter; the lock makes
                # the read-modify-write atomic so the auto-warm threshold
                # cannot be overshot by a lost update (RPR004).  Cheap:
                # this branch runs at most FIXED_BASE_AUTO_CALLS times.
                with self._accel_lock:
                    object.__setattr__(self, "_fb_calls", self._fb_calls + 1)
                return _ARITH.powmod(self.g, e, self.p)
            self.precompute_fixed_base()
        return self._fixed_base_pow(e)

    def mul(self, a: int, b: int) -> int:
        """Group multiplication."""
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        """Group inverse."""
        return _ARITH.invert(a, self.p)

    def is_member(self, a: int) -> bool:
        """Membership test for the order-q subgroup.

        Safe-prime groups use the Jacobi-symbol fast path (identical
        verdicts to the Euler-criterion pow, orders of magnitude
        cheaper); other parameter sets keep the direct order check.
        """
        if not 0 < a < self.p:
            return False
        if self._safe_prime:
            return _ARITH.jacobi(a, self.p) == 1
        return _ARITH.powmod(a, self.q, self.p) == 1

    def random_scalar(self, rng) -> int:
        """Uniform exponent in [1, q)."""
        # The seam's own substrate: SampleSource/current_source() resolve
        # *to* this primitive, so it draws from the rng directly.
        return rng.randrange(1, self.q)  # repro: allow[RPR002]

    def random_element(self, rng) -> int:
        """Uniform non-identity group element."""
        return self.power_of_g(self.random_scalar(rng))

    def element_to_bytes(self, a: int) -> bytes:
        """Fixed-width big-endian encoding of a group element (memoised).

        Fiat–Shamir challenges re-encode the same public keys, generators
        and commitments many times per proof; the cache is bounded and
        keyed by element value.
        """
        cache: Dict[int, bytes] = self._encoding_cache
        encoded = cache.get(a)
        if encoded is None:
            encoded = a.to_bytes(self._width, "big")
            # Population is idempotent (the encoding is a pure function of
            # the element), so concurrent computes agree; the insertion is
            # locked only to keep the size bound exact under thread races,
            # and once the cache is full misses never touch the lock.
            if len(cache) < _ENCODING_CACHE_MAX:
                with self._accel_lock:
                    if len(cache) < _ENCODING_CACHE_MAX:
                        cache[a] = encoded
        return encoded

    # -- fixed-base acceleration ------------------------------------------

    def warm_up(self) -> "SchnorrGroup":
        """Eagerly build every lazy cache this group carries.

        Worker initializers call this once per process so pooled sessions
        never pay table construction mid-trial; safe to call repeatedly
        and from concurrent threads.
        """
        self.precompute_fixed_base()
        self.element_to_bytes(1)
        self.element_to_bytes(self.g)
        return self

    @property
    def _fb_table(self) -> Optional[List[List[int]]]:
        """The fixed-base table, or None before the first build/install."""
        state = self._fb_state
        return state[1] if state is not None else None

    @property
    def _fb_window(self) -> int:
        """Window width of the built table (0 before the first build)."""
        state = self._fb_state
        return state[0] if state is not None else 0

    @property
    def default_fb_window(self) -> int:
        """Default window width: table-build cost vs per-exp savings."""
        return 6 if self.p.bit_length() <= 1024 else 5

    @property
    def fb_table_bytes(self) -> int:
        """Serialized footprint of the fixed-base table (0 when unbuilt).

        Every entry is one group element at the group's fixed encoding
        width; the preprocessing store inspector reports this so operators
        can see what a cached table costs on disk and in shared memory.
        """
        state = self._fb_state
        if state is None:
            return 0
        _w, table = state
        return len(table) * len(table[0]) * self._width

    def precompute_fixed_base(self, window: Optional[int] = None) -> None:
        """Build the fixed-base window table for :meth:`power_of_g`.

        Idempotent and thread-safe: repeated calls with the default (or
        the already-built) window are a cheap no-op — the window and
        table publish together as one ``(window, table)`` reference, so
        lock-free readers can never pair a stale table with a fresh
        window.  An *explicit* ``window`` different from the built one
        rebuilds at the requested width.  ``window`` is the digit width
        in bits; the default balances table-build cost against
        per-exponentiation savings for the group's modulus size.
        """
        state = self._fb_state
        if state is not None and (window is None or window == state[0]):
            return
        w = window if window is not None else self.default_fb_window
        if w < 1:
            raise ValueError("window must be >= 1")
        with self._accel_lock:
            state = self._fb_state
            if state is not None and w == state[0]:
                return
            windows = (self.q.bit_length() + w - 1) // w
            arith = _ARITH
            p = arith.to_native(self.p)
            table: List[List[int]] = []
            base = arith.to_native(self.g)
            for _ in range(windows):
                # Build in the backend's native type, store plain ints:
                # table entries feed ``element_to_bytes``-style encoders
                # and the RPM1 material serializer, which require ``int``.
                row = [1] * (1 << w)
                acc = arith.to_native(1)
                for digit in range(1, 1 << w):
                    acc = acc * base % p
                    row[digit] = int(acc)
                table.append(row)
                base = acc * base % p  # base ** (2 ** w)
            object.__setattr__(self, "_fb_state", (w, table))

    def install_fixed_base(self, table: List[List[int]], window: int) -> None:
        """Attach a precomputed fixed-base table instead of rebuilding it.

        The online half of the preprocessing store: workers deserialize
        the offline-built table and install it here.  The table's shape
        and a few entries are verified against the group (the store's
        integrity hash catches bit rot; this catches a well-formed table
        for the *wrong* parameters), so a bad install can never silently
        corrupt ``power_of_g``.

        Raises:
            ValueError: the table does not match this group's parameters.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        rows = (self.q.bit_length() + window - 1) // window
        if len(table) != rows or any(len(row) != (1 << window) for row in table):
            raise ValueError(
                f"fixed-base table shape mismatch: expected {rows} rows of "
                f"{1 << window} entries"
            )
        if table[0][0] != 1 or table[0][1] != self.g:
            raise ValueError("fixed-base table row 0 does not start at g")
        # Spot-check row 0's top digit against the direct formula, then
        # chain-check every row's base: row i+1 is built on
        # base_{i+1} = base_i^(2^w) = row_i[2^w - 1] * row_i[1].  One
        # multiplication per row anchors the whole ladder to g without a
        # single full-width pow (the blob's integrity hash covers bit
        # rot; this guards a well-formed table for the wrong group).
        if table[0][-1] != pow(self.g, (1 << window) - 1, self.p):
            raise ValueError("fixed-base table row 0 is inconsistent")
        p = self.p
        for index in range(rows - 1):
            if table[index + 1][1] != table[index][-1] * table[index][1] % p:
                raise ValueError(
                    f"fixed-base table row {index + 1} does not chain from "
                    f"row {index}"
                )
        with self._accel_lock:
            object.__setattr__(self, "_fb_state", (window, [list(row) for row in table]))

    def _fixed_base_pow(self, e: int) -> int:
        """``g ** e`` via the window table (``e`` already reduced mod q)."""
        w, table = self._fb_state
        mask = (1 << w) - 1
        arith = _ARITH
        p = arith.to_native(self.p)
        result = arith.to_native(1)
        index = 0
        while e:
            digit = e & mask
            if digit:
                result = result * table[index][digit] % p
            e >>= w
            index += 1
        return int(result)

    # -- simultaneous multi-exponentiation ----------------------------------

    def multi_exp(self, pairs: Iterable[Tuple[int, int]]) -> int:
        """:math:`\\prod_i base_i^{e_i} \\bmod p` (exponents reduced mod q).

        Ballot and ZKP verification equations have the shape
        ``a · y^e``; expressing them as ``multi_exp(((a, 1), (y, e)))``
        lets the group share squarings between simultaneous large
        exponentiations (Straus interleaving) where that pays off, and
        fold generator powers into the fixed-base table.  Identical
        results to multiplying individual :meth:`exp` outputs.
        """
        q = self.q
        p = self.p
        g = self.g
        g_exponent = 0
        merged: Dict[int, int] = {}
        for base, exponent in pairs:
            e = exponent % q
            if e == 0:
                continue
            b = base % p
            if b == g:
                g_exponent = (g_exponent + e) % q
            else:
                prior = merged.get(b)
                merged[b] = e if prior is None else (prior + e) % q
        result = 1
        general: List[Tuple[int, int]] = []
        for b, e in merged.items():
            if e == 0:
                continue
            if e == 1:
                result = result * b % p
            else:
                general.append((b, e))
        if g_exponent:
            result = result * self.power_of_g(g_exponent) % p
        if len(general) >= 2 and (
            p.bit_length() >= MULTI_EXP_MIN_BITS or len(general) >= MULTI_EXP_MIN_BASES
        ):
            result = result * self._interleaved_multi_exp(general) % p
        else:
            arith = _ARITH
            for b, e in general:
                result = result * arith.powmod(b, e, p) % p
        return int(result)

    def _interleaved_multi_exp(self, pairs: List[Tuple[int, int]], window: Optional[int] = None) -> int:
        """Straus: one shared squaring ladder, per-base digit tables."""
        arith = _ARITH
        p = arith.to_native(self.p)
        max_bits = max(e.bit_length() for _, e in pairs)
        if window is None:
            # Short exponents (batch-verification coefficients are 64-bit)
            # don't amortise a wide table; full-width ones do.
            window = 5 if max_bits > 128 else 3
        mask = (1 << window) - 1
        tables: List[List[int]] = []
        for base, _ in pairs:
            row: List[int] = [1] * (1 << window)
            acc = arith.to_native(1)
            b = arith.to_native(base)
            for digit in range(1, 1 << window):
                acc = acc * b % p
                row[digit] = acc
            tables.append(row)
        positions = (max_bits + window - 1) // window
        result = arith.to_native(1)
        for index in range(positions - 1, -1, -1):
            if result != 1:
                for _ in range(window):
                    result = result * result % p
            shift = index * window
            for (_base, e), row in zip(pairs, tables):
                digit = (e >> shift) & mask
                if digit:
                    result = result * row[digit] % p
        return int(result)

    # -- small discrete logs -------------------------------------------------

    def discrete_log_small(self, target: int, base: Optional[int] = None, bound: int = 1 << 20) -> int:
        """Discrete log for small exponents, via baby-step/giant-step.

        Self-tallying elections recover the tally as the discrete log of
        :math:`g^{\\sum v_i}`, which is at most (#voters × max-vote) — tiny.
        Runs in :math:`O(\\sqrt{bound})` group operations instead of the
        former linear scan; returns the smallest matching exponent in
        ``[0, bound)``, exactly as the scan did.

        Raises:
            ValueError: if no exponent below ``bound`` matches.
        """
        base = self.g if base is None else base
        if bound <= 0:
            raise ValueError("discrete log not found below bound")
        p = self.p
        target = target % p
        m = math.isqrt(bound - 1) + 1  # m * m >= bound
        baby: Dict[int, int] = {}
        acc = 1
        for j in range(m):
            baby.setdefault(acc, j)  # keep the smallest j per value
            acc = acc * base % p
        # acc == base ** m; walk giant steps target, target/acc, ...
        giant: Optional[int] = None
        gamma = target
        for i in range((bound + m - 1) // m):
            j = baby.get(gamma)
            if j is not None and i * m + j < bound:
                return i * m + j
            if giant is None:
                try:
                    giant = self.inv(acc)
                except ValueError:
                    break  # base not invertible mod p: nothing beyond baby steps
            gamma = gamma * giant % p
        raise ValueError("discrete log not found below bound")


def _find_safe_prime_group(p: int) -> SchnorrGroup:
    q = (p - 1) // 2
    # 4 = 2^2 is always a quadratic residue, hence has order q.
    return SchnorrGroup(p=p, q=q, g=4)


#: 256-bit safe prime group for tests/benchmarks.
#: p = 2q+1 with p, q prime (verified in tests/test_groups.py).
TEST_GROUP = _find_safe_prime_group(
    0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF72EF
)

#: RFC 3526 2048-bit MODP group (generator 2 generates the full group of
#: order 2q; we use g=4 for the order-q subgroup of quadratic residues).
_P_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
GROUP_2048 = SchnorrGroup(p=_P_2048, q=(_P_2048 - 1) // 2, g=4)


def warm_groups(include_large: bool = False) -> None:
    """Pre-warm the shipped parameter sets' acceleration caches.

    The process-pool worker initializer calls this so every worker starts
    with the :data:`TEST_GROUP` fixed-base window table and encoding cache
    already built, instead of each trial paying construction on first use.
    ``include_large`` also warms :data:`GROUP_2048` (a few thousand
    2048-bit multiplications — only worth it for production-parameter
    sweeps).
    """
    TEST_GROUP.warm_up()
    if include_large:
        GROUP_2048.warm_up()
