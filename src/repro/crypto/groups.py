"""Schnorr groups: prime-order subgroups of Z_p^*.

Used by the signature scheme realizing ``Fcert`` (Fact 1 needs an EUF-CMA
scheme) and by the self-tallying voting application ([SP15]/[KY02] work in
a DDH group where ballots have the form :math:`r^{x_i} g^{v_i}`).

Two parameter sets ship:

* :data:`TEST_GROUP` — a 256-bit safe prime, fast enough to run thousands
  of protocol instances in tests and benchmarks while preserving all the
  algebraic structure (the paper's proofs never depend on the modulus
  size, only on group structure);
* :data:`GROUP_2048` — a 2048-bit MODP group (RFC 3526) for
  production-strength parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SchnorrGroup:
    """A cyclic group of prime order ``q`` inside Z_p^* with generator ``g``.

    For a safe prime ``p = 2q + 1`` the quadratic residues form the unique
    subgroup of order ``q``.
    """

    p: int
    q: int
    g: int

    def __post_init__(self) -> None:
        if pow(self.g, self.q, self.p) != 1:
            raise ValueError("generator does not have order q")
        if self.g in (0, 1):
            raise ValueError("degenerate generator")

    # -- group operations ------------------------------------------------

    def exp(self, base: int, exponent: int) -> int:
        """``base ** exponent mod p`` (exponent reduced mod q)."""
        return pow(base, exponent % self.q, self.p)

    def power_of_g(self, exponent: int) -> int:
        """``g ** exponent mod p``."""
        return self.exp(self.g, exponent)

    def mul(self, a: int, b: int) -> int:
        """Group multiplication."""
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        """Group inverse."""
        return pow(a, -1, self.p)

    def is_member(self, a: int) -> bool:
        """Membership test for the order-q subgroup."""
        return 0 < a < self.p and pow(a, self.q, self.p) == 1

    def random_scalar(self, rng) -> int:
        """Uniform exponent in [1, q)."""
        return rng.randrange(1, self.q)

    def random_element(self, rng) -> int:
        """Uniform non-identity group element."""
        return self.power_of_g(self.random_scalar(rng))

    def element_to_bytes(self, a: int) -> bytes:
        """Fixed-width big-endian encoding of a group element."""
        width = (self.p.bit_length() + 7) // 8
        return a.to_bytes(width, "big")

    def discrete_log_small(self, target: int, base: Optional[int] = None, bound: int = 1 << 20) -> int:
        """Brute-force discrete log for small exponents.

        Self-tallying elections recover the tally as the discrete log of
        :math:`g^{\\sum v_i}`, which is at most (#voters × max-vote) — tiny.

        Raises:
            ValueError: if no exponent below ``bound`` matches.
        """
        base = self.g if base is None else base
        accumulator = 1
        for exponent in range(bound):
            if accumulator == target:
                return exponent
            accumulator = self.mul(accumulator, base)
        raise ValueError("discrete log not found below bound")


def _find_safe_prime_group(p: int) -> SchnorrGroup:
    q = (p - 1) // 2
    # 4 = 2^2 is always a quadratic residue, hence has order q.
    return SchnorrGroup(p=p, q=q, g=4)


#: 256-bit safe prime group for tests/benchmarks.
#: p = 2q+1 with p, q prime (verified in tests/test_groups.py).
TEST_GROUP = _find_safe_prime_group(
    0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF72EF
)

#: RFC 3526 2048-bit MODP group (generator 2 generates the full group of
#: order 2q; we use g=4 for the order-q subgroup of quadratic residues).
_P_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
GROUP_2048 = SchnorrGroup(p=_P_2048, q=(_P_2048 - 1) // 2, g=4)
