"""Cryptographic substrate.

Everything is built from the standard library (``hashlib``/``hmac``) —
the paper's constructions only need a hash function (modelled as a random
oracle), a symmetric-key encryption scheme, an EUF-CMA signature scheme
(for realizing ``Fcert``), and, for the self-tallying voting application,
a prime-order group with ElGamal-form ballots and Σ-protocol ZK proofs.

Modules
-------
* :mod:`repro.crypto.hashing` — hash utilities, XOR, domain separation.
* :mod:`repro.crypto.ske` — IND-CPA symmetric encryption (hash stream
  cipher + MAC), used by the Astrolabous TLE scheme.
* :mod:`repro.crypto.groups` — Schnorr group (prime-order subgroup of
  :math:`\\mathbb{Z}_p^*`) with safe test/production parameter sets and
  the pluggable arithmetic tier (pure-python default, gmpy2 when the
  optional native extra is installed; values identical either way).
* :mod:`repro.crypto.batch` — random-linear-combination batch
  verification: check N Σ-protocol equations with one seeded multi-exp,
  bisect to the exact culprit set on failure.
* :mod:`repro.crypto.schnorr` — Schnorr signatures (EUF-CMA in the ROM).
* :mod:`repro.crypto.elgamal` — (exponential) ElGamal encryption.
* :mod:`repro.crypto.zkp` — Schnorr PoK, Chaum–Pedersen equality, and
  disjunctive 0/1-vote proofs (Fiat–Shamir).
* :mod:`repro.crypto.shamir` — Shamir secret sharing + Feldman VSS, used
  by the honest-majority Hevia baseline.
* :mod:`repro.crypto.preprocessing` — the offline phase: build, serialize
  and attach precomputed crypto material (fixed-base tables, Schnorr
  nonce pools, Feldman-committed randomness) for the worker fleet.
* :mod:`repro.crypto.randomness` — the online-phase seam: signing,
  proving and Feldman sharing draw their nonces/polynomials from the
  ambient :class:`~repro.crypto.randomness.RandomnessSource` (default:
  sample per call; pool-backed cursors spend preprocessed material).
"""

from repro.crypto.batch import (
    BatchItem,
    BatchPolicy,
    BatchReport,
    batching,
    current_policy,
    verify_batch,
)
from repro.crypto.elgamal import ElGamalCiphertext, elgamal_decrypt, elgamal_encrypt, elgamal_keygen
from repro.crypto.groups import (
    TEST_GROUP,
    SchnorrGroup,
    available_arith_backends,
    get_arith_backend,
    set_arith_backend,
)
from repro.crypto.hashing import hash_bytes, hash_to_int, xor_bytes
from repro.crypto.preprocessing import (
    CryptoMaterial,
    MaterialError,
    MaterialIntegrityError,
    build_material,
    deserialize_material,
    group_fingerprint,
    serialize_material,
)
from repro.crypto.randomness import (
    RandomnessSource,
    SampleSource,
    current_source,
    install_source,
    spending,
)
from repro.crypto.schnorr import SchnorrKeyPair, schnorr_keygen, schnorr_sign, schnorr_verify
from repro.crypto.ske import SymmetricKey, ske_decrypt, ske_encrypt, ske_gen

__all__ = [
    "BatchItem",
    "BatchPolicy",
    "BatchReport",
    "CryptoMaterial",
    "ElGamalCiphertext",
    "MaterialError",
    "MaterialIntegrityError",
    "RandomnessSource",
    "SampleSource",
    "SchnorrGroup",
    "SchnorrKeyPair",
    "SymmetricKey",
    "TEST_GROUP",
    "available_arith_backends",
    "batching",
    "build_material",
    "current_policy",
    "current_source",
    "deserialize_material",
    "elgamal_decrypt",
    "elgamal_encrypt",
    "elgamal_keygen",
    "get_arith_backend",
    "group_fingerprint",
    "hash_bytes",
    "hash_to_int",
    "install_source",
    "serialize_material",
    "set_arith_backend",
    "schnorr_keygen",
    "schnorr_sign",
    "schnorr_verify",
    "ske_decrypt",
    "ske_encrypt",
    "ske_gen",
    "spending",
    "verify_batch",
    "xor_bytes",
]
