"""Random-linear-combination batch verification.

Protocol rounds verify many proofs of the same handful of shapes —
Schnorr signatures on certified messages, PoK/Chaum–Pedersen statements,
disjunctive ballot proofs.  Each one costs a few full-width
exponentiations; N of them cost N times that.  The classic fix (the
``batch_opening``/``batch_reconstruction`` idiom in HoneyBadgerMPC-style
stacks) is a *random linear combination*: scale every verification
equation by an independent short random coefficient, multiply them all
together, and check the single combined equation with one simultaneous
multi-exponentiation.  If every equation holds, the combination holds;
if any fails, the combination fails except with probability
:math:`2^{-63}` per trial (an adversary would have to guess the
coefficients drawn *after* the proofs were fixed).

The pieces:

* :class:`Equation` / :class:`BatchItem` — one candidate's verification
  work, pre-chewed: group-element bases to membership-screen, equations
  of the form :math:`\\prod lhs_i = \\prod rhs_j`, and an exact per-item
  ``check()`` fallback;
* :func:`verify_batch` — the engine: screens memberships (cached across
  items — public keys repeat), draws one 64-bit coefficient *per
  equation* from a seeded RNG, evaluates the combined equation through
  :meth:`~repro.crypto.groups.SchnorrGroup.multi_exp` (Straus shares
  the squaring ladder across every base in the batch), and on failure
  bisects divide-and-conquer style down to the exact culprit set;
* :class:`BatchPolicy` + :func:`batching` — the ambient opt-in seam
  (mirrors :mod:`repro.crypto.randomness`): protocol code asks
  :func:`current_policy` and batches only when one is installed, so the
  default path stays per-item and byte-identical to the sequential
  reference.

Soundness requires every base to live in the order-q subgroup (a rogue
element of order 2 can cancel between equations), so items whose bases
fail the membership screen — and items with no equations at all — are
resolved through their exact ``check()``.  Leaves of the bisection also
resolve via ``check()``, which makes the final verdict vector *exactly*
the per-item verdicts (up to the negligible false-accept probability of
a passing combined equation), preserving output parity with unbatched
runs.

Coefficients come from ``random.Random(seed)`` and each item draws one
coefficient per equation: a *single* per-item coefficient would be
unsound, since errors in two equations of the same item could cancel.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.crypto.groups import SchnorrGroup

#: Trace event kind recorded for each batched verification round (the
#: analogue of ``online.spend``: batched runs are digest-pinned).
BATCH_EVENT_KIND = "verify.batch"

#: Default RLC coefficient seed; any fixed value is sound (coefficients
#: only need to be unpredictable to the *prover*, who committed to the
#: proofs before the batch was formed) and a fixed default keeps runs
#: reproducible.
DEFAULT_BATCH_SEED = 0x5BC

#: Width of the random coefficients (bits); error-detection probability
#: is 1 - 2^{-COEFFICIENT_BITS+1} per combined evaluation.
COEFFICIENT_BITS = 64


@dataclass(frozen=True)
class Equation:
    """One verification equation ``prod(lhs) == prod(rhs)``.

    Both sides are ``(base, exponent)`` pair tuples, evaluated modulo the
    group; keeping the two-sided form (instead of folding into
    ``prod(b^e) == 1``) preserves short exponents — negating an exponent
    mod q would widen a 64-bit coefficient to full q-width.
    """

    lhs: Tuple[Tuple[int, int], ...]
    rhs: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True, eq=False)
class BatchItem:
    """One candidate for batch verification.

    Attributes:
        bases: Every group element the equations exponentiate (screened
            for subgroup membership before the item may join a batch).
        equations: The item's verification equations; empty means "not
            batchable" and routes straight to ``check``.
        check: Exact per-item verifier (zero-arg), the ground truth for
            fallbacks and bisection leaves.
    """

    bases: Tuple[int, ...]
    equations: Tuple[Equation, ...]
    check: Callable[[], bool]


@dataclass(frozen=True)
class BatchReport:
    """Outcome of one :func:`verify_batch` call.

    Attributes:
        verdicts: Per-item validity, same order as the input items.
        culprits: Indices of invalid items (empty when all verified).
        batched: How many items entered the combined equation.
        fallback: How many items resolved via their exact ``check()``
            (non-member bases, no equations, or too few to batch).
        evaluations: Combined multi-exp evaluations performed (1 for a
            clean batch; grows logarithmically during bisection).
        seed: The RLC coefficient seed used (reproducibility anchor).
    """

    verdicts: Tuple[bool, ...]
    culprits: Tuple[int, ...]
    batched: int
    fallback: int
    evaluations: int
    seed: int

    @property
    def all_valid(self) -> bool:
        """True when every item verified."""
        return not self.culprits

    def trace_detail(self) -> Dict[str, Any]:
        """Canonical detail payload for the ``verify.batch`` trace event."""
        return {
            "items": len(self.verdicts),
            "batched": self.batched,
            "fallback": self.fallback,
            "evaluations": self.evaluations,
            "culprits": list(self.culprits),
            "seed": self.seed,
        }


def verify_batch(
    group: SchnorrGroup,
    items: Sequence[BatchItem],
    *,
    seed: int = DEFAULT_BATCH_SEED,
    min_items: int = 2,
) -> BatchReport:
    """Verify ``items`` together via one random-linear-combination check.

    Items whose bases all pass the (cached) membership screen and that
    carry at least one equation join the combined check; everything else
    — and every bisection leaf — resolves through its exact ``check()``,
    so the verdict vector matches per-item verification.  Fewer than
    ``min_items`` batchable items skip the combination entirely (one
    combined multi-exp costs more than one direct verify).

    Coefficients are drawn once per (item, equation) from
    ``random.Random(seed)`` in item order, so a given seed reproduces
    the exact evaluation sequence, bisection included.
    """
    item_list = list(items)
    n = len(item_list)
    verdicts: List[bool] = [False] * n
    membership: Dict[int, bool] = {}

    def member(element: int) -> bool:
        verdict = membership.get(element)
        if verdict is None:
            verdict = group.is_member(element)
            membership[element] = verdict
        return verdict

    batchable: List[int] = []
    fallback = 0
    for index, item in enumerate(item_list):
        if item.equations and all(member(base) for base in item.bases):
            batchable.append(index)
        else:
            verdicts[index] = bool(item.check())
            fallback += 1

    if len(batchable) < max(min_items, 2):
        for index in batchable:
            verdicts[index] = bool(item_list[index].check())
        fallback += len(batchable)
        batched = 0
        batchable = []
    else:
        batched = len(batchable)

    # RLC coefficients are *public* verifier randomness derived from a
    # Fiat–Shamir-style digest seed — deliberately reproducible, never
    # secret, never spent from the preprocessed pools; the seam does not
    # apply.
    rng = random.Random(seed)  # repro: allow[RPR002]
    coefficients: Dict[int, Tuple[int, ...]] = {
        index: tuple(
            rng.getrandbits(COEFFICIENT_BITS) | 1  # repro: allow[RPR002]
            for _ in item_list[index].equations
        )
        for index in batchable
    }

    evaluations = 0

    def combined_holds(indices: Sequence[int]) -> bool:
        nonlocal evaluations
        evaluations += 1
        lhs_pairs: List[Tuple[int, int]] = []
        rhs_pairs: List[Tuple[int, int]] = []
        for index in indices:
            for equation, z in zip(item_list[index].equations, coefficients[index]):
                for base, exponent in equation.lhs:
                    lhs_pairs.append((base, exponent * z))
                for base, exponent in equation.rhs:
                    rhs_pairs.append((base, exponent * z))
        return group.multi_exp(lhs_pairs) == group.multi_exp(rhs_pairs)

    def resolve(indices: Sequence[int]) -> None:
        if len(indices) == 1:
            index = indices[0]
            verdicts[index] = bool(item_list[index].check())
            return
        if combined_holds(indices):
            for index in indices:
                verdicts[index] = True
            return
        mid = len(indices) // 2
        resolve(indices[:mid])
        resolve(indices[mid:])

    if batchable:
        resolve(batchable)

    culprits = tuple(index for index, ok in enumerate(verdicts) if not ok)
    return BatchReport(
        verdicts=tuple(verdicts),
        culprits=culprits,
        batched=batched,
        fallback=fallback,
        evaluations=evaluations,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Ambient batching policy (the opt-in seam protocol code consults)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchPolicy:
    """How a protocol round should batch its verifications.

    Attributes:
        seed: RLC coefficient seed passed to :func:`verify_batch`.
        min_items: Below this many batchable items, verify per-item.
        record_trace: Record a :data:`BATCH_EVENT_KIND` event per batched
            round.  On: batched runs are digest-pinned (like online-spend
            runs) and comparable across workers/backends, but differ from
            unbatched digests.  Off: batched runs stay byte-identical to
            per-item verification end to end.
    """

    seed: int = DEFAULT_BATCH_SEED
    min_items: int = 2
    record_trace: bool = True

    def run(self, group: SchnorrGroup, items: Sequence[BatchItem]) -> BatchReport:
        """Batch-verify ``items`` under this policy's parameters."""
        return verify_batch(group, items, seed=self.seed, min_items=self.min_items)


#: ContextVar, not a module global: concurrent sessions hosted in one
#: asyncio loop each scope their own policy (see
#: :data:`repro.crypto.randomness._SOURCE` for the full rationale).
_POLICY: ContextVar[Optional[BatchPolicy]] = ContextVar(
    "repro_batch_policy", default=None
)


def current_policy() -> Optional[BatchPolicy]:
    """The installed batching policy, or None (per-item verification)."""
    return _POLICY.get()


def install_policy(policy: Optional[BatchPolicy]) -> Optional[BatchPolicy]:
    """Install ``policy`` in the current context; returns the previous one."""
    previous = _POLICY.get()
    _POLICY.set(policy)
    return previous


@contextmanager
def batching(policy: Optional[BatchPolicy]) -> Iterator[Optional[BatchPolicy]]:
    """Scope ``policy`` as the ambient batching policy.

    ``None`` is a no-op pass-through (mirrors
    :func:`repro.crypto.randomness.spending`), so call sites can wrap
    unconditionally::

        with batching(policy):
            run_trial(...)
    """
    if policy is None:
        yield None
        return
    previous = install_policy(policy)
    try:
        yield policy
    finally:
        install_policy(previous)
