"""Shamir secret sharing and Feldman verifiable secret sharing.

The honest-majority SBC baseline of Hevia [Hev06] (and the original
[CGMA85] construction it descends from) is built on verifiable secret
sharing: each sender VSS-shares its message, and reconstruction after the
sharing phase yields simultaneity *provided* fewer than half the parties
are corrupted.  We implement Shamir sharing over the scalar field of a
Schnorr group with Feldman commitments for verifiability, so benchmark E8
can show exactly where the honest-majority baseline breaks while the
paper's TLE-based protocol keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.crypto.groups import SchnorrGroup
from repro.crypto.randomness import current_source


@dataclass(frozen=True)
class Share:
    """One Shamir share: evaluation point ``x`` (>=1) and value ``y``."""

    x: int
    y: int


@dataclass(frozen=True)
class FeldmanCommitment:
    """Feldman commitments ``g^{a_k}`` to the polynomial coefficients."""

    commitments: Tuple[int, ...]

    @property
    def degree(self) -> int:
        return len(self.commitments) - 1


def share_secret(
    secret: int, threshold: int, parties: int, modulus: int, rng
) -> List[Share]:
    """Split ``secret`` into ``parties`` shares, any ``threshold+1`` reconstruct.

    Args:
        secret: The secret, an element of Z_modulus.
        threshold: Maximum number of shares revealing nothing (polynomial
            degree ``t``); reconstruction needs ``t+1`` shares.
        parties: Number of shares to produce.
        modulus: A prime field size.
        rng: Randomness source.

    Raises:
        ValueError: if parameters are inconsistent.
    """
    if not 0 <= threshold < parties:
        raise ValueError("need 0 <= threshold < parties")
    if parties >= modulus:
        raise ValueError("field too small for this many parties")
    coefficients = [secret % modulus] + [
        # Plain Shamir is the honest-majority baseline from prior work;
        # it is never pool-backed (only feldman_share spends preprocessed
        # polynomials), so it draws from the caller's rng directly.
        rng.randrange(modulus)  # repro: allow[RPR002]
        for _ in range(threshold)
    ]
    return [
        Share(x=i, y=_evaluate(coefficients, i, modulus)) for i in range(1, parties + 1)
    ]


def _evaluate(coefficients: Sequence[int], x: int, modulus: int) -> int:
    result = 0
    for coefficient in reversed(coefficients):
        result = (result * x + coefficient) % modulus
    return result


def reconstruct_secret(shares: Sequence[Share], modulus: int) -> int:
    """Lagrange interpolation at 0.

    Raises:
        ValueError: on duplicate evaluation points.
    """
    points: Dict[int, int] = {}
    for share in shares:
        if share.x in points and points[share.x] != share.y:
            raise ValueError(f"conflicting shares at x={share.x}")
        points[share.x] = share.y
    xs = list(points)
    secret = 0
    for xi in xs:
        numerator, denominator = 1, 1
        for xj in xs:
            if xj == xi:
                continue
            numerator = (numerator * (-xj)) % modulus
            denominator = (denominator * (xi - xj)) % modulus
        lagrange = numerator * pow(denominator, -1, modulus) % modulus
        secret = (secret + points[xi] * lagrange) % modulus
    return secret


# ---------------------------------------------------------------------------
# Feldman VSS
# ---------------------------------------------------------------------------


def feldman_share(
    group: SchnorrGroup, secret: int, threshold: int, parties: int, rng
) -> Tuple[List[Share], FeldmanCommitment]:
    """Shamir-share ``secret`` over Z_q and publish ``g^{a_k}`` commitments.

    The random coefficients and their commitments come from the ambient
    :class:`~repro.crypto.randomness.RandomnessSource` — sampled from
    ``rng`` by default, spent from a preprocessed Feldman entry (random
    tail coefficients with commitments already exponentiated offline) in
    online mode.
    """
    if not 0 <= threshold < parties:
        raise ValueError("need 0 <= threshold < parties")
    coefficients, commitments = current_source().feldman_polynomial(
        group, secret, threshold, rng
    )
    shares = [
        Share(x=i, y=_evaluate(coefficients, i, group.q))
        for i in range(1, parties + 1)
    ]
    return shares, FeldmanCommitment(commitments=commitments)


def feldman_verify(group: SchnorrGroup, share: Share, commitment: FeldmanCommitment) -> bool:
    """Check ``g^y == Π C_k^{x^k}`` for the share."""
    lhs = group.power_of_g(share.y)
    rhs = 1
    power = 1
    for c in commitment.commitments:
        rhs = group.mul(rhs, group.exp(c, power))
        power = (power * share.x) % group.q
    return lhs == rhs
