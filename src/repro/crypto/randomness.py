"""The randomness seam: where protocol nonces and sharing polynomials come from.

Schnorr signing, Σ-protocol proving and Feldman sharing each burn one
piece of fresh randomness per operation — a nonce scalar ``k`` (usually
together with its commitment ``g^k``) or a random degree-``t``
polynomial with its coefficient commitments.  The *offline/online*
protocol mode (HoneyBadgerMPC-style) precomputes exactly these values
into pools; this module is the seam that lets the online phase spend
them without the crypto layer knowing where they came from:

* :class:`RandomnessSource` — the interface: ``schnorr_nonce`` /
  ``nonce_scalar`` / ``feldman_polynomial``;
* :class:`SampleSource` — the default, installed at import time: sample
  per call from the caller's ``rng``, computing commitments on the spot.
  Its draws replicate the historical inline sampling *exactly* (same
  ``rng`` calls, in the same order), so default executions stay
  byte-identical to the pre-seam code — trace digests included;
* :func:`current_source` / :func:`spending` — read and scope the
  installed source.  The pool-backed implementation
  (:class:`~repro.runtime.material.MaterialCursor`) lives in the runtime
  layer; this module deliberately knows nothing about it.

A pool-backed source does **not** touch ``rng``, so spending pools
changes the downstream randomness stream — which is why pool-consuming
runs are digest-pinned separately from sample-per-call runs (the
runtime records the pool fingerprint and consumed cursor ranges in the
trace; see ``ARCHITECTURE.md``).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional, Tuple

__all__ = [
    "RandomnessSource",
    "SampleSource",
    "current_source",
    "install_source",
    "spending",
]


class RandomnessSource:
    """Where one protocol operation's fresh randomness comes from.

    Implementations must treat every draw as *consumed*: a nonce handed
    out twice is a broken signature scheme, not a cache hit.
    """

    #: Short label recorded in reports ("sample" / "pool").
    name = "source"

    def schnorr_nonce(self, group, rng) -> Tuple[int, int]:
        """One fresh ``(k, g^k)`` pair for a signature or ``g``-based proof."""
        raise NotImplementedError

    def nonce_scalar(self, group, rng) -> int:
        """One fresh nonce scalar for a proof over a non-``g`` base.

        The commitment under an arbitrary base cannot be precomputed, so
        only the scalar is handed out; the caller exponentiates.
        """
        raise NotImplementedError

    def feldman_polynomial(self, group, secret, threshold, rng):
        """Coefficients and commitments of one sharing polynomial.

        Returns ``(coefficients, commitments)`` with
        ``coefficients[0] == secret % group.q`` and
        ``commitments[k] == g^{coefficients[k]}``.
        """
        raise NotImplementedError


class SampleSource(RandomnessSource):
    """Sample-per-call (the historical behavior, and the default).

    Each method consumes the caller's ``rng`` exactly as the inlined
    code it replaced did, so executions under this source are
    byte-identical to pre-seam runs.
    """

    name = "sample"

    def schnorr_nonce(self, group, rng) -> Tuple[int, int]:
        k = group.random_scalar(rng)
        return k, group.power_of_g(k)

    def nonce_scalar(self, group, rng) -> int:
        return group.random_scalar(rng)

    def feldman_polynomial(self, group, secret, threshold, rng):
        coefficients = [secret % group.q] + [
            rng.randrange(group.q) for _ in range(threshold)
        ]
        commitments = tuple(group.power_of_g(a) for a in coefficients)
        return coefficients, commitments


#: The ambient source consulted by signing/proving/sharing.  A
#: :class:`~contextvars.ContextVar` rather than a module global so each
#: asyncio task (and each thread) scopes its own source: the async
#: session host runs many trials concurrently in one event loop, and a
#: ``with spending(cursor)`` inside one session's task must never leak
#: its pool cursor into an interleaved session — that would be a
#: double-spend.  Synchronous callers see the same semantics as the old
#: global: install/read in one thread behaves identically.
_SOURCE: ContextVar[RandomnessSource] = ContextVar(
    "repro_randomness_source", default=SampleSource()
)


def current_source() -> RandomnessSource:
    """The ambient :class:`RandomnessSource` (default: sample-per-call)."""
    return _SOURCE.get()


def install_source(source: RandomnessSource) -> RandomnessSource:
    """Replace the ambient source; returns the previous one.

    The replacement is scoped to the current :mod:`contextvars` context
    — the current thread, or the current asyncio task when called from
    a coroutine — so concurrent sessions cannot observe each other's
    pool cursors.
    """
    previous = _SOURCE.get()
    _SOURCE.set(source)
    return previous


@contextmanager
def spending(source: Optional[RandomnessSource]) -> Iterator[Optional[RandomnessSource]]:
    """Scope ``source`` as the ambient randomness source.

    The online phase wraps one trial's build+run in this, so every
    signature/proof/sharing inside spends the trial's reserved pool
    slice; the previous source is restored even if the trial raises.
    ``None`` is a no-op (the trial runs on whatever is ambient), so
    runners handle online and offline trials with one ``with`` block.
    """
    if source is None:
        yield None
        return
    previous = install_source(source)
    try:
        yield source
    finally:
        install_source(previous)
