"""Hash utilities: SHA-256 with domain separation, XOR, integer hashing.

The paper instantiates all hashing as random oracles; concrete code uses
SHA-256 (a standard instantiation).  ``pycryptodome`` is not available in
this environment, and nothing here needs more than a hash — ``hashlib``
is a faithful substitute.
"""

from __future__ import annotations

import hashlib

#: Output length of the base hash, in bytes (λ = 256 bits).
DIGEST_SIZE = 32


def hash_bytes(*parts: bytes, domain: bytes = b"") -> bytes:
    """SHA-256 over length-prefixed ``parts`` with optional domain tag.

    Length-prefixing makes the encoding injective, so distinct argument
    tuples can never collide by concatenation ambiguity.
    """
    h = hashlib.sha256()
    h.update(len(domain).to_bytes(2, "big"))
    h.update(domain)
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()


def hash_to_int(*parts: bytes, modulus: int, domain: bytes = b"") -> int:
    """Hash ``parts`` into the range ``[0, modulus)``.

    Uses enough hash output (digest expansion by counter) that the result
    is statistically close to uniform modulo ``modulus``.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    need = (modulus.bit_length() + 7) // 8 + 16  # 128-bit slack
    stream = b""
    counter = 0
    while len(stream) < need:
        stream += hash_bytes(counter.to_bytes(4, "big"), *parts, domain=domain)
        counter += 1
    return int.from_bytes(stream[:need], "big") % modulus


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Bytewise XOR of two equal-length strings.

    XORing through one big-integer operation keeps the work in C; the
    per-byte generator this replaces dominated whole-protocol profiles
    (mask application is the SBC/TLE hot path).  Zero-length inputs are
    fine: the result is ``b""``.

    Raises:
        ValueError: on length mismatch (an XOR of mismatched pads is
            almost always a protocol bug).
    """
    length = len(a)
    if length != len(b):
        raise ValueError(f"xor length mismatch: {length} vs {len(b)}")
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(length, "big")


def expand(seed: bytes, length: int, domain: bytes = b"expand") -> bytes:
    """Expand ``seed`` into ``length`` pseudorandom bytes (counter mode)."""
    out = b""
    counter = 0
    while len(out) < length:
        out += hash_bytes(seed, counter.to_bytes(8, "big"), domain=domain)
        counter += 1
    return out[:length]
