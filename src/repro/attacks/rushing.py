"""Rushing copy/correlation attacks on broadcast channels.

*Simultaneity* (the defining property of SBC) says a corrupted sender's
message must be independent of honest senders' messages.  The canonical
violation is the **copy attack**: a rushing adversary waits to see an
honest sender's value, then broadcasts the same value (or a correlated
one, e.g. a higher bid) as its own contribution to the same batch.

* Over a plain **UBC** channel the attack succeeds with probability 1:
  ``FUBC`` leaks every honest message *in the clear* at request time, and
  the adversary's own broadcast is accepted any time before delivery.
* Over **ΠSBC** the adversary sees only TLE ciphertexts and masked values
  until ``τ_rel``, long after the broadcast period closed — it can copy
  the *ciphertext* (rejected as a replay) or submit an independent guess.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.uc.adversary import Adversary


class UBCCopyAttack(Adversary):
    """Copy an honest sender's UBC message as a corrupted party's own.

    Args:
        attacker: The pid to corrupt and broadcast through.
        victim: Copy only messages from this sender (default: any honest
            sender).
        transform: Applied to the copied payload (default: identity) —
            e.g. outbid by one.
    """

    def __init__(
        self,
        attacker: str,
        victim: Optional[str] = None,
        transform: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        super().__init__()
        self.attacker = attacker
        self.victim = victim
        self.transform = transform or (lambda payload: payload)
        self.copied: List[Any] = []

    def on_leak(self, source, detail) -> None:
        super().on_leak(source, detail)
        if not (isinstance(detail, tuple) and detail and detail[0] == "Broadcast"):
            return
        if len(detail) == 4:
            # FUBC leak: (Broadcast, tag, message, sender); inject there.
            _, _tag, message, sender = detail
            channel = source
        elif len(detail) == 3 and getattr(source, "via", None) is not None:
            # ΠUBC's per-message FRBC instance: inject via the adapter.
            _, message, sender = detail
            channel = source.via
        else:
            return
        if sender == self.attacker or (self.victim and sender != self.victim):
            return
        payload = self.transform(message)
        if payload in self.copied:
            return  # delivery leaks repeat the message; copy once
        if self.attacker not in self.corrupted_parties:
            self.corrupt(self.attacker)
        self.copied.append(payload)
        channel.adv_broadcast(self.attacker, payload)


class SBCCopyAttack(Adversary):
    """The same strategy pointed at an SBC session.

    The adversary watches every leak for an honest plaintext to copy.
    Against ΠSBC all it ever sees before the period closes are Wake_Up
    messages, TLE ciphertexts ``c`` and masks ``y``; it desperately
    re-broadcasts the ``(c, τ, y)`` triple under its own identity — a
    replay that honest receivers drop.  ``plaintexts_seen`` stays empty,
    which is the measurable statement of simultaneity.

    Args:
        attacker: The pid to corrupt and broadcast through.
        is_plaintext: Predicate recognizing the honest payloads the
            adversary is hunting for (e.g. ``lambda m: isinstance(m,
            bytes)`` when the environment broadcasts byte strings).
    """

    def __init__(self, attacker: str, is_plaintext: Callable[[Any], bool]) -> None:
        super().__init__()
        self.attacker = attacker
        self.is_plaintext = is_plaintext
        self.plaintexts_seen: List[Any] = []
        self.replays: int = 0

    def _ensure_corrupted(self) -> None:
        if self.attacker not in self.corrupted_parties:
            self.corrupt(self.attacker)

    def on_leak(self, source, detail) -> None:
        super().on_leak(source, detail)
        if not (isinstance(detail, tuple) and detail):
            return
        if detail[0] == "Broadcast" and len(detail) == 4:
            _, _tag, message, sender = detail
            if sender == self.attacker:
                return
            if self.is_plaintext(message):
                # Simultaneity broken: an honest plaintext leaked early.
                self.plaintexts_seen.append(message)
                self._ensure_corrupted()
                source.adv_broadcast(self.attacker, message)
            elif (
                isinstance(message, tuple)
                and len(message) == 3
                and isinstance(message[2], bytes)
            ):
                # Best effort: replay the (c, τ, y) triple as our own.
                self._ensure_corrupted()
                self.replays += 1
                source.adv_broadcast(self.attacker, message)
