"""Randomness-biasing (last-mover) attacks on distributed beacons.

A coalition that sees honest contributions before committing its own can
force any XOR-combined output it likes.  The naive beacon
(:mod:`repro.baselines.naive_beacon` — contributions broadcast in the
clear over UBC) falls to this with probability 1.  ΠDURS routes the
contributions through simultaneous broadcast: until ``τ_rel`` the
adversary holds only TLE ciphertexts, so its own contribution is
information-theoretically independent of the honest ones and the output
bit it targets comes out uniform.
"""

from __future__ import annotations

from typing import List, Optional

from repro.crypto.hashing import xor_bytes
from repro.functionalities.durs import URS_LEN
from repro.uc.adversary import Adversary


class BiasingContributor(Adversary):
    """A last-mover trying to force bit 0 of the beacon output.

    Works against any channel leaking (or not leaking) contributions:

    * In the **naive** world it sees every honest 32-byte contribution in
      UBC leaks; once ``expected_honest`` arrived it submits
      ``XOR(seen) ⊕ (target-bit pattern)``, forcing the final output.
    * In the **DURS/SBC** world it sees only ``Sender`` handles; at the
      last round of the broadcast period it must submit blind.

    Args:
        attacker: pid to corrupt and contribute through.
        target_bit: Desired value of the output's most significant bit.
        expected_honest: Contributions to wait for in the naive world.
        phi: SBC broadcast period (for the blind-submission deadline).

    Attributes:
        submitted: The contribution eventually sent (None if never).
        informed: True if the submission used observed honest plaintexts.
    """

    def __init__(
        self,
        attacker: str,
        target_bit: int = 0,
        expected_honest: Optional[int] = None,
        phi: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.attacker = attacker
        self.target_bit = target_bit
        self.expected_honest = expected_honest
        self.phi = phi
        self.seen: List[bytes] = []
        self.channel = None
        self.period_start: Optional[int] = None
        self.submitted: Optional[bytes] = None
        self.informed = False

    def on_party_registered(self, party) -> None:
        if party.pid == self.attacker:
            self.corrupt(party.pid)

    # -- observation -------------------------------------------------------

    def on_leak(self, source, detail) -> None:
        super().on_leak(source, detail)
        if not (isinstance(detail, tuple) and detail):
            return
        if detail[0] == "Broadcast" and len(detail) == 4:
            _, _tag, message, sender = detail
            if (
                sender != self.attacker
                and isinstance(message, bytes)
                and len(message) == URS_LEN
            ):
                self.channel = source
                self.seen.append(message)
                if (
                    self.expected_honest is not None
                    and len(self.seen) >= self.expected_honest
                    and self.submitted is None
                ):
                    self._submit(informed=True)
        elif detail[0] == "Sender":
            # SBC leak: only a handle; remember the channel and period.
            self.channel = source
            if self.period_start is None:
                self.period_start = self.session.clock.time

    # -- deadline ------------------------------------------------------------

    def on_party_activated(self, party) -> None:
        self._maybe_blind_submit()

    def on_round_advanced(self, new_time: int) -> None:
        self._maybe_blind_submit()

    def _maybe_blind_submit(self) -> None:
        if self.submitted is not None or self.channel is None:
            return
        if self.phi is None or self.period_start is None:
            return
        if self.session.clock.time >= self.period_start + self.phi - 1:
            self._submit(informed=False)

    # -- the move ----------------------------------------------------------------

    def _submit(self, informed: bool) -> None:
        honest_xor = bytes(URS_LEN)
        if informed:
            for value in self.seen:
                honest_xor = xor_bytes(honest_xor, value)
        contribution = bytearray(self.session.random_bytes(URS_LEN))
        # Force the final MSB: own_bit = honest_bit XOR target.
        honest_bit = honest_xor[0] >> 7
        own_bit = honest_bit ^ self.target_bit
        contribution[0] = (contribution[0] & 0x7F) | (own_bit << 7)
        self.submitted = bytes(contribution)
        self.informed = informed
        self.channel.adv_broadcast(self.attacker, self.submitted)
