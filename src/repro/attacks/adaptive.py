"""Adaptive mid-round corruption attacks: the fairness boundary.

The strong non-atomic model lets the adversary corrupt a sender *after*
seeing its message but *before* the sender completes its round.  What the
adversary can then do differs by layer, and that difference is the
paper's Section 3:

* ``FUBC`` (Figure 8): the pending message may be **replaced** via
  ``Allow`` — unfair broadcast.
* ``F∆,α_FBC`` (Figure 10): replacement works only until the message is
  **locked** (at ``∆ − α`` rounds after the request, or the moment the
  simulator reads it).  ΠFBC achieves the lock computationally: by the
  time anyone (including the adversary) can open the time-lock puzzle,
  the pair ``(c, y)`` is already in everyone's hands.
"""

from __future__ import annotations

from typing import Any, List

from repro.uc.adversary import Adversary


class UBCReplaceAttack(Adversary):
    """See an honest UBC message, corrupt the sender, replace the message.

    Succeeds against ``FUBC``/ΠUBC by design (unfairness); the attack
    records each replacement it performed.
    """

    def __init__(self, victim: str, replacement: Any) -> None:
        super().__init__()
        self.victim = victim
        self.replacement = replacement
        self.replaced: List[Any] = []

    def on_leak(self, source, detail) -> None:
        super().on_leak(source, detail)
        if not (isinstance(detail, tuple) and detail and detail[0] == "Broadcast"):
            return
        if len(detail) == 4:
            # FUBC leak: (Broadcast, tag, message, sender).
            _, tag, message, sender = detail
            if sender != self.victim or message == self.replacement:
                return
            if self.victim not in self.corrupted_parties:
                self.corrupt(self.victim)
            source.adv_allow(tag, self.replacement)
            self.replaced.append(message)
        elif len(detail) == 3 and hasattr(source, "adv_allow") and hasattr(source, "halted"):
            # ΠUBC's FRBC instance: (Broadcast, message, sender).
            _, message, sender = detail
            if sender != self.victim or message == self.replacement or source.halted:
                return
            if self.victim not in self.corrupted_parties:
                self.corrupt(self.victim)
            source.adv_allow(self.replacement)
            self.replaced.append(message)


class FBCReplaceAttack(Adversary):
    """The same strategy against fair broadcast, with a timed trigger.

    Args:
        victim: Sender to corrupt.
        replacement: Value to substitute.
        corrupt_after: Rounds to wait after observing the victim's request
            before corrupting and attempting ``Allow``.  With the ideal
            ``F^{∆,α}_FBC``: attempts strictly before ``∆ − α`` rounds
            succeed, attempts at or after fail (the value is locked).

    Attributes:
        attempts: Number of ``Allow`` calls issued.
        successes: Number accepted by the functionality.
    """

    def __init__(self, victim: str, replacement: Any, corrupt_after: int) -> None:
        super().__init__()
        self.victim = victim
        self.replacement = replacement
        self.corrupt_after = corrupt_after
        self.attempts = 0
        self.successes = 0
        self._pending: List[Any] = []  # (source, tag, observed_round)

    def on_leak(self, source, detail) -> None:
        super().on_leak(source, detail)
        if not (isinstance(detail, tuple) and detail and detail[0] == "Broadcast"):
            return
        if len(detail) == 3:  # FBC leak: (Broadcast, tag, sender)
            _, tag, sender = detail
            if sender == self.victim:
                self._pending.append([source, tag, self.session.clock.time])

    def _try_replacements(self) -> None:
        for entry in list(self._pending):
            source, tag, seen_at = entry
            if self.session.clock.time - seen_at < self.corrupt_after:
                continue
            if self.victim not in self.corrupted_parties:
                self.corrupt(self.victim)
            self.attempts += 1
            if source.adv_allow(tag, self.replacement, self.victim):
                self.successes += 1
            self._pending.remove(entry)

    def on_round_advanced(self, new_time: int) -> None:
        self._try_replacements()

    def on_party_activated(self, party) -> None:
        self._try_replacements()


class LockedReplaceAttack(Adversary):
    """Read first, replace after: the losing side of the FBC lock.

    The strategy polls ``Output_Request`` for every observed tag.  The
    moment a tag reveals (at ``∆ − α``) the functionality locks it; the
    attack then corrupts the victim and attempts ``Allow`` — which the
    lock must reject, *even though the sender is now corrupted and the
    message not yet delivered*.  This is Figure 10's fairness boundary
    from the attacker's side: reading the value and replacing it are
    mutually exclusive.

    Attributes:
        revealed: Values obtained via ``Output_Request`` (lock moments).
        attempts: ``Allow`` calls issued against the victim's tags.
        successes: ``Allow`` calls accepted (fairness demands zero).
    """

    def __init__(self, victim: str, replacement: Any) -> None:
        super().__init__()
        self.victim = victim
        self.replacement = replacement
        self.revealed: List[Any] = []
        self.attempts = 0
        self.successes = 0
        self._pending: List[Any] = []  # [source, tag]

    def on_leak(self, source, detail) -> None:
        super().on_leak(source, detail)
        if (
            isinstance(detail, tuple)
            and len(detail) == 3
            and detail[0] == "Broadcast"
            and hasattr(source, "adv_output_request")
        ):
            self._pending.append([source, detail[1]])

    def _poll(self) -> None:
        for entry in list(self._pending):
            source, tag = entry
            record = source.adv_output_request(tag)
            if record is None:
                continue
            self._pending.remove(entry)
            _tag, message, sender, _requested_at = record
            self.revealed.append(message)
            if sender != self.victim:
                continue
            if self.victim not in self.corrupted_parties:
                self.corrupt(self.victim)
            self.attempts += 1
            if source.adv_allow(tag, self.replacement, self.victim):
                self.successes += 1

    def on_round_advanced(self, new_time: int) -> None:
        self._poll()

    def on_party_activated(self, party) -> None:
        self._poll()


class OutputRequestProbe(Adversary):
    """Measure the simulator advantage α of a fair-broadcast channel.

    Issues ``Output_Request`` for every observed tag at every round and
    records the age (rounds since the request) at which the functionality
    first revealed each message.  Against ``F^{∆,α}_FBC`` the recorded age
    is exactly ``∆ − α``.
    """

    def __init__(self) -> None:
        super().__init__()
        self.reveal_ages: List[int] = []
        self._pending: List[Any] = []  # [source, tag, seen_at]

    def on_leak(self, source, detail) -> None:
        super().on_leak(source, detail)
        if (
            isinstance(detail, tuple)
            and len(detail) == 3
            and detail[0] == "Broadcast"
            and hasattr(source, "adv_output_request")
        ):
            self._pending.append([source, detail[1], self.session.clock.time])

    def _probe(self) -> None:
        for entry in list(self._pending):
            source, tag, seen_at = entry
            revealed = source.adv_output_request(tag)
            if revealed is not None:
                self.reveal_ages.append(self.session.clock.time - seen_at)
                self._pending.remove(entry)

    def on_round_advanced(self, new_time: int) -> None:
        self._probe()

    def on_party_activated(self, party) -> None:
        self._probe()
