"""Adversary strategies exercising the paper's security claims.

===================  ======================================================
Module               What it attacks / demonstrates
===================  ======================================================
``rushing``          Copy/correlation attacks on broadcast: succeeds
                     against plain UBC (no simultaneity), fails against
                     ΠSBC (TLE hides honest plaintexts until τ_rel).
``adaptive``         Mid-round adaptive corruption: message replacement
                     succeeds against UBC (unfair) and against FBC before
                     the lock, never after — the fairness boundary of
                     Figure 10.
``bias``             Randomness biasing: a last-mover biases a naive
                     commit-in-the-clear beacon at will, but cannot bias
                     ΠDURS.
===================  ======================================================
"""

from repro.attacks.adaptive import (
    FBCReplaceAttack,
    LockedReplaceAttack,
    OutputRequestProbe,
    UBCReplaceAttack,
)
from repro.attacks.bias import BiasingContributor
from repro.attacks.rushing import SBCCopyAttack, UBCCopyAttack

__all__ = [
    "BiasingContributor",
    "FBCReplaceAttack",
    "LockedReplaceAttack",
    "OutputRequestProbe",
    "SBCCopyAttack",
    "UBCCopyAttack",
    "UBCReplaceAttack",
]
