"""Analytic round/communication models of the SBC lineage (benchmark E9).

The paper's introduction positions its construction against the prior
simultaneous-broadcast line: [CGMA85] (linear rounds), [CR87]
(logarithmic), [Gen00]/[FKL08] (constant), [Hev06] (constant, UC) — all
honest-majority — versus this paper's constant-round, dishonest-majority,
adaptively UC-secure channel.  These models reproduce that comparison
table.  Asymptotics are from the respective papers; the constants are
illustrative (chosen so a same-n comparison is visually meaningful), and
the measured column for *this* paper's protocol comes from actually
running ΠSBC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence


@dataclass(frozen=True)
class ComplexityModel:
    """One row of the lineage comparison.

    Attributes:
        name: Citation key.
        rounds: Round complexity as a function of (n, t).
        messages: Point-to-point message complexity as a function of (n, t).
        max_corruptions: Largest tolerable t as a function of n.
        composable: Security under concurrent composition (UC).
        adaptive: Security against adaptive corruption.
    """

    name: str
    rounds: Callable[[int, int], int]
    messages: Callable[[int, int], int]
    max_corruptions: Callable[[int], int]
    composable: bool
    adaptive: bool

    def tolerates(self, n: int, t: int) -> bool:
        return t <= self.max_corruptions(n)


def _honest_majority(n: int) -> int:
    return (n - 1) // 2


def _dishonest_majority(n: int) -> int:
    return n - 1


#: The lineage.  VSS-based protocols run a Dolev–Strong-like broadcast
#: sub-step per sharing, hence the t factors in message counts.
COMPLEXITY_MODELS: Dict[str, ComplexityModel] = {
    "CGMA85": ComplexityModel(
        name="CGMA85",
        rounds=lambda n, t: max(1, t) + 2,  # linear in t (O(n) worst case)
        messages=lambda n, t: n * n * max(1, t),
        max_corruptions=_honest_majority,
        composable=False,
        adaptive=False,
    ),
    "CR87": ComplexityModel(
        name="CR87",
        rounds=lambda n, t: 2 * max(1, math.ceil(math.log2(max(2, n)))) + 2,
        messages=lambda n, t: n * n * max(1, math.ceil(math.log2(max(2, n)))),
        max_corruptions=_honest_majority,
        composable=False,
        adaptive=False,
    ),
    "Gen00": ComplexityModel(
        name="Gen00",
        rounds=lambda n, t: 4,  # constant
        messages=lambda n, t: 4 * n * n,
        max_corruptions=_honest_majority,
        composable=False,
        adaptive=False,
    ),
    "FKL08": ComplexityModel(
        name="FKL08",
        rounds=lambda n, t: 3,  # constant, amortizes over repeated runs
        messages=lambda n, t: 3 * n * n,
        max_corruptions=_honest_majority,
        composable=False,
        adaptive=False,
    ),
    "Hev06": ComplexityModel(
        name="Hev06",
        rounds=lambda n, t: 5,  # constant, UC (sequential phases)
        messages=lambda n, t: 5 * n * n,
        max_corruptions=_honest_majority,
        composable=True,
        adaptive=False,
    ),
    "this-paper": ComplexityModel(
        name="this-paper",
        # Φ + ∆ rounds end-to-end with the Corollary 1 minima (Φ=4, ∆=3),
        # independent of n and t.
        rounds=lambda n, t: 7,
        messages=lambda n, t: 2 * n * n,  # one Wake_Up + one (c,τ,y) per sender
        max_corruptions=_dishonest_majority,
        composable=True,
        adaptive=True,
    ),
}


def complexity_table(
    n_values: Sequence[int], models: Sequence[str] = tuple(COMPLEXITY_MODELS)
) -> List[dict]:
    """Rows of the lineage comparison for the given party counts."""
    rows = []
    for name in models:
        model = COMPLEXITY_MODELS[name]
        for n in n_values:
            t = model.max_corruptions(n)
            rows.append(
                {
                    "model": name,
                    "n": n,
                    "max_t": t,
                    "rounds": model.rounds(n, t),
                    "messages": model.messages(n, t),
                    "composable": model.composable,
                    "adaptive": model.adaptive,
                }
            )
    return rows
