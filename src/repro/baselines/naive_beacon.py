"""Naive commit-in-the-clear randomness beacon (the E10 strawman).

Every party broadcasts a fresh random string over UBC; the beacon output
is the XOR of everything received within a fixed window.  Without
simultaneity a rushing last-mover reads the honest contributions from the
UBC leaks and picks its own to force any output bit it wants
(:class:`~repro.attacks.bias.BiasingContributor` with
``expected_honest`` set).  ΠDURS replaces the clear channel with SBC and
the same attacker degrades to a coin flip.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.crypto.hashing import xor_bytes
from repro.functionalities.durs import URS_LEN
from repro.functionalities.ubc import UnfairBroadcast
from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


class NaiveBeaconParty(Party):
    """One party of the naive beacon.

    Args:
        session: Owning session.
        pid: Party identifier.
        ubc: The clear broadcast channel.
        close_round: Round after which contributions stop being accepted;
            the output is emitted at ``close_round + 1``.
    """

    def __init__(
        self, session: "Session", pid: str, ubc: UnfairBroadcast, close_round: int
    ) -> None:
        super().__init__(session, pid)
        self.ubc = ubc
        self.close_round = close_round
        self.contributions: List[bytes] = []
        self.urs: Optional[bytes] = None
        self.contributed = False

        self.route[ubc.fid] = self._on_ubc
        self.clock_recipients.append(ubc)

    def contribute(self) -> None:
        """Broadcast this party's random contribution (in the clear)."""
        if self.contributed:
            return
        self.contributed = True
        self.ubc.broadcast(self, self.session.random_bytes(URS_LEN))

    def _on_ubc(self, message: Any, source: Functionality) -> None:
        kind, payload, _sender = message
        if kind != "Broadcast" or not isinstance(payload, bytes):
            return
        if len(payload) != URS_LEN or self.time > self.close_round:
            return
        self.contributions.append(payload)

    def end_of_round(self) -> None:
        if self.time == self.close_round + 1 and self.urs is None:
            urs = bytes(URS_LEN)
            for value in self.contributions:
                urs = xor_bytes(urs, value)
            self.urs = urs
            self.output(("URS", urs))


def build_naive_beacon(
    session: "Session", pids: Sequence[str], close_round: int = 2
) -> Dict[str, NaiveBeaconParty]:
    """Wire a naive beacon network; returns pid -> party."""
    ubc = UnfairBroadcast(session, fid="FUBC:naive-beacon")
    return {
        pid: NaiveBeaconParty(session, pid, ubc=ubc, close_round=close_round)
        for pid in pids
    }
