"""Honest-majority SBC baseline in the style of Hevia [Hev06] / [CGMA85].

Share-then-reveal simultaneous broadcast: each sender Feldman-VSS-shares
its message among all parties over secure channels (threshold
``t = ⌊(n−1)/2⌋``, so ``t+1`` shares reconstruct); after the sharing
phase closes, everyone echoes the shares they hold over UBC and all
messages are reconstructed.

While at most ``t`` parties are corrupted, the coalition's ``t`` shares
reveal nothing during the sharing phase — simultaneity holds.  The moment
the coalition reaches ``t+1`` members it can reconstruct every honest
message *inside the sharing phase* and deal a correlated message of its
own: :class:`HeviaCoalitionAttack` does exactly that.  Benchmark E8 sweeps
the coalition size on this baseline and on ΠSBC, locating the n/2 cliff
the paper's construction removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.crypto.groups import TEST_GROUP, SchnorrGroup
from repro.crypto.shamir import (
    FeldmanCommitment,
    Share,
    feldman_share,
    feldman_verify,
    reconstruct_secret,
)
from repro.functionalities.network import SyncNetwork
from repro.functionalities.ubc import UnfairBroadcast
from repro.uc.adversary import Adversary
from repro.uc.encoding import sort_key
from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session

#: Maximum message length a group scalar can carry.
MAX_MESSAGE = 30


def message_to_scalar(message: bytes) -> int:
    """Injective bytes -> scalar encoding (leading 0x01 guards length)."""
    if len(message) > MAX_MESSAGE:
        raise ValueError(f"message longer than {MAX_MESSAGE} bytes")
    return int.from_bytes(b"\x01" + message, "big")


def scalar_to_message(scalar: int) -> Optional[bytes]:
    """Inverse of :func:`message_to_scalar`; None if malformed."""
    raw = scalar.to_bytes((scalar.bit_length() + 7) // 8, "big")
    if not raw or raw[0] != 1:
        return None
    return raw[1:]


class HeviaParty(Party):
    """One party of the share-then-reveal SBC baseline.

    Args:
        session: Owning session.
        pid: Party identifier.
        network: Secure point-to-point channels (share distribution).
        ubc: Broadcast channel (commitments + reveal phase).
        pids: All participant pids, in dealing order.
        reveal_round: Round at which held shares are echoed.
        group: Group for Feldman commitments.
    """

    def __init__(
        self,
        session: "Session",
        pid: str,
        network: SyncNetwork,
        ubc: UnfairBroadcast,
        pids: Sequence[str],
        reveal_round: int,
        group: SchnorrGroup = TEST_GROUP,
    ) -> None:
        super().__init__(session, pid)
        self.network = network
        self.ubc = ubc
        self.pids = list(pids)
        self.reveal_round = reveal_round
        self.group = group
        self.threshold = (len(self.pids) - 1) // 2  # honest-majority design
        #: dealer -> the share this party received.
        self.held: Dict[str, Share] = {}
        #: dealer -> Feldman commitment.
        self.commitments: Dict[str, FeldmanCommitment] = {}
        #: dealer -> {x: y} echoed shares collected in the reveal phase.
        self.echoes: Dict[str, Dict[int, int]] = {}
        self.delivered = False

        self.route[network.fid] = self._on_network
        self.route[ubc.fid] = self._on_ubc
        self.clock_recipients.append(ubc)

    # -- sender input --------------------------------------------------------

    def broadcast(self, message: bytes) -> None:
        """Deal a VSS sharing of ``message`` (sharing phase input)."""
        secret = message_to_scalar(message)
        shares, commitment = feldman_share(
            self.group, secret, self.threshold, len(self.pids), self.session.rng
        )
        for recipient, share in zip(self.pids, shares):
            self.network.send(self, recipient, ("HeviaShare", self.pid, share.x, share.y))
        self.ubc.broadcast(self, ("HeviaCommit", self.pid, commitment.commitments))

    # -- deliveries --------------------------------------------------------------

    def _on_network(self, message: Any, source: Functionality) -> None:
        kind, payload, _sender = message
        if kind != "P2P":
            return
        if not (isinstance(payload, tuple) and payload and payload[0] == "HeviaShare"):
            return
        _, dealer, x, y = payload
        if self.time <= self.reveal_round:
            self.held.setdefault(dealer, Share(x=x, y=y))

    def _on_ubc(self, message: Any, source: Functionality) -> None:
        kind, payload, _sender = message
        if kind != "Broadcast" or not isinstance(payload, tuple) or not payload:
            return
        if payload[0] == "HeviaCommit":
            _, dealer, commitments = payload
            self.commitments.setdefault(dealer, FeldmanCommitment(tuple(commitments)))
        elif payload[0] == "HeviaReveal":
            _, _echoer, items = payload
            for dealer, x, y in items:
                share = Share(x=x, y=y)
                commitment = self.commitments.get(dealer)
                if commitment is None or not feldman_verify(self.group, share, commitment):
                    continue
                self.echoes.setdefault(dealer, {})[x] = y

    # -- phases ------------------------------------------------------------------------

    def end_of_round(self) -> None:
        now = self.time
        if now == self.reveal_round:
            items = tuple(
                (dealer, share.x, share.y) for dealer, share in sorted(self.held.items())
            )
            self.ubc.broadcast(self, ("HeviaReveal", self.pid, items))
        elif now == self.reveal_round + 1 and not self.delivered:
            self.delivered = True
            batch: List[bytes] = []
            for _dealer, points in self.echoes.items():
                if len(points) < self.threshold + 1:
                    continue
                shares = [Share(x=x, y=y) for x, y in points.items()]
                secret = reconstruct_secret(shares[: self.threshold + 1], self.group.q)
                message = scalar_to_message(secret)
                if message is not None:
                    batch.append(message)
            batch.sort(key=sort_key)
            self.output(("Broadcast", batch))


@dataclass
class HeviaSBCNetwork:
    """A wired baseline network plus its substrate handles."""

    session: "Session"
    parties: Dict[str, HeviaParty]
    network: SyncNetwork
    ubc: UnfairBroadcast
    reveal_round: int

    @classmethod
    def build(
        cls,
        session: "Session",
        n: int,
        reveal_round: int = 2,
        group: SchnorrGroup = TEST_GROUP,
    ) -> "HeviaSBCNetwork":
        network = SyncNetwork(session, fid="Net:hevia")
        ubc = UnfairBroadcast(session, fid="FUBC:hevia")
        pids = [f"P{i}" for i in range(n)]
        parties = {
            pid: HeviaParty(
                session, pid, network=network, ubc=ubc, pids=pids,
                reveal_round=reveal_round, group=group,
            )
            for pid in pids
        }
        return cls(
            session=session, parties=parties, network=network, ubc=ubc,
            reveal_round=reveal_round,
        )


@dataclass
class _Dealing:
    shares: Dict[int, int] = field(default_factory=dict)
    reconstructed: Optional[bytes] = None
    learned_at: Optional[int] = None


class HeviaCoalitionAttack(Adversary):
    """Pool the coalition's shares; reconstruct early if ≥ t+1; copy.

    Args:
        coalition: pids to corrupt at the start.
        copier: Coalition member that re-deals any learned message as its
            own (the copy attack); None disables copying.
        group: Group matching the baseline's.

    Attributes:
        learned: dealer -> (message, round) reconstructed *before* the
            reveal phase — each entry is a simultaneity violation.
    """

    def __init__(
        self,
        coalition: Sequence[str],
        copier: Optional[str] = None,
        group: SchnorrGroup = TEST_GROUP,
    ) -> None:
        super().__init__()
        self.coalition = list(coalition)
        self.copier = copier if copier is not None else (self.coalition[0] if self.coalition else None)
        self.group = group
        self.dealings: Dict[str, _Dealing] = {}
        self.learned: Dict[str, Tuple[bytes, int]] = {}
        self.copied: List[bytes] = []
        self.baseline: Optional[HeviaSBCNetwork] = None  # set by the driver

    def on_party_registered(self, party) -> None:
        if party.pid in self.coalition:
            self.corrupt(party.pid)

    def on_leak(self, source, detail) -> None:
        super().on_leak(source, detail)
        if not (isinstance(detail, tuple) and detail):
            return
        if detail[0] != "Deliver":
            return
        _, recipient, message = detail
        if recipient not in self.coalition:
            return
        if not (isinstance(message, tuple) and message and message[0] == "P2P"):
            return
        payload = message[1]
        if not (isinstance(payload, tuple) and payload and payload[0] == "HeviaShare"):
            return
        _, dealer, x, y = payload
        if dealer in self.coalition:
            return
        dealing = self.dealings.setdefault(dealer, _Dealing())
        dealing.shares[x] = y
        self._try_reconstruct(dealer, dealing)

    def _try_reconstruct(self, dealer: str, dealing: _Dealing) -> None:
        if dealing.reconstructed is not None or self.baseline is None:
            return
        threshold = next(iter(self.baseline.parties.values())).threshold
        if len(dealing.shares) < threshold + 1:
            return
        shares = [Share(x=x, y=y) for x, y in dealing.shares.items()]
        secret = reconstruct_secret(shares[: threshold + 1], self.group.q)
        message = scalar_to_message(secret)
        if message is None:
            return
        dealing.reconstructed = message
        dealing.learned_at = self.session.clock.time
        if self.session.clock.time < self.baseline.reveal_round:
            self.learned[dealer] = (message, self.session.clock.time)
            self._copy(message)

    def _copy(self, message: bytes) -> None:
        """Deal the stolen message as the copier's own contribution."""
        if self.copier is None or self.baseline is None:
            return
        baseline = self.baseline
        party = baseline.parties[self.copier]
        secret = message_to_scalar(message)
        shares, commitment = feldman_share(
            self.group, secret, party.threshold, len(party.pids), self.session.rng
        )
        for recipient, share in zip(party.pids, shares):
            baseline.network.adv_send(
                self.copier, recipient, ("HeviaShare", self.copier, share.x, share.y)
            )
        baseline.ubc.adv_broadcast(
            self.copier, ("HeviaCommit", self.copier, commitment.commitments)
        )
        self.copied.append(message)
