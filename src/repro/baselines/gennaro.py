"""A Gennaro [Gen00]-style constant-round SBC baseline (honest majority).

[Gen00] achieves *independence* (the weakest SBC notion in [HM05]'s
hierarchy) in constant rounds: senders first **commit** to their
messages over broadcast, then **reveal**; VSS backup shares let honest
parties reconstruct the decommitment of any sender who aborts after the
commit phase.  Three phases, constants independent of n:

  round 0 — commit: broadcast ``H(M, r)`` and VSS-share ``(M, r)``;
  round R — reveal: broadcast ``(M, r)``; echo backup shares of anyone
             silent;
  round R+1 — reconstruct-and-output.

Independence holds because commitments bind before any message opens —
*but only under an honest majority*: a coalition past ``n/2`` pools
backup shares during the commit phase and reads every honest message
before choosing its own, the same n/2 cliff as the [Hev06] baseline
(the reconstruction threshold is the single point of failure of the
whole pre-TLE lineage, which is the paper's motivation).

Also visible here: [Gen00]'s notion is *weaker* than the paper's FSBC —
a corrupted committer that aborts and whose shares were dealt
inconsistently simply drops out of the output, whereas FSBC fixes the
batch at ``t_end`` (this is the [CGMA85] ⇒ [CR87] ⇒ [Gen00] hierarchy
of [HM05] in executable form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.baselines.hevia import MAX_MESSAGE, message_to_scalar, scalar_to_message
from repro.crypto.groups import TEST_GROUP, SchnorrGroup
from repro.crypto.hashing import hash_bytes
from repro.crypto.shamir import Share, feldman_share, feldman_verify, reconstruct_secret
from repro.functionalities.network import SyncNetwork
from repro.functionalities.ubc import UnfairBroadcast
from repro.uc.encoding import sort_key
from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


def commit_to(message: bytes, blinding: bytes) -> bytes:
    """The binding commitment ``H(M, r)``."""
    return hash_bytes(message, blinding, domain=b"gen00-commit")


class GennaroParty(Party):
    """One party of the commit-then-reveal SBC baseline.

    Args:
        session: Owning session.
        pid: Party identifier.
        network: Secure channels for the VSS backup shares.
        ubc: Broadcast channel for commitments and reveals.
        pids: All participants.
        reveal_round: When the reveal phase happens.
        group: Group for the Feldman commitments.
    """

    def __init__(
        self,
        session: "Session",
        pid: str,
        network: SyncNetwork,
        ubc: UnfairBroadcast,
        pids: Sequence[str],
        reveal_round: int,
        group: SchnorrGroup = TEST_GROUP,
    ) -> None:
        super().__init__(session, pid)
        self.network = network
        self.ubc = ubc
        self.pids = list(pids)
        self.reveal_round = reveal_round
        self.group = group
        self.threshold = (len(self.pids) - 1) // 2
        self.my_message: Optional[bytes] = None
        self.my_blinding: Optional[bytes] = None
        #: committer -> commitment digest
        self.commitments: Dict[str, bytes] = {}
        #: committer -> Feldman commitment (for the backup sharing)
        self.backup_commitments: Dict[str, Any] = {}
        #: committer -> this party's backup share
        self.backup_shares: Dict[str, Share] = {}
        #: committer -> revealed (message, blinding)
        self.revealed: Dict[str, bytes] = {}
        #: committer -> {x: y} echoed backup shares
        self.echoes: Dict[str, Dict[int, int]] = {}
        self.delivered = False

        self.route[network.fid] = self._on_network
        self.route[ubc.fid] = self._on_ubc
        self.clock_recipients.append(ubc)

    # -- commit phase --------------------------------------------------------

    def broadcast(self, message: bytes) -> None:
        """Commit-phase input: commit to ``message`` and deal backups."""
        if len(message) > MAX_MESSAGE - 16:
            raise ValueError("message too long for the scalar embedding")
        self.my_message = message
        self.my_blinding = self.session.random_bytes(8)
        digest = commit_to(message, self.my_blinding)
        # VSS the decommitment (message + blinding, packed in a scalar).
        packed = message_to_scalar(message + b"|" + self.my_blinding)
        shares, commitment = feldman_share(
            self.group, packed, self.threshold, len(self.pids), self.session.rng
        )
        for recipient, share in zip(self.pids, shares):
            self.network.send(
                self, recipient, ("Gen00Share", self.pid, share.x, share.y)
            )
        self.ubc.broadcast(
            self, ("Gen00Commit", self.pid, digest, commitment.commitments)
        )

    # -- deliveries -------------------------------------------------------------

    def _on_network(self, message: Any, source: Functionality) -> None:
        kind, payload, _sender = message
        if kind != "P2P":
            return
        if not (isinstance(payload, tuple) and payload and payload[0] == "Gen00Share"):
            return
        _, committer, x, y = payload
        if self.time < self.reveal_round:
            self.backup_shares.setdefault(committer, Share(x=x, y=y))

    def _on_ubc(self, message: Any, source: Functionality) -> None:
        kind, payload, _sender = message
        if kind != "Broadcast" or not isinstance(payload, tuple) or not payload:
            return
        if payload[0] == "Gen00Commit" and self.time < self.reveal_round:
            _, committer, digest, feldman = payload
            self.commitments.setdefault(committer, digest)
            from repro.crypto.shamir import FeldmanCommitment

            self.backup_commitments.setdefault(
                committer, FeldmanCommitment(tuple(feldman))
            )
        elif payload[0] == "Gen00Reveal":
            _, committer, revealed_message, blinding = payload
            expected = self.commitments.get(committer)
            if expected is None:
                return
            if commit_to(revealed_message, blinding) == expected:
                self.revealed.setdefault(committer, revealed_message)
        elif payload[0] == "Gen00Echo":
            _, _echoer, items = payload
            for committer, x, y in items:
                share = Share(x=x, y=y)
                commitment = self.backup_commitments.get(committer)
                if commitment is None or not feldman_verify(self.group, share, commitment):
                    continue
                self.echoes.setdefault(committer, {})[x] = y

    # -- phases -------------------------------------------------------------------

    def end_of_round(self) -> None:
        now = self.time
        if now == self.reveal_round:
            if self.my_message is not None:
                self.ubc.broadcast(
                    self,
                    ("Gen00Reveal", self.pid, self.my_message, self.my_blinding),
                )
            # Echo backup shares of committers who have not revealed yet;
            # harmless if they do reveal this round (commitment-checked).
            silent = [
                (committer, share.x, share.y)
                for committer, share in sorted(self.backup_shares.items())
            ]
            if silent:
                self.ubc.broadcast(self, ("Gen00Echo", self.pid, tuple(silent)))
        elif now == self.reveal_round + 1 and not self.delivered:
            self.delivered = True
            self.output(("Broadcast", self._finalize()))

    def _finalize(self) -> List[bytes]:
        batch: List[bytes] = []
        for committer, digest in self.commitments.items():
            if committer in self.revealed:
                batch.append(self.revealed[committer])
                continue
            points = self.echoes.get(committer, {})
            if len(points) < self.threshold + 1:
                continue  # aborted and unrecoverable: drops out (Gen00!)
            shares = [Share(x=x, y=y) for x, y in points.items()]
            packed = reconstruct_secret(
                shares[: self.threshold + 1], self.group.q
            )
            decommitment = scalar_to_message(packed)
            if decommitment is None or b"|" not in decommitment:
                continue
            recovered, _, blinding = decommitment.rpartition(b"|")
            if commit_to(recovered, blinding) == digest:
                batch.append(recovered)
        batch.sort(key=sort_key)
        return batch


@dataclass
class GennaroSBCNetwork:
    """A wired Gen00-style network plus its substrate handles."""

    session: "Session"
    parties: Dict[str, GennaroParty]
    network: SyncNetwork
    ubc: UnfairBroadcast
    reveal_round: int

    @classmethod
    def build(
        cls, session: "Session", n: int, reveal_round: int = 2,
        group: SchnorrGroup = TEST_GROUP,
    ) -> "GennaroSBCNetwork":
        network = SyncNetwork(session, fid="Net:gen00")
        ubc = UnfairBroadcast(session, fid="FUBC:gen00")
        pids = [f"P{i}" for i in range(n)]
        parties = {
            pid: GennaroParty(
                session, pid, network=network, ubc=ubc, pids=pids,
                reveal_round=reveal_round, group=group,
            )
            for pid in pids
        }
        return cls(
            session=session, parties=parties, network=network, ubc=ubc,
            reveal_round=reveal_round,
        )
