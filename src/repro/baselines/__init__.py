"""Baselines from prior work, for the comparison benchmarks.

===================  =====================================================
Module               Baseline
===================  =====================================================
``hevia``            Hevia [Hev06]-style honest-majority SBC: VSS-share
                     then reconstruct.  Simultaneity holds iff the
                     corrupted coalition cannot reach the reconstruction
                     threshold — i.e. breaks at t ≥ n/2, exactly the gap
                     the paper closes (benchmark E8).
``gennaro``          Gen00-style commit-then-reveal SBC: constant
                     rounds, honest majority, the *weakest* notion in
                     [HM05]'s hierarchy (aborters drop out).
``naive_beacon``     Commit-in-the-clear randomness beacon over UBC —
                     the strawman a last-mover biases at will (E10).
``rounds_models``    Analytic round/communication-complexity models of
                     the SBC lineage: [CGMA85], [CR87], [Gen00],
                     [FKL08], [Hev06], and this paper (E9).
===================  =====================================================
"""

from repro.baselines.gennaro import GennaroParty, GennaroSBCNetwork
from repro.baselines.hevia import HeviaParty, HeviaSBCNetwork
from repro.baselines.naive_beacon import NaiveBeaconParty
from repro.baselines.rounds_models import COMPLEXITY_MODELS, complexity_table

__all__ = [
    "COMPLEXITY_MODELS",
    "GennaroParty",
    "GennaroSBCNetwork",
    "HeviaParty",
    "HeviaSBCNetwork",
    "NaiveBeaconParty",
    "complexity_table",
]
