"""Structured event trace of a UC execution.

Every session keeps an :class:`EventLog`.  Entities record events
(``leak``, ``deliver``, ``corrupt``, ``tick`` ...) with the round at which
they happened.  Tests use the trace to assert *ordering* properties that the
paper's proofs rely on — e.g. that the simulator advantage ``α`` means the
adversary observes a broadcast value exactly ``α`` rounds before honest
parties do, or that a leak of an honest sender's ciphertext precedes any
adversarial ``Allow``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional


def canonical_detail(obj: Any) -> str:
    """Canonical, cross-process-stable rendering of an event detail.

    ``repr`` is not canonical for dicts (insertion-ordered) or sets
    (iteration order depends on ``PYTHONHASHSEED``), so hashing it could
    make byte-identical executions digest differently across processes.
    This serializer renders dicts/sets with sorted entries and everything
    else exactly as ``repr`` does — so digests over the historical
    int/bytes/str/tuple details are unchanged (the golden digests in
    ``tests/test_runtime.py`` still hold).
    """
    if isinstance(obj, tuple):
        inner = ", ".join(canonical_detail(item) for item in obj)
        return f"({inner},)" if len(obj) == 1 else f"({inner})"
    if isinstance(obj, list):
        return "[" + ", ".join(canonical_detail(item) for item in obj) + "]"
    if isinstance(obj, dict):
        items = sorted(
            (canonical_detail(key), canonical_detail(value))
            for key, value in obj.items()
        )
        return "{" + ", ".join(f"{key}: {value}" for key, value in items) + "}"
    if isinstance(obj, frozenset):
        return "frozenset(" + canonical_detail(set(obj)) + ")" if obj else "frozenset()"
    if isinstance(obj, set):
        return "{" + ", ".join(sorted(canonical_detail(item) for item in obj)) + "}" if obj else "set()"
    return repr(obj)


@dataclass(frozen=True)
class Event:
    """One recorded occurrence inside a UC execution.

    Attributes:
        seq: Global sequence number (total order of the execution).
        time: Clock round at which the event happened.
        kind: Event category, e.g. ``"leak"``, ``"deliver"``, ``"corrupt"``.
        source: Identifier of the entity that produced the event.
        detail: Free-form payload describing the event.
    """

    seq: int
    time: int
    kind: str
    source: str
    detail: Any = None

    def __str__(self) -> str:
        return f"[{self.seq:05d} t={self.time}] {self.kind:<12} {self.source}: {self.detail}"


@dataclass
class EventLog:
    """Append-only log of :class:`Event` records for one session."""

    events: List[Event] = field(default_factory=list)
    _seq: int = 0

    def record(self, time: int, kind: str, source: str, detail: Any = None) -> Event:
        """Append an event and return it."""
        event = Event(seq=self._seq, time=time, kind=kind, source=source, detail=detail)
        self._seq += 1
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def filter(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
    ) -> List[Event]:
        """Return events matching the given criteria, in execution order."""
        selected = []
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if source is not None and event.source != source:
                continue
            if predicate is not None and not predicate(event):
                continue
            selected.append(event)
        return selected

    def first_containing(
        self, needle: bytes, kind: Optional[str] = None
    ) -> Optional[Event]:
        """Earliest event whose detail rendering contains ``needle``.

        The containment convention matches the secrecy assertions used
        throughout the test suite: a payload counts as exposed by an
        event iff its bytes appear verbatim in the event's detail
        rendering.  Details are rendered via :func:`canonical_detail`
        (RPR001: plain ``repr`` of a dict/set detail is not stable across
        processes, so an exposure assertion could flip with the hash
        seed).  Returns ``None`` when no event matches.
        """
        # b'scn:P0' -> scn:P0, escapes kept; bytes repr is deterministic.
        text = repr(needle)[2:-1].encode()
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if text and text in canonical_detail(event.detail).encode():
                return event
        return None

    def first(self, kind: str, **kwargs: Any) -> Optional[Event]:
        """Return the earliest event of the given kind, or ``None``."""
        matches = self.filter(kind=kind, **kwargs)
        return matches[0] if matches else None

    def last(self, kind: str, **kwargs: Any) -> Optional[Event]:
        """Return the latest event of the given kind, or ``None``."""
        matches = self.filter(kind=kind, **kwargs)
        return matches[-1] if matches else None


@dataclass
class NullEventLog(EventLog):
    """A trace sink that records nothing (the ``light`` trace mode).

    Throughput-oriented backends use it to elide per-event allocation in
    sessions whose trace nobody will read (seed sweeps, pooled
    benchmarks).  Protocol behaviour is unaffected — the log is
    write-only state — but trace-based assertions obviously cannot run
    against it.
    """

    def record(self, time: int, kind: str, source: str, detail: Any = None) -> None:
        return None
