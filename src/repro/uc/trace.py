"""Structured event trace of a UC execution.

Every session keeps an :class:`EventLog`.  Entities record events
(``leak``, ``deliver``, ``corrupt``, ``tick`` ...) with the round at which
they happened.  Tests use the trace to assert *ordering* properties that the
paper's proofs rely on — e.g. that the simulator advantage ``α`` means the
adversary observes a broadcast value exactly ``α`` rounds before honest
parties do, or that a leak of an honest sender's ciphertext precedes any
adversarial ``Allow``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """One recorded occurrence inside a UC execution.

    Attributes:
        seq: Global sequence number (total order of the execution).
        time: Clock round at which the event happened.
        kind: Event category, e.g. ``"leak"``, ``"deliver"``, ``"corrupt"``.
        source: Identifier of the entity that produced the event.
        detail: Free-form payload describing the event.
    """

    seq: int
    time: int
    kind: str
    source: str
    detail: Any = None

    def __str__(self) -> str:
        return f"[{self.seq:05d} t={self.time}] {self.kind:<12} {self.source}: {self.detail}"


@dataclass
class EventLog:
    """Append-only log of :class:`Event` records for one session."""

    events: List[Event] = field(default_factory=list)
    _seq: int = 0

    def record(self, time: int, kind: str, source: str, detail: Any = None) -> Event:
        """Append an event and return it."""
        event = Event(seq=self._seq, time=time, kind=kind, source=source, detail=detail)
        self._seq += 1
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def filter(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
    ) -> List[Event]:
        """Return events matching the given criteria, in execution order."""
        selected = []
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if source is not None and event.source != source:
                continue
            if predicate is not None and not predicate(event):
                continue
            selected.append(event)
        return selected

    def first_containing(
        self, needle: bytes, kind: Optional[str] = None
    ) -> Optional[Event]:
        """Earliest event whose detail repr contains ``needle``.

        The repr-containment convention matches the secrecy assertions
        used throughout the test suite: a payload counts as exposed by an
        event iff its bytes appear verbatim in the event's detail
        rendering.  Returns ``None`` when no event matches.
        """
        text = repr(needle)[2:-1].encode()  # b'scn:P0' -> scn:P0, escapes kept
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if text and text in repr(event.detail).encode():
                return event
        return None

    def first(self, kind: str, **kwargs: Any) -> Optional[Event]:
        """Return the earliest event of the given kind, or ``None``."""
        matches = self.filter(kind=kind, **kwargs)
        return matches[0] if matches else None

    def last(self, kind: str, **kwargs: Any) -> Optional[Event]:
        """Return the latest event of the given kind, or ``None``."""
        matches = self.filter(kind=kind, **kwargs)
        return matches[-1] if matches else None


@dataclass
class NullEventLog(EventLog):
    """A trace sink that records nothing (the ``light`` trace mode).

    Throughput-oriented backends use it to elide per-event allocation in
    sessions whose trace nobody will read (seed sweeps, pooled
    benchmarks).  Protocol behaviour is unaffected — the log is
    write-only state — but trace-based assertions obviously cannot run
    against it.
    """

    def record(self, time: int, kind: str, source: str, detail: Any = None) -> None:
        return None
