"""Exception hierarchy for the UC substrate."""


class UCError(Exception):
    """Base class for all errors raised by the UC execution substrate."""


class UnknownEntity(UCError):
    """A party or functionality identifier was not found in the session."""


class CorruptionError(UCError):
    """An operation was attempted that the corruption model forbids.

    Examples: corrupting an already-corrupted party, or the environment
    driving a corrupted party directly (corrupted parties are driven by the
    adversary).
    """


class ResourceExhausted(UCError):
    """A resource-restricted operation exceeded its per-round budget.

    Raised by the :class:`~repro.functionalities.wrapper.QueryWrapper`
    when an entity attempts more than ``q`` oracle queries in one round.
    """


class ProtocolViolation(UCError):
    """An entity sent a message that the receiving machine cannot accept.

    This signals a bug in protocol code (or a deliberately malformed
    adversarial message reaching a code path that must reject it).
    """
