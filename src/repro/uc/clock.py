"""The global clock functionality ``Gclock`` (paper Figure 2).

Synchronicity in the paper follows Katz et al. [KMTZ13]: execution proceeds
in rounds, and the round counter advances only once every *honest* party in
the session has issued an ``Advance_Clock`` request.  Within a round, the
environment (and through it, the adversary) schedules activations freely —
that is the loose synchrony that the non-atomic corruption model exploits.

Corrupted parties are excluded from the advancement condition: the clock
never waits for the adversary (otherwise a crashed corrupted party could
halt time, violating liveness, which the paper's :math:`F_{SBC}`
explicitly guarantees).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Set

from repro.uc.errors import UnknownEntity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


class GlobalClock:
    """``Gclock``: a shared round counter with all-honest-ticked advancement.

    Attributes:
        time: The current round number, starting at 0.
    """

    def __init__(self, session: "Session") -> None:
        self._session = session
        self.time: int = 0
        self._ticked: Set[str] = set()

    # ------------------------------------------------------------------
    # Paper interface
    # ------------------------------------------------------------------

    def read(self) -> int:
        """``Read_Clock``: any participant may read the current round."""
        return self.time

    def tick(self, pid: str) -> bool:
        """``Advance_Clock`` request from party ``pid``.

        Returns:
            True if this tick completed the round (the clock advanced).

        Raises:
            UnknownEntity: if ``pid`` is not a registered party.
        """
        if pid not in self._session.parties:
            raise UnknownEntity(f"clock tick from unregistered party {pid!r}")
        if self._session.is_corrupted(pid):
            # The adversary's ticks carry no weight: honest advancement only.
            return False
        self._ticked.add(pid)
        self._session.log.record(self.time, "tick", pid)
        return self._maybe_advance()

    def has_ticked(self, pid: str) -> bool:
        """Whether ``pid`` has already ticked in the current round."""
        return pid in self._ticked

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------

    def note_corruption(self, pid: str) -> None:
        """Drop ``pid`` from the advancement condition after corruption.

        Called by the session when a party is corrupted; if the corrupted
        party was the last holdout, the round advances immediately.
        """
        self._ticked.discard(pid)
        self._maybe_advance()

    def _expected(self) -> FrozenSet[str]:
        # Cached on the session and invalidated on registration/corruption;
        # rebuilding this set per tick made round advancement O(n^2).
        return self._session.honest_pids

    def _maybe_advance(self) -> bool:
        expected = self._expected()
        if not expected or not expected.issubset(self._ticked):
            # No honest parties means nobody can advance time: rounds are
            # driven by honest participation.
            return False
        self.time += 1
        self._ticked.clear()
        self._session.log.record(self.time, "round", "Gclock", f"advanced to {self.time}")
        self._session.metrics.inc("rounds.advanced")
        # Functionalities observe the new round (scheduled deliveries etc.),
        # then the adversary is activated, mirroring the paper's
        # `Advanced_Clock` notification to A.
        for functionality in list(self._session.functionalities.values()):
            functionality.on_round_advanced(self.time)
        self._session.adversary.on_round_advanced(self.time)
        return True
