"""Cost accounting for UC executions.

The paper measures protocols in rounds, messages and random-oracle queries
(the resource-restricted model of [GKO+20] meters RO queries per round).
:class:`Metrics` collects exactly these units so benchmarks can regenerate
the paper's complexity statements.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class Metrics:
    """Named counters plus a few protocol-specific convenience views."""

    counters: Counter = field(default_factory=Counter)

    def inc(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount``."""
        self.counters[name] += amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters[name]

    # Convenience wrappers for the units the paper reports. --------------

    def count_message(self, channel: str, size_bits: int = 0) -> None:
        """Record one point-to-point message on ``channel``."""
        self.inc("messages.total")
        self.inc(f"messages.{channel}")
        if size_bits:
            self.inc("messages.bits", size_bits)

    def count_ro_query(self, oracle: str, entity: str) -> None:
        """Record one random-oracle query by ``entity`` against ``oracle``."""
        self.inc("ro.total")
        self.inc(f"ro.{oracle}")
        self.inc(f"ro.by.{entity}")

    def count_signature(self, op: str) -> None:
        """Record a signing/verification operation (``op`` in {sign, verify})."""
        self.inc(f"sig.{op}")

    def snapshot(self) -> Dict[str, int]:
        """Immutable copy of all counters."""
        return dict(self.counters)

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Counters accumulated since ``earlier`` (a prior :meth:`snapshot`)."""
        return {
            key: value - earlier.get(key, 0)
            for key, value in self.counters.items()
            if value != earlier.get(key, 0)
        }

    def summary(self, prefixes: Tuple[str, ...] = ("messages", "ro", "sig", "rounds")) -> str:
        """Human-readable one-line-per-counter summary, filtered by prefix."""
        lines = []
        for key in sorted(self.counters):
            if any(key.startswith(prefix) for prefix in prefixes):
                lines.append(f"{key:<30} {self.counters[key]}")
        return "\n".join(lines)
