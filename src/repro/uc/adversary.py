"""Adversary interface for UC executions.

The paper's adversary is Byzantine and *adaptive* in the strong non-atomic
model: it may corrupt parties in the middle of a round, in particular after
observing a leak from a hybrid functionality (e.g. a sender's message leaked
by ``FUBC`` before delivery).

Concrete attack strategies used by tests and benchmarks live in
:mod:`repro.attacks`; this module provides the base interface and the
do-nothing :class:`PassiveAdversary`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.entity import Functionality, Party
    from repro.uc.session import Session


class Adversary:
    """Hook-based adversary.

    Subclasses override the ``on_*`` hooks.  All hooks run synchronously at
    the point the triggering event happens, so a hook can corrupt a party
    mid-round and immediately act on its behalf via the adversarial
    interfaces of the functionalities — the non-atomic model.
    """

    def __init__(self) -> None:
        self.session: Optional["Session"] = None
        #: Leaks observed, in order, as (functionality id, detail) pairs.
        self.observed: List[Any] = []

    # -- wiring ------------------------------------------------------------

    def attach(self, session: "Session") -> None:
        """Called by the session when this adversary is installed."""
        self.session = session

    # -- capabilities --------------------------------------------------------

    def corrupt(self, pid: str) -> "Party":
        """Adaptively corrupt party ``pid``; returns the exposed machine.

        Upon corruption the adversary learns the party's entire internal
        state (the returned object *is* the party machine) and from then on
        drives it.
        """
        return self.session.corrupt(pid)

    @property
    def corrupted_parties(self) -> Set[str]:
        """Identifiers of currently corrupted parties."""
        return set(self.session.corrupted)

    # -- hooks ---------------------------------------------------------------

    def on_leak(self, source: "Functionality", detail: Any) -> None:
        """A functionality leaked ``detail``.  Default: record it."""
        self.observed.append((source.fid, detail))

    def on_corrupted(self, party: "Party") -> None:
        """A party was just corrupted; its state is now exposed."""

    def on_party_registered(self, party: "Party") -> None:
        """A party joined the session (static corruptors hook here)."""

    def on_round_advanced(self, new_time: int) -> None:
        """The global clock advanced."""

    def on_party_activated(self, party: "Party") -> None:
        """The environment is about to tick ``party`` (scheduling hook)."""

    def on_dec_request(self, functionality: "Functionality", ciphertext, tau: int):
        """``FTLE`` asks the adversary to explain an unknown ciphertext.

        Return the plaintext the honest decryption should yield, or
        ``None`` for ⊥ (the default: the adversary refuses to help).
        """
        return None


class PassiveAdversary(Adversary):
    """Observes all leaks but never corrupts or injects anything."""


class StaticCorruptor(Adversary):
    """Corrupts a fixed set of parties at the start of the execution.

    The corrupted machines are left idle unless a subclass drives them.
    This is the static-corruption baseline against which the adaptive
    attacks in :mod:`repro.attacks` are contrasted.
    """

    def __init__(self, pids: Optional[List[str]] = None) -> None:
        super().__init__()
        self.initial_corruptions = list(pids or [])

    def on_party_registered(self, party: "Party") -> None:
        if party.pid in self.initial_corruptions:
            self.corrupt(party.pid)
