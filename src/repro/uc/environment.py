"""The environment Z: drives inputs and the round structure.

In UC, the environment schedules the execution.  :class:`Environment`
provides the common driving pattern used throughout the paper's figures:

1. deliver this round's inputs to parties (``Broadcast``, ``Enc``,
   ``Vote``, ... — modelled as callables applied to the party machine);
2. issue ``Advance_Clock`` to every honest party, in an activation order
   the environment (hence the adversary) may choose.

The adversary's hooks fire synchronously during both phases, so adaptive
mid-round corruption is exercised simply by running an adversary whose
``on_leak`` corrupts.

The round loop itself lives in :mod:`repro.runtime.driver`; the
environment delegates to the :class:`~repro.runtime.driver.RoundDriver`
selected by the session's execution backend, so alternative execution
strategies (batched activation, pooled sweeps) plug in without changing
any environment script.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.runtime.driver import Action, RoundDriver
from repro.uc.session import Session

__all__ = ["Action", "Environment"]


class Environment:
    """Round driver facade for a session.

    Args:
        session: The session to drive.
        order: Default activation order for ``Advance_Clock`` (party ids);
            defaults to registration order.
        driver: Explicit round driver; defaults to the one selected by
            ``session.backend``.
    """

    def __init__(
        self,
        session: Session,
        order: Optional[Sequence[str]] = None,
        driver: Optional[RoundDriver] = None,
    ) -> None:
        self.session = session
        self.driver = driver if driver is not None else session.backend.make_driver(
            session, order=order
        )
        if driver is not None and order is not None:
            self.driver.order = list(order)

    @property
    def order(self) -> Optional[Sequence[str]]:
        """Default activation order (proxied to the driver)."""
        return self.driver.order

    @order.setter
    def order(self, value: Optional[Sequence[str]]) -> None:
        self.driver.order = list(value) if value is not None else None

    def run_round(
        self,
        actions: Iterable[Action] = (),
        order: Optional[Sequence[str]] = None,
    ) -> int:
        """Run one full round and return the new clock time.

        Args:
            actions: Input deliveries performed at the start of the round.
                Actions addressed to corrupted parties are skipped (their
                inputs are the adversary's business).
            order: Activation order for this round's ``Advance_Clock``.
        """
        return self.driver.run_round(actions, order=order)

    def run_rounds(self, count: int, order: Optional[Sequence[str]] = None) -> int:
        """Run ``count`` empty rounds (clock ticks only)."""
        return self.driver.run_rounds(count, order=order)

    def run_until(
        self,
        predicate: Callable[[Session], bool],
        max_rounds: int = 1000,
        order: Optional[Sequence[str]] = None,
    ) -> int:
        """Run empty rounds until ``predicate(session)`` holds.

        Raises:
            RuntimeError: if the predicate is still false after
                ``max_rounds`` rounds (a liveness failure in the system
                under test).
        """
        return self.driver.run_until(predicate, max_rounds=max_rounds, order=order)
