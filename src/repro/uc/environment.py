"""The environment Z: drives inputs and the round structure.

In UC, the environment schedules the execution.  :class:`Environment`
provides the common driving pattern used throughout the paper's figures:

1. deliver this round's inputs to parties (``Broadcast``, ``Enc``,
   ``Vote``, ... — modelled as callables applied to the party machine);
2. issue ``Advance_Clock`` to every honest party, in an activation order
   the environment (hence the adversary) may choose.

The adversary's hooks fire synchronously during both phases, so adaptive
mid-round corruption is exercised simply by running an adversary whose
``on_leak`` corrupts.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.uc.session import Session

#: An input action: apply the callable to the named party's machine.
Action = Tuple[str, Callable[[Any], Any]]


class Environment:
    """Round driver for a session.

    Args:
        session: The session to drive.
        order: Default activation order for ``Advance_Clock`` (party ids);
            defaults to registration order.
    """

    def __init__(self, session: Session, order: Optional[Sequence[str]] = None) -> None:
        self.session = session
        self.order = list(order) if order is not None else None

    def _activation_order(self, order: Optional[Sequence[str]]) -> List[str]:
        if order is not None:
            return list(order)
        if self.order is not None:
            return list(self.order)
        return list(self.session.parties)

    def run_round(
        self,
        actions: Iterable[Action] = (),
        order: Optional[Sequence[str]] = None,
    ) -> int:
        """Run one full round and return the new clock time.

        Args:
            actions: Input deliveries performed at the start of the round.
                Actions addressed to corrupted parties are skipped (their
                inputs are the adversary's business).
            order: Activation order for this round's ``Advance_Clock``.
        """
        for pid, action in actions:
            party = self.session.party(pid)
            if party.corrupted:
                continue
            action(party)
        for pid in self._activation_order(order):
            party = self.session.party(pid)
            if party.corrupted:
                continue
            self.session.adversary.on_party_activated(party)
            if party.corrupted:
                # on_party_activated may have corrupted it.
                continue
            party.advance_clock()
        return self.session.clock.time

    def run_rounds(self, count: int, order: Optional[Sequence[str]] = None) -> int:
        """Run ``count`` empty rounds (clock ticks only)."""
        for _ in range(count):
            self.run_round((), order=order)
        return self.session.clock.time

    def run_until(
        self,
        predicate: Callable[[Session], bool],
        max_rounds: int = 1000,
        order: Optional[Sequence[str]] = None,
    ) -> int:
        """Run empty rounds until ``predicate(session)`` holds.

        Raises:
            RuntimeError: if the predicate is still false after
                ``max_rounds`` rounds (a liveness failure in the system
                under test).
        """
        for _ in range(max_rounds):
            if predicate(self.session):
                return self.session.clock.time
            self.run_round((), order=order)
        if predicate(self.session):
            return self.session.clock.time
        raise RuntimeError(f"predicate not satisfied within {max_rounds} rounds")
