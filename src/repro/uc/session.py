"""The session object: registry, randomness, corruption state, accounting.

A :class:`Session` corresponds to one UC execution (one ``sid``): it owns
the global clock, the set of parties and functionalities, the adversary,
the deterministic randomness source, the metrics and the event trace.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.uc.clock import GlobalClock
from repro.uc.errors import CorruptionError, UnknownEntity
from repro.uc.metrics import Metrics
from repro.uc.trace import EventLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.adversary import Adversary
    from repro.uc.entity import Functionality, Party


class Session:
    """One UC protocol session.

    Args:
        sid: Session identifier.
        seed: Seed for the session RNG — all protocol randomness must come
            from :attr:`rng` (or RNGs derived from it) so executions are
            reproducible.
        adversary: The adversary for this execution; defaults to a
            :class:`~repro.uc.adversary.PassiveAdversary`.
    """

    def __init__(
        self,
        sid: str = "sid0",
        seed: int = 0,
        adversary: Optional["Adversary"] = None,
    ) -> None:
        self.sid = sid
        self.rng = random.Random(seed)
        self.log = EventLog()
        self.metrics = Metrics()
        self.parties: Dict[str, "Party"] = {}
        self.functionalities: Dict[str, "Functionality"] = {}
        self.corrupted: Set[str] = set()
        self.clock = GlobalClock(self)
        if adversary is None:
            from repro.uc.adversary import PassiveAdversary

            adversary = PassiveAdversary()
        self.adversary = adversary
        adversary.attach(self)

    # -- registry -------------------------------------------------------------

    def register_party(self, party: "Party") -> None:
        """Register ``party``; identifiers must be unique within the session."""
        if party.pid in self.parties:
            raise ValueError(f"duplicate party id {party.pid!r}")
        self.parties[party.pid] = party
        self.adversary.on_party_registered(party)

    def register_functionality(self, functionality: "Functionality") -> None:
        """Register ``functionality``; identifiers must be unique."""
        if functionality.fid in self.functionalities:
            raise ValueError(f"duplicate functionality id {functionality.fid!r}")
        self.functionalities[functionality.fid] = functionality

    def party(self, pid: str) -> "Party":
        """Look up a party by id."""
        try:
            return self.parties[pid]
        except KeyError:
            raise UnknownEntity(f"no party {pid!r}") from None

    def functionality(self, fid: str) -> "Functionality":
        """Look up a functionality by id."""
        try:
            return self.functionalities[fid]
        except KeyError:
            raise UnknownEntity(f"no functionality {fid!r}") from None

    # -- corruption --------------------------------------------------------------

    def is_corrupted(self, pid: str) -> bool:
        """Whether party ``pid`` is currently corrupted."""
        return pid in self.corrupted

    @property
    def honest_parties(self) -> Dict[str, "Party"]:
        """View of currently honest parties (registration order preserved)."""
        return {
            pid: party
            for pid, party in self.parties.items()
            if pid not in self.corrupted
        }

    def corrupt(self, pid: str) -> "Party":
        """Corrupt party ``pid`` (adaptive, possibly mid-round).

        Returns the party machine (its internal state is thereby exposed to
        the adversary).  The clock stops waiting for the party.

        Raises:
            UnknownEntity: unknown ``pid``.
            CorruptionError: already corrupted.
        """
        party = self.party(pid)
        if pid in self.corrupted:
            raise CorruptionError(f"{pid} is already corrupted")
        self.corrupted.add(pid)
        self.log.record(self.clock.time, "corrupt", pid)
        self.metrics.inc("corruptions")
        self.clock.note_corruption(pid)
        self.adversary.on_corrupted(party)
        return party

    # -- randomness helpers ---------------------------------------------------------

    def random_bytes(self, n: int) -> bytes:
        """``n`` session-deterministic random bytes."""
        return self.rng.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def fresh_tag(self) -> bytes:
        """A unique random tag from {0,1}^λ (λ = 128 bits here)."""
        return self.random_bytes(16)
