"""The session object: registry, randomness, corruption state, accounting.

A :class:`Session` corresponds to one UC execution (one ``sid``): it owns
the global clock, the set of parties and functionalities, the adversary,
the deterministic randomness source, the metrics and the event trace.

The session is also where the execution *runtime* plugs in: the
:class:`~repro.runtime.backend.ExecutionBackend` chosen at construction
fixes the trace mode and the drain policy of the per-round message
scheduler, and tells :class:`~repro.uc.environment.Environment` which
round driver to instantiate.  The default (``sequential``) backend
reproduces the pre-runtime engine byte-for-byte.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Set, Union

from repro.runtime.backend import ExecutionBackend, get_backend
from repro.runtime.scheduler import BatchScheduler
from repro.uc.clock import GlobalClock
from repro.uc.errors import CorruptionError, UnknownEntity
from repro.uc.metrics import Metrics
from repro.uc.trace import EventLog, NullEventLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.adversary import Adversary
    from repro.uc.entity import Functionality, Party


class Session:
    """One UC protocol session.

    Args:
        sid: Session identifier.
        seed: Seed for the session RNG — all protocol randomness must come
            from :attr:`rng` (or RNGs derived from it) so executions are
            reproducible.
        adversary: The adversary for this execution; defaults to a
            :class:`~repro.uc.adversary.PassiveAdversary`.
        backend: Execution backend (name or instance) fixing the trace
            mode and message-drain policy; default ``"sequential"``.
        trace: Optional trace-mode override (``"full"`` / ``"light"``);
            ``None`` uses the backend's default.
    """

    def __init__(
        self,
        sid: str = "sid0",
        seed: int = 0,
        adversary: Optional["Adversary"] = None,
        backend: Union[str, ExecutionBackend, None] = None,
        trace: Optional[str] = None,
    ) -> None:
        self.sid = sid
        self.rng = random.Random(seed)
        self.backend = get_backend(backend)
        trace_mode = trace if trace is not None else self.backend.trace
        self.log = NullEventLog() if trace_mode == "light" else EventLog()
        self.scheduler = BatchScheduler(policy=self.backend.scheduler_policy)
        self.metrics = Metrics()
        self.parties: Dict[str, "Party"] = {}
        self.functionalities: Dict[str, "Functionality"] = {}
        self.corrupted: Set[str] = set()
        #: Bumped whenever the party topology changes (registration or
        #: corruption); drivers and caches key their snapshots on it.
        self.topology_epoch = 0
        self._honest_cache: Optional[Dict[str, "Party"]] = None
        self._honest_pids: Optional[FrozenSet[str]] = None
        self.clock = GlobalClock(self)
        if adversary is None:
            from repro.uc.adversary import PassiveAdversary

            adversary = PassiveAdversary()
        self.adversary = adversary
        adversary.attach(self)

    # -- registry -------------------------------------------------------------

    def register_party(self, party: "Party") -> None:
        """Register ``party``; identifiers must be unique within the session."""
        if party.pid in self.parties:
            raise ValueError(f"duplicate party id {party.pid!r}")
        self.parties[party.pid] = party
        self._invalidate_topology()
        self.adversary.on_party_registered(party)

    def register_functionality(self, functionality: "Functionality") -> None:
        """Register ``functionality``; identifiers must be unique."""
        if functionality.fid in self.functionalities:
            raise ValueError(f"duplicate functionality id {functionality.fid!r}")
        self.functionalities[functionality.fid] = functionality

    def party(self, pid: str) -> "Party":
        """Look up a party by id."""
        try:
            return self.parties[pid]
        except KeyError:
            raise UnknownEntity(f"no party {pid!r}") from None

    def functionality(self, fid: str) -> "Functionality":
        """Look up a functionality by id."""
        try:
            return self.functionalities[fid]
        except KeyError:
            raise UnknownEntity(f"no functionality {fid!r}") from None

    # -- corruption --------------------------------------------------------------

    def is_corrupted(self, pid: str) -> bool:
        """Whether party ``pid`` is currently corrupted."""
        return pid in self.corrupted

    def _invalidate_topology(self) -> None:
        self.topology_epoch += 1
        self._honest_cache = None
        self._honest_pids = None

    @property
    def honest_parties(self) -> Dict[str, "Party"]:
        """View of currently honest parties (registration order preserved).

        The mapping is cached between topology changes — treat it as
        read-only; it is rebuilt after every ``register_party`` /
        ``corrupt``.
        """
        if self._honest_cache is None:
            self._honest_cache = {
                pid: party
                for pid, party in self.parties.items()
                if pid not in self.corrupted
            }
        return self._honest_cache

    @property
    def honest_pids(self) -> FrozenSet[str]:
        """Frozen set of currently honest party ids (cached like
        :attr:`honest_parties`; the clock's advancement condition)."""
        if self._honest_pids is None:
            self._honest_pids = frozenset(
                pid for pid in self.parties if pid not in self.corrupted
            )
        return self._honest_pids

    def corrupt(self, pid: str) -> "Party":
        """Corrupt party ``pid`` (adaptive, possibly mid-round).

        Returns the party machine (its internal state is thereby exposed to
        the adversary).  The clock stops waiting for the party.

        Raises:
            UnknownEntity: unknown ``pid``.
            CorruptionError: already corrupted.
        """
        party = self.party(pid)
        if pid in self.corrupted:
            raise CorruptionError(f"{pid} is already corrupted")
        self.corrupted.add(pid)
        self._invalidate_topology()
        self.log.record(self.clock.time, "corrupt", pid)
        self.metrics.inc("corruptions")
        self.clock.note_corruption(pid)
        self.adversary.on_corrupted(party)
        return party

    # -- randomness helpers ---------------------------------------------------------

    def random_bytes(self, n: int) -> bytes:
        """``n`` session-deterministic random bytes.

        The ``n == 0`` guard matters twice over: ``getrandbits(0)`` raises,
        and the fast path must not consume RNG state (a zero-byte request
        must leave the deterministic stream untouched).  Audited companions:
        :func:`repro.crypto.hashing.expand` and
        :func:`repro.crypto.hashing.xor_bytes` are likewise zero-length
        safe without touching any stateful source.
        """
        return self.rng.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def fresh_tag(self) -> bytes:
        """A unique random tag from {0,1}^λ (λ = 128 bits here)."""
        return self.random_bytes(16)
