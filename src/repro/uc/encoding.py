"""Canonical byte encoding of protocol payloads.

Functionalities sort message lists "lexicographically" (FFBC Figure 10
step 2, FSBC Figure 13 step 2(a)i.B) and protocols hash structured values
into random oracles.  Both need a deterministic, injective byte encoding
of the payloads we pass around: ``bytes``, ``str``, ``int``, ``bool``,
``None``, tuples/lists thereof, and (frozen) dataclasses.
"""

from __future__ import annotations

import dataclasses
from typing import Any


def encode(value: Any) -> bytes:
    """Deterministic injective encoding (a compact tagged TLV scheme)."""
    if value is None:
        return b"N"
    if isinstance(value, bool):  # must precede int (bool is an int subclass)
        return b"T" if value else b"F"
    if isinstance(value, bytes):
        return b"B" + len(value).to_bytes(8, "big") + value
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"S" + len(raw).to_bytes(8, "big") + raw
    if isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        return b"I" + len(raw).to_bytes(8, "big") + raw
    if isinstance(value, (tuple, list)):
        parts = [encode(item) for item in value]
        header = b"L" + len(parts).to_bytes(8, "big")
        return header + b"".join(parts)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = tuple(
            getattr(value, field.name) for field in dataclasses.fields(value)
        )
        name = type(value).__name__.encode("utf-8")
        return b"D" + len(name).to_bytes(2, "big") + name + encode(fields)
    raise TypeError(f"cannot canonically encode {type(value).__name__}")


def sort_key(value: Any) -> bytes:
    """Lexicographic sort key for message payloads.

    Byte and text messages sort by plain content (the natural reading of
    the paper's "sorts lexicographically"); other payloads fall back to
    the canonical encoding, which is deterministic across worlds — the
    property the real/ideal output comparison actually needs.
    """
    if isinstance(value, bytes):
        return b"B" + value
    if isinstance(value, str):
        return b"S" + value.encode("utf-8")
    return b"X" + encode(value)


#: Dataclass registry for decoding (name -> class).  Protocol modules
#: register the dataclasses they put on the wire.
_DATACLASS_REGISTRY: dict = {}


def register_dataclass(cls: type) -> type:
    """Register ``cls`` so :func:`decode` can reconstruct it (decorator-friendly)."""
    _DATACLASS_REGISTRY[cls.__name__] = cls
    return cls


class DecodeError(ValueError):
    """The byte string is not a valid canonical encoding."""


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`.

    Raises:
        DecodeError: on malformed input or trailing bytes.
    """
    value, rest = _decode_one(data)
    if rest:
        raise DecodeError(f"{len(rest)} trailing bytes")
    return value


def _decode_one(data: bytes):
    if not data:
        raise DecodeError("empty input")
    tag, rest = data[:1], data[1:]
    if tag == b"N":
        return None, rest
    if tag == b"T":
        return True, rest
    if tag == b"F":
        return False, rest
    if tag in (b"B", b"S", b"I"):
        if len(rest) < 8:
            raise DecodeError("truncated length")
        length = int.from_bytes(rest[:8], "big")
        payload, rest = rest[8 : 8 + length], rest[8 + length :]
        if len(payload) != length:
            raise DecodeError("truncated payload")
        if tag == b"B":
            return payload, rest
        if tag == b"S":
            return payload.decode("utf-8"), rest
        return int.from_bytes(payload, "big", signed=True), rest
    if tag == b"L":
        if len(rest) < 8:
            raise DecodeError("truncated list length")
        count = int.from_bytes(rest[:8], "big")
        rest = rest[8:]
        items = []
        for _ in range(count):
            item, rest = _decode_one(rest)
            items.append(item)
        return tuple(items), rest
    if tag == b"D":
        if len(rest) < 2:
            raise DecodeError("truncated dataclass name")
        name_len = int.from_bytes(rest[:2], "big")
        name, rest = rest[2 : 2 + name_len].decode("utf-8"), rest[2 + name_len :]
        fields, rest = _decode_one(rest)
        cls = _DATACLASS_REGISTRY.get(name)
        if cls is None:
            raise DecodeError(f"unregistered dataclass {name!r}")
        return cls(*fields), rest
    raise DecodeError(f"unknown tag {tag!r}")
