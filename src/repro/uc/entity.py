"""Base classes for UC entities: parties and ideal functionalities.

A *party* is a protocol machine driven by the environment.  A
*functionality* is an incorruptible trusted machine that parties (and the
adversary, on behalf of corrupted parties) interact with via direct method
calls; method calls model the instantaneous message exchange of the UC
model.

The crucial modelling point for this paper is the **leak** mechanism:
functionalities inform the adversary of honest activity *synchronously*
(:meth:`Functionality.leak`).  Because the callback runs before control
returns to the functionality, the adversary can corrupt the sender at that
exact moment — corruption "in the middle of a round", the strong non-atomic
model of [HZ10] under which plain broadcast is unachievable and which the
paper's TLE-based stack is designed to survive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Sequence

from repro.uc.errors import CorruptionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


class Entity:
    """Anything registered in a session: has an id and helpers."""

    def __init__(self, session: "Session", entity_id: str) -> None:
        self.session = session
        self.entity_id = entity_id

    @property
    def time(self) -> int:
        """Current global round (a ``Read_Clock`` to ``Gclock``)."""
        return self.session.clock.read()

    def record(self, kind: str, detail: Any = None) -> None:
        """Append an event to the session trace, attributed to this entity."""
        self.session.log.record(self.time, kind, self.entity_id, detail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.entity_id}>"


class Party(Entity):
    """A protocol machine.

    Subclasses implement the protocol logic by overriding:

    * input methods (named per protocol, e.g. ``broadcast``) — invoked by
      the environment to hand the party an input from Z;
    * :meth:`on_deliver` — a functionality delivered a message to us;
    * :meth:`end_of_round` — the work this protocol performs upon the
      environment's ``Advance_Clock`` (most of the paper's protocol logic
      lives here, cf. Figures 9, 11, 12, 14, 16).

    Outputs destined for the environment Z are collected in
    :attr:`outputs`.
    """

    def __init__(self, session: "Session", pid: str) -> None:
        super().__init__(session, pid)
        self.pid = pid
        self.outputs: List[Any] = []
        #: Functionalities to notify (in order) when this party ticks; each
        #: receives ``on_party_tick`` — the paper's "Upon receiving
        #: Advance_Clock from P" clause.
        self.clock_recipients: List["Functionality"] = []
        #: Delivery routing table: source fid -> handler(message, source).
        #: The default :meth:`on_deliver` dispatches through it, so stacked
        #: protocols can claim the deliveries of the layer below them.
        self.route: dict = {}
        session.register_party(self)

    # -- state ----------------------------------------------------------

    @property
    def corrupted(self) -> bool:
        """Whether this party is currently corrupted."""
        return self.session.is_corrupted(self.pid)

    def output(self, value: Any) -> None:
        """Return ``value`` to the environment Z."""
        self.outputs.append(value)
        self.record("output", value)

    # -- hooks ----------------------------------------------------------

    def on_deliver(self, message: Any, source: "Functionality") -> None:
        """A functionality delivered ``message`` to this party.

        The default dispatches through :attr:`route`; unrouted deliveries
        are silently dropped (subclasses either register routes or
        override this method wholesale).
        """
        handler = self.route.get(source.fid)
        if handler is not None:
            handler(message, source)

    def end_of_round(self) -> None:
        """Round work performed upon ``Advance_Clock`` (override)."""

    # -- the Advance_Clock template --------------------------------------

    def advance_clock(self) -> None:
        """Process the environment's ``Advance_Clock`` command.

        Follows the structure shared by all the paper's protocols: perform
        the end-of-round work, forward ``Advance_Clock`` down the hybrid
        functionality chain, then tick ``Gclock``.

        Raises:
            CorruptionError: if the environment drives a corrupted party
                (corrupted parties are the adversary's to drive).
        """
        if self.corrupted:
            raise CorruptionError(f"{self.pid} is corrupted; Z cannot drive it")
        if self.session.clock.has_ticked(self.pid):
            # Paper: "if this is the first time P has received
            # Advance_Clock during round Cl" — duplicates are ignored.
            return
        self.end_of_round()
        for functionality in self.clock_recipients:
            functionality.on_party_tick(self)
        self.session.clock.tick(self.pid)


class Functionality(Entity):
    """An ideal (incorruptible) functionality.

    Subclasses implement the command interfaces of the paper's figures as
    plain methods.  Shared plumbing:

    * :meth:`leak` — hand information to the adversary synchronously;
    * :meth:`deliver` — output a message to a party;
    * :meth:`deliver_all` — output to every party (e.g. broadcast);
    * :meth:`on_party_tick` — per-party ``Advance_Clock`` clause;
    * :meth:`on_round_advanced` — the global round advanced.
    """

    def __init__(self, session: "Session", fid: str) -> None:
        super().__init__(session, fid)
        self.fid = fid
        session.register_functionality(self)

    # -- adversary interaction -------------------------------------------

    def leak(self, detail: Any) -> None:
        """Send ``detail`` to the adversary (synchronously).

        The adversary's :meth:`~repro.uc.adversary.Adversary.on_leak` hook
        runs *now*; it may corrupt parties or invoke adversarial interfaces
        of this functionality before control returns.
        """
        self.record("leak", detail)
        self.session.adversary.on_leak(self, detail)

    def require_corrupted(self, pid: str) -> None:
        """Guard for adversarial interfaces acting on behalf of a party.

        Raises:
            CorruptionError: if ``pid`` is honest.
        """
        if not self.session.is_corrupted(pid):
            raise CorruptionError(
                f"{self.fid}: adversary acted on behalf of honest party {pid!r}"
            )

    # -- party interaction ------------------------------------------------

    def deliver(self, party: Party, message: Any) -> None:
        """Output ``message`` to ``party``.

        Deliveries to corrupted parties route to the adversary (a corrupted
        machine is the adversary's puppet; its inbox is the adversary's).
        """
        self.record("deliver", (party.pid, message))
        self.session.metrics.count_message(self.fid)
        if party.corrupted:
            self.session.adversary.on_leak(self, ("Deliver", party.pid, message))
        else:
            party.on_deliver(message, self)

    def deliver_all(self, message: Any, exclude: Optional[Sequence[str]] = None) -> None:
        """Output ``message`` to every registered party (optionally excluding some)."""
        excluded = set(exclude or ())
        for party in list(self.session.parties.values()):
            if party.pid not in excluded:
                self.deliver(party, message)

    # -- clock hooks --------------------------------------------------------

    def on_party_tick(self, party: Party) -> None:
        """``Advance_Clock`` received from ``party`` (override as needed)."""

    def on_round_advanced(self, new_time: int) -> None:
        """The global clock advanced to ``new_time`` (override as needed)."""
