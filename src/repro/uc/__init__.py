"""Executable Universal Composability (UC) substrate.

This subpackage provides the execution model the paper assumes (Section 2):
synchronous rounds driven by a global clock functionality ``Gclock``
(Katz et al. [KMTZ13]), an environment that schedules activations, and a
Byzantine adversary that may *adaptively* corrupt parties in the middle of a
round (the strong non-atomic model of Hirt–Zikas [HZ10]).

The model is deliberately deterministic and seedable so that every test and
benchmark is reproducible: all randomness flows through
:class:`~repro.uc.session.Session`'s ``rng``.

Key concepts
------------

* :class:`~repro.uc.session.Session` — the registry tying together parties,
  functionalities, the adversary, the clock, metrics and the event trace.
* :class:`~repro.uc.entity.Party` / :class:`~repro.uc.entity.Functionality`
  — base classes for protocol machines and ideal functionalities.
* :class:`~repro.uc.clock.GlobalClock` — ``Gclock`` (paper Figure 2): the
  round advances only once every *honest* party has ticked.
* :class:`~repro.uc.adversary.Adversary` — hook-based adversary interface;
  leaks from functionalities arrive synchronously, so an adversary may
  corrupt a sender *after* seeing its message but *before* delivery
  completes, which is exactly the non-atomic corruption the paper's
  fair-broadcast layer must (and does) survive.
* :class:`~repro.uc.environment.Environment` — drives rounds: input
  delivery, activation order, clock ticks.
"""

from repro.uc.adversary import Adversary, PassiveAdversary
from repro.uc.clock import GlobalClock
from repro.uc.entity import Entity, Functionality, Party
from repro.uc.environment import Environment
from repro.uc.errors import (
    CorruptionError,
    ResourceExhausted,
    UCError,
    UnknownEntity,
)
from repro.uc.metrics import Metrics
from repro.uc.session import Session
from repro.uc.trace import Event, EventLog

__all__ = [
    "Adversary",
    "CorruptionError",
    "Entity",
    "Environment",
    "Event",
    "EventLog",
    "Functionality",
    "GlobalClock",
    "Metrics",
    "Party",
    "PassiveAdversary",
    "ResourceExhausted",
    "Session",
    "UCError",
    "UnknownEntity",
]
