"""Executable simulators: the proofs' key mechanics as running code.

UC security proofs construct a *simulator* S that, sitting in the ideal
world, fabricates the real-world adversary's view from the little the
ideal functionality leaks.  Two of the paper's simulators have mechanics
worth executing rather than just reading:

* :mod:`repro.simulators.ubc` — ``S_UBC`` (Appendix A): translates
  ``FUBC`` leaks into per-message ``FRBC``-instance traffic for the
  inner adversary, and adversarial ``Allow``/``Broadcast`` moves back
  into ``FUBC`` commands.  The view-equality test shows a real adversary
  cannot tell the worlds apart — Lemma 1, executably.
* :mod:`repro.simulators.sbc` — the equivocation core of ``S_SBC``
  (Theorem 2's proof): commit to a random mask ``y`` long before knowing
  the message, then *program the random oracle* at the release round so
  the ciphertext opens to the real ``M``; and the matching abort — if
  the adversary somehow queried ``ρ`` first, programming fails, which is
  exactly the negligible-probability bad event the proof charges to the
  TLE's semantic security.
"""

from repro.simulators.sbc import EquivocationAbort, SBCEquivocator
from repro.simulators.ubc import UBCSimulator

__all__ = ["EquivocationAbort", "SBCEquivocator", "UBCSimulator"]
