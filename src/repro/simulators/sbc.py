"""The equivocation core of ``S_SBC`` (Theorem 2's proof), executable.

The simulator's bind: in the ideal world it must show the adversary a
convincing ΠSBC transcript — TLE ciphertexts ``c`` and masks ``y`` for
every honest sender — *before* it knows the honest messages (``FSBC``
leaks only lengths during the broadcast period).  Only at
``t_end + ∆ − α`` does ``FSBC`` hand it the real batch.

The escape is the programmable random oracle: commit early to a random
``ρ`` and a uniformly random ``y`` (both distributed exactly as in the
real protocol), and when ``M`` finally arrives, *program* ``FRO(ρ) :=
M ⊕ y`` so the transcript opens to the right message.  Programming can
fail only if the adversary already queried ``ρ`` — i.e. it opened the
time-lock before the release, the negligible event the proof charges to
the TLE.  :class:`SBCEquivocator` implements exactly this bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.crypto.hashing import DIGEST_SIZE, xor_bytes
from repro.functionalities.random_oracle import ProgrammingConflict, RandomOracle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


class EquivocationAbort(Exception):
    """The simulation's abort event: the adversary pre-queried ``ρ``.

    In the proof this happens with negligible probability (it requires
    guessing a uniform λ-bit string or breaking the time lock); the
    executable version raises so tests can exhibit the abort condition.
    """


@dataclass
class _Commitment:
    tag: bytes
    rho: bytes
    mask: bytes
    equivocated: bool = False


class SBCEquivocator:
    """Commit-now, explain-later transcript fabrication.

    Args:
        session: Session supplying randomness.
        oracle: The *programmable* ``FRO`` the simulated parties (and the
            adversary) query; its digest size fixes the mask length.
    """

    def __init__(self, session: "Session", oracle: RandomOracle) -> None:
        self.session = session
        self.oracle = oracle
        self._commitments: Dict[bytes, _Commitment] = {}

    # -- phase 1: the broadcast period -----------------------------------

    def commit(self, tag: bytes) -> Tuple[bytes, bytes]:
        """Fabricate the transcript pieces for one honest sender handle.

        Returns ``(rho, y)``: the TLE plaintext stand-in and the mask the
        simulated sender "broadcasts".  Both are uniform — exactly the
        real-world distribution — and carry zero information about the
        eventual message.
        """
        rho = self.session.random_bytes(DIGEST_SIZE)
        mask = self.session.random_bytes(self.oracle.digest_size)
        self._commitments[tag] = _Commitment(tag=tag, rho=rho, mask=mask)
        return rho, mask

    # -- phase 2: the release ------------------------------------------------

    def equivocate(self, tag: bytes, message_padded: bytes) -> None:
        """Learn the real message; program ``FRO(ρ) := M ⊕ y``.

        Raises:
            EquivocationAbort: if the adversary queried ``ρ`` before the
                programming — the proof's abort event.
            KeyError: unknown tag (simulator bookkeeping error).
        """
        commitment = self._commitments[tag]
        if commitment.equivocated:
            return
        if len(message_padded) != len(commitment.mask):
            raise ValueError("padded message must match the mask length")
        try:
            self.oracle.program(
                commitment.rho, xor_bytes(message_padded, commitment.mask)
            )
        except ProgrammingConflict as exc:
            raise EquivocationAbort(
                "adversary queried rho before the release round"
            ) from exc
        commitment.equivocated = True

    # -- what the adversary can check -----------------------------------------

    def open(self, tag: bytes, querier: str = "A") -> bytes:
        """Open a commitment the way any party would: ``y ⊕ FRO(ρ)``."""
        commitment = self._commitments[tag]
        eta = self.oracle.query(commitment.rho, querier=querier)
        return xor_bytes(commitment.mask, eta)

    def pending(self) -> List[bytes]:
        """Tags committed but not yet equivocated."""
        return [c.tag for c in self._commitments.values() if not c.equivocated]
