"""``S_UBC`` — the unfair-broadcast simulator of Appendix A, executable.

The real world runs ΠUBC: every broadcast spawns an ``FRBC`` instance
whose leaks (full message + sender) reach the adversary, who may corrupt
the sender and ``Allow`` a replacement on the *instance*.

In the ideal world the dummy parties talk to ``FUBC``.  The simulator
sits between ``FUBC`` and the inner (real-world) adversary:

* on an ``FUBC`` leak ``(Broadcast, tag, M, P)`` it fabricates an
  ``FRBC``-instance leak ``(Broadcast, M, P)`` from a shim source whose
  ``adv_allow`` translates back into ``FUBC.adv_allow(tag, ·)``;
* adversarial ``adv_broadcast`` on a shim is forwarded to ``FUBC``.

Because ``FUBC`` is itself unfair (it leaks the message), the simulation
is *perfect*: the inner adversary's view is byte-identical to its
real-world view, which is what ``tests/test_simulators.py`` checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.uc.adversary import Adversary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.functionalities.ubc import UnfairBroadcast


class _RBCInstanceShim:
    """What the inner adversary believes is an ``FRBC`` instance.

    Mirrors the attack surface of
    :class:`~repro.functionalities.rbc.RelaxedBroadcast`: ``fid``,
    ``halted``, ``sender``, ``via``, ``adv_allow`` and (via the parent
    simulator) ``adv_broadcast``.
    """

    def __init__(self, simulator: "UBCSimulator", fid: str, tag: Optional[bytes], sender: str) -> None:
        self._simulator = simulator
        self.fid = fid
        self.tag = tag
        self.sender = sender
        self.halted = False
        self.via = self  # ΠUBC attacks inject through `.via`

    def adv_allow(self, message: Any) -> None:
        """The inner adversary replaces the pending message."""
        if self.halted or self.tag is None:
            return
        self.halted = True
        self._simulator.functionality.adv_allow(self.tag, message)

    def adv_broadcast(self, pid: str, message: Any) -> None:
        """The inner adversary broadcasts on behalf of corrupted ``pid``."""
        self._simulator.functionality.adv_broadcast(pid, message)


class UBCSimulator(Adversary):
    """Run a real-world adversary against the ideal ``FUBC``.

    Install as the session adversary of an *ideal-world* UBC session;
    the ``inner`` adversary receives exactly the leak stream it would
    see from ΠUBC's per-message ``FRBC`` instances.

    Args:
        inner: The real-world adversary to simulate for.
    """

    def __init__(self, inner: Adversary) -> None:
        super().__init__()
        self.inner = inner
        self.functionality: Optional["UnfairBroadcast"] = None
        self._totals: Dict[str, int] = {}
        self._live: Dict[bytes, _RBCInstanceShim] = {}

    def attach(self, session) -> None:
        super().attach(session)
        self.inner.attach(session)

    # Corruption and registration flow through to the inner adversary.

    def on_party_registered(self, party) -> None:
        self.inner.on_party_registered(party)

    def on_corrupted(self, party) -> None:
        self.inner.on_corrupted(party)

    def on_round_advanced(self, new_time: int) -> None:
        self.inner.on_round_advanced(new_time)

    def on_party_activated(self, party) -> None:
        self.inner.on_party_activated(party)

    def _shim_for(self, sender: str, tag: Optional[bytes]) -> _RBCInstanceShim:
        total = self._totals.get(sender, 0) + 1
        self._totals[sender] = total
        fid = f"FRBC:PiUBC:{sender}:{total}"
        shim = _RBCInstanceShim(self, fid=fid, tag=tag, sender=sender)
        if tag is not None:
            self._live[tag] = shim
        return shim

    def on_leak(self, source, detail) -> None:
        super().on_leak(source, detail)
        if self.functionality is None:
            from repro.functionalities.ubc import UnfairBroadcast

            if isinstance(source, UnfairBroadcast):
                self.functionality = source
        if not (isinstance(detail, tuple) and detail):
            return
        if detail[0] == "Broadcast" and len(detail) == 4:
            # FUBC leak of a fresh honest request: fabricate the FRBC
            # instance's broadcast leak for the inner adversary.
            _, tag, message, sender = detail
            shim = self._shim_for(sender, tag)
            self.inner.on_leak(shim, ("Broadcast", message, sender))
        elif detail[0] == "Delivered" and len(detail) == 3:
            # FUBC is delivering: replay as the instance's final leak.
            _, message, sender = detail
            shim = self._find_or_make(sender)
            shim.halted = True
            self.inner.on_leak(shim, ("Broadcast", message, sender))
        elif detail[0] == "Deliver":
            self.inner.on_leak(source, detail)

    def _find_or_make(self, sender: str) -> _RBCInstanceShim:
        for shim in self._live.values():
            if shim.sender == sender and not shim.halted:
                return shim
        return self._shim_for(sender, None)
