"""Command-line front end: run the paper's systems from a shell.

Usage::

    python -m repro.cli sbc       --n 4 --mode composed --messages a b c
    python -m repro.cli beacon    --n 5
    python -m repro.cli election  --voters 5 --candidates yes no
    python -m repro.cli auction   --bids 410 365 298
    python -m repro.cli lineage   --n 4 16 64
    python -m repro.cli bench     --sessions 32 --backend pooled --compare
    python -m repro.cli sweep     --sessions 64 --executor process --workers 4 --verify
    python -m repro.cli material  build --for-sweep 64
    python -m repro.cli sweep     --sessions 64 --material shared --adaptive
    python -m repro.cli sweep     --sessions 64 --workload voting --material shared --online --verify
    python -m repro.cli sweep     --sessions 64 --material disk --online --consume-forward --replenish
    python -m repro.cli material  replenish --nonces 256 --feldman 32
    python -m repro.cli serve     --sessions 256 --duration 30 --online --material disk

Every protocol command accepts ``--backend`` to pick the execution
backend (``sequential`` is the reference engine; ``pooled`` / ``batched``
are the runtime's throughput drivers; ``async`` is the event-driven
engine behind ``serve``).  The top-level ``--arith`` flag selects the
big-integer arithmetic tier (``auto`` picks gmpy2 when installed;
results are identical across tiers, only speed changes), and
``--batch-verify`` on the sweep/bench/scenario/election commands batches
verification rounds through random-linear-combination multi-exps.

The execution knobs on ``bench``/``sweep``/``scenarios run``/``serve``
are one shared flag set (:func:`repro.runtime.config.add_sweep_options`)
feeding one :class:`repro.runtime.config.SweepConfig` — the same object
the Python entry points take via ``config=``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import format_table


def _cmd_sbc(args: argparse.Namespace) -> int:
    from repro.core import build_sbc_stack

    stack = build_sbc_stack(n=args.n, mode=args.mode, seed=args.seed, backend=args.backend)
    messages = args.messages or ["hello", "world"]
    for index, text in enumerate(messages):
        stack.parties[f"P{index % args.n}"].broadcast(text.encode())
    stack.run_until_delivery()
    print(f"mode={args.mode}  n={args.n}  period=[0,{stack.phi})  "
          f"release={stack.phi + stack.delta}")
    for item in stack.delivered()["P0"]:
        print(f"  delivered: {item!r}")
    return 0


def _cmd_beacon(args: argparse.Namespace) -> int:
    from repro.core import build_durs_stack

    stack = build_durs_stack(n=args.n, mode=args.mode, seed=args.seed, backend=args.backend)
    stack.parties["P0"].urs_request()
    stack.run_until_urs()
    urs = stack.urs_values()["P0"]
    print(f"uniform random string ({args.n} contributors): {urs.hex()}")
    return 0


def _cmd_election(args: argparse.Namespace) -> int:
    from repro.core import build_voting_stack
    from repro.crypto.batch import BatchPolicy, batching

    candidates = tuple(args.candidates)
    policy = BatchPolicy() if args.batch_verify else None
    with batching(policy):
        stack = build_voting_stack(
            voters=args.voters, mode=args.mode, seed=args.seed, candidates=candidates,
            phi=max(4, 5 if args.mode == "composed" else 4),
            delta=3 if args.mode == "composed" else 2,
            backend=args.backend,
        )
        if args.mode == "ideal":
            stack.service.init()
        else:
            for authority in stack.authorities.values():
                authority.deal()
            stack.run_rounds(1)
        for index in range(args.voters):
            choice = candidates[index % len(candidates)]
            stack.parties[f"V{index}"].vote(choice)
            print(f"V{index} cast (hidden until the release round)")
        stack.run_until_result()
    print(f"self-tally: {stack.results()['V0']}")
    if policy is not None:
        print("tally verification: batched (one RLC multi-exp per voter view)")
    return 0


def _cmd_auction(args: argparse.Namespace) -> int:
    from repro.core import build_sbc_stack

    bids = args.bids or [410, 365, 298]
    stack = build_sbc_stack(n=len(bids) + 1, mode=args.mode, seed=args.seed, backend=args.backend)
    for index, amount in enumerate(bids):
        stack.parties[f"P{index}"].broadcast(f"bid:P{index}:{amount:06d}".encode())
    stack.run_until_delivery()
    batch = stack.delivered()["P0"]
    best = max(
        (int(b.decode().split(":")[2]), b.decode().split(":")[1])
        for b in batch
        if isinstance(b, bytes)
    )
    print(f"sealed bids revealed simultaneously at round {stack.phi + stack.delta}:")
    for item in batch:
        print(f"  {item.decode()}")
    print(f"winner: {best[1]} at {best[0]}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.runtime import SessionPool, SweepConfig, sequential_loop

    if args.sessions < 1:
        print("--sessions must be >= 1 (an empty sweep has nothing to report)",
              file=sys.stderr)
        return 2
    params = dict(
        n=args.n, mode=args.mode, phi=args.phi, delta=args.delta, senders=args.senders
    )
    try:
        config = SweepConfig.from_args(args, backend=args.backend)
        pool = SessionPool(config=config, **params)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    seeds = list(range(args.seed, args.seed + args.sessions))
    report = pool.run(seeds)
    rows = [report.summary()]
    if args.compare:
        if args.batch_verify:
            # The baseline must batch too, or the verify.batch trace
            # events would make the digest comparison meaningless.
            from repro.crypto.batch import BatchPolicy

            params = dict(params, batch=BatchPolicy())
        baseline = sequential_loop(seeds, **params)
        rows.append(baseline.summary())
        speedup = baseline.wall_time_s / report.wall_time_s
    print(format_table(rows, title=f"SessionPool: {args.sessions} x SBC ({args.mode})"))
    per_session = report.wall_time_s / max(report.sessions, 1)
    print(f"per-session: {per_session * 1000:.2f} ms")
    if args.compare:
        print(f"speedup vs sequential loop: {speedup:.2f}x")
        if args.online:
            # Online runs spend pools, so their digests are pinned apart
            # from the per-call baseline by design; an equality check
            # here would always "fail" without meaning anything.
            print("trace digests: not compared (online runs are "
                  "digest-pinned separately from per-call runs; use "
                  "'repro sweep --online --verify' instead)")
        elif args.trace == "full":
            from repro.runtime import reports_match

            matched = reports_match(report, baseline)
            print(f"trace digests match sequential reference: "
                  f"{'yes' if matched else 'NO'}")
            if not matched:
                return 1
        else:
            # A trace-off sweep has no digests; saying nothing would look
            # like a vacuous pass (see runtime.pool.compare_trace_digests).
            print("trace digests: not compared (sweep ran trace-off; "
                  "use --trace full to verify determinism)")
    return 0


def _format_adaptivity(trace) -> str:
    """One line per re-planning wave for the text front end."""
    return "\n".join(
        f"  wave {entry['wave']}: {entry['tasks']} tasks @ chunksize "
        f"{entry['chunksize']} (ewma {entry['ewma_task_s'] * 1000:.2f} ms/task)"
        for entry in trace
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.runtime import ParallelSweep

    if args.sessions < 1:
        print("--sessions must be >= 1 (an empty sweep has nothing to report)",
              file=sys.stderr)
        return 2
    if args.workload == "voting":
        from repro.runtime import run_voting_trial

        runner = run_voting_trial
        params = dict(voters=args.n, mode=args.mode)
    else:
        from repro.runtime import run_sbc_trial

        runner = run_sbc_trial
        params = dict(
            n=args.n, mode=args.mode, phi=args.phi, delta=args.delta,
            senders=args.senders,
        )
    trace = args.trace
    if args.verify and trace != "full":
        if not args.json:
            print("--verify compares trace digests: forcing --trace full")
        trace = "full"
    try:
        from repro.runtime import SweepConfig

        config = SweepConfig.from_args(args, backend=args.backend, trace=trace)
        sweep = ParallelSweep(runner=runner, config=config, **params)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    watch = None
    if args.replenish:
        if not args.online:
            print("--replenish watches the online spend ledger; it needs "
                  "--online", file=sys.stderr)
            return 2
        from repro.runtime import Replenisher

        watch = Replenisher().watch()
    seeds = list(range(args.seed, args.seed + args.sessions))
    plan = sweep.plan(len(seeds))
    if not args.json:
        print(format_table(
            [plan.summary()],
            title=f"sweep plan: {args.sessions} x {args.workload} ({args.mode})",
        ))
    try:
        try:
            if args.verify:
                verdict = sweep.verify(seeds)
            else:
                report = sweep.run(seeds)
        except (FileNotFoundError, ValueError) as exc:
            # A missing/mismatched resume journal is an operator error,
            # not a crash: report it the same way bad flags are.
            print(str(exc), file=sys.stderr)
            return 2
    finally:
        if watch is not None:
            watch.stop()
            if not args.json:
                done = watch.replenisher.replenishments
                for record in done:
                    print(f"replenished ({record['mode']}): "
                          f"+{record['nonces_added']} nonces "
                          f"+{record['feldman_added']} feldman -> pools "
                          f"{record['pool_nonces']}/{record['pool_feldman']}")
                if not done:
                    print("replenisher: no watermark crossed")
    if args.verify:
        plan_summary = plan.summary(adaptivity=verdict.report.adaptivity)
        if args.json:
            print(json.dumps(
                {
                    "plan": plan_summary,
                    "report": verdict.report.summary(),
                    "reference": verdict.reference.summary(),
                    "speedup_vs_inline": round(verdict.speedup, 4),
                    "digests_match": verdict.matched,
                    "replenishments": (
                        watch.replenisher.replenishments if watch else None
                    ),
                },
                indent=2,
            ))
        else:
            print(format_table(
                [verdict.report.summary(), verdict.reference.summary()],
                title="sweep vs inline reference",
            ))
            if verdict.report.adaptivity:
                print("adaptivity trace:")
                print(_format_adaptivity(verdict.report.adaptivity))
            print(f"speedup vs inline: {verdict.speedup:.2f}x")
            print(f"trace digests match inline reference, seed for seed: "
                  f"{'yes' if verdict.matched else 'NO'}")
        return 0 if verdict.matched else 1
    if args.json:
        print(json.dumps(
            {
                "plan": plan.summary(adaptivity=report.adaptivity),
                "report": report.summary(),
                "replenishments": (
                    watch.replenisher.replenishments if watch else None
                ),
            },
            indent=2,
        ))
        return 0
    print(format_table([report.summary()], title="sweep"))
    if report.adaptivity:
        print("adaptivity trace:")
        print(_format_adaptivity(report.adaptivity))
    print(f"per-session: {report.wall_time_s / max(report.sessions, 1) * 1000:.2f} ms")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.runtime import (
        AsyncSessionHost,
        SweepConfig,
        async_sbc_session,
        async_voting_session,
        online_ranges_disjoint,
        run_sbc_trial,
        run_voting_trial,
    )

    if args.sessions < 1:
        print("--sessions must be >= 1 (a host with no sessions has nothing "
              "to report)", file=sys.stderr)
        return 2
    try:
        config = SweepConfig.from_args(args, backend=args.backend)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    # Inline hosting interleaves coroutine sessions on the loop; the
    # executor modes offload the picklable synchronous trial runners.
    if args.workload == "voting":
        runner = async_voting_session if config.executor == "inline" else run_voting_trial
        params = dict(voters=args.n, mode=args.mode)
    else:
        runner = async_sbc_session if config.executor == "inline" else run_sbc_trial
        params = dict(n=args.n, mode=args.mode)
    try:
        host = AsyncSessionHost(
            runner,
            config=config,
            session_timeout_s=args.session_timeout_s,
            **params,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    seeds = list(range(args.seed, args.seed + args.sessions))
    report = host.run(seeds, duration_s=args.duration)
    if not report.results:
        print("the host admitted no sessions before --duration elapsed",
              file=sys.stderr)
        return 2
    disjoint = True
    spends = 0
    if config.online:
        disjoint, spends = online_ranges_disjoint(report.results)
    if args.json:
        record = report.summary()
        if config.online:
            record["spends_checked"] = spends
            record["spends_disjoint"] = disjoint
        print(json.dumps(record, indent=2))
    else:
        print(format_table(
            [report.summary()],
            title=f"serve: {report.sessions} x {args.workload} ({args.mode})",
        ))
        print(f"sessions/sec: {report.sessions_per_s:.1f}  "
              f"(completed out of submission order: {report.interleaved})")
        if config.online:
            print(f"online spends checked: {spends}  disjoint: "
                  f"{'yes' if disjoint else 'NO'}")
    return 0 if disjoint else 1


def _scenario_specs(args: argparse.Namespace):
    from repro.scenarios import default_matrix, extra_scenarios

    specs = default_matrix(seed=args.seed).expand() + extra_scenarios(seed=args.seed)
    if args.backend:
        specs = [spec for spec in specs if spec.backend == args.backend]
    if args.cell:
        specs = [spec for spec in specs if args.cell in spec.cell_id]
    return specs


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import run_matrix

    specs = _scenario_specs(args)
    if not specs:
        print("no scenarios match the given filters", file=sys.stderr)
        return 2

    if args.action == "list":
        if args.json:
            print(json.dumps(
                [
                    {
                        "cell": spec.cell_id,
                        "stack": spec.stack,
                        "adversary": spec.adversary,
                        "fault": spec.faults.name,
                        "backend": spec.backend,
                        "expect": spec.expectations(),
                    }
                    for spec in specs
                ],
                indent=2,
            ))
        else:
            rows = [
                {
                    "cell": spec.cell_id,
                    "expected properties": " ".join(
                        f"{name}={'T' if must else 'F'}"
                        for name, must in spec.expect
                    ),
                }
                for spec in specs
            ]
            print(format_table(rows, title=f"{len(specs)} scenario cells"))
        return 0

    try:
        from repro.runtime import SweepConfig

        # The matrix's --backend flag filters *cells*; each cell pins its
        # own execution backend, so the pool-level backend stays at the
        # default (run_matrix forces it to sequential regardless).
        config = SweepConfig.from_args(args, backend="sequential")
        report = run_matrix(specs, config=config)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    mismatches = report.backend_mismatches()
    if args.json:
        print(json.dumps(
            {
                "summary": report.summary(),
                "backend_mismatches": mismatches,
                "cells": [cell.summary() for cell in report.cells],
            },
            indent=2,
        ))
    else:
        rows = []
        for cell in report.cells:
            failed = " ".join(
                f"{p.name}({p.holds}!={p.expected})" for p in cell.mismatches
            )
            rows.append(
                {
                    "cell": cell.cell_id,
                    "rounds": cell.rounds,
                    "ok": "yes" if cell.ok else "NO",
                    "mismatched": failed or "-",
                }
            )
        print(format_table(
            rows,
            title=f"scenario matrix: {len(report.cells)} cells "
            f"({report.wall_time_s:.2f}s, {args.executor})",
        ))
        summary = report.summary()
        print(f"ok {summary['ok']}/{summary['cells']}  "
              f"backend digest mismatches: {len(mismatches)}")
        for line in mismatches:
            print(f"  digest mismatch: {line}")
    return 0 if report.ok and not mismatches else 1


def _cmd_material(args: argparse.Namespace) -> int:
    import json

    from repro.runtime import MaterialStore

    store = MaterialStore(args.dir)
    if args.action == "build":
        nonces, feldman = args.nonces, args.feldman
        if args.for_sweep is not None:
            # Size the pools from the sweep's resolved plan so an online
            # run of that many tasks never falls back to sampling.
            from repro.runtime import ParallelSweep, online_pool_requirement

            if args.for_sweep < 1:
                print("--for-sweep must be >= 1", file=sys.stderr)
                return 2
            plan = ParallelSweep().plan(args.for_sweep)
            required = online_pool_requirement(plan.tasks)
            nonces = max(nonces, required["nonces"])
            feldman = max(feldman, required["feldman"])
            print(f"sized for a {plan.tasks}-task online sweep: "
                  f"{nonces} nonces, {feldman} feldman entries")
        built = store.build(
            nonces=nonces,
            feldman=feldman,
            feldman_threshold=args.threshold,
            seed=args.seed,
        )
        rows = [material.summary() for material in built]
        print(format_table(rows, title=f"built {len(rows)} material sets -> {store.root}"))
        return 0
    if args.action == "replenish":
        # One-shot inline run of the replenisher: grow (or compact) the
        # pools of every default parameter set with a cached blob.  The
        # extend-vs-rebuild decision is the Replenisher's — extension
        # preserves the fingerprint lineage and the spend ledger.
        from repro.runtime import Replenisher
        from repro.runtime.material import default_groups

        rows = []
        for group in default_groups():
            replenisher = Replenisher(group=group, store=store)
            record = replenisher.replenish(
                nonces=args.nonces, feldman=args.feldman
            )
            if record is not None:
                rows.append(record)
        if args.json:
            print(json.dumps(rows, indent=2))
        elif not rows:
            print(f"preprocessing store at {store.root} holds nothing to "
                  "replenish (run 'repro material build')")
        else:
            print(format_table(
                rows, title=f"replenished {len(rows)} material set(s)"
            ))
        return 0 if rows else 2
    if args.action == "inspect":
        records = store.inspect()
        if args.json:
            print(json.dumps(records, indent=2))
        elif not records:
            print(f"preprocessing store at {store.root} is empty "
                  "(run 'repro material build')")
        else:
            print(format_table(records, title=f"preprocessing store: {store.root}"))
        bad = [record for record in records if not record.get("ok")]
        if bad:
            # Integrity failures must be loud *and* machine-visible: a
            # fleet provisioning script keying on the exit code should
            # never ship a corrupt or misnamed blob to its workers.
            for record in bad:
                print(f"INTEGRITY: {record['file']}: {record.get('error')}",
                      file=sys.stderr)
            return 1
        return 0
    removed = store.clear()
    print(f"removed {removed} material file(s) from {store.root}")
    return 0


def _cmd_lineage(args: argparse.Namespace) -> int:
    from repro.baselines.rounds_models import complexity_table

    rows = complexity_table(args.n)
    print(format_table(rows, title="SBC lineage (rounds/messages/tolerance)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UC simultaneous broadcast against a dishonest majority",
    )
    parser.add_argument(
        "--arith", choices=("auto", "gmpy2", "python"), default=None,
        help="big-integer arithmetic tier: 'gmpy2' requires the optional "
             "native extra, 'python' forces the stdlib fallback, 'auto' "
             "(the default) picks gmpy2 when importable; every tier "
             "produces identical values and trace digests",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, modes=("ideal", "hybrid", "composed")) -> None:
        from repro.runtime import available_backends

        p.add_argument("--mode", choices=modes, default="hybrid")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--backend",
            choices=sorted(available_backends()),
            default="sequential",
            help="execution backend (sequential = reference engine)",
        )

    p = sub.add_parser("sbc", help="run a simultaneous-broadcast session")
    common(p)
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--messages", nargs="*", default=None)
    p.set_defaults(func=_cmd_sbc)

    p = sub.add_parser("beacon", help="generate a delayed uniform random string")
    common(p)
    p.add_argument("--n", type=int, default=4)
    p.set_defaults(func=_cmd_beacon)

    p = sub.add_parser("election", help="run a self-tallying election")
    common(p)
    p.add_argument("--voters", type=int, default=3)
    p.add_argument("--candidates", nargs="+", default=["yes", "no"])
    p.add_argument(
        "--batch-verify", action="store_true",
        help="verify the tally round's certificates and ballot proofs as "
             "one random-linear-combination batch per voter view",
    )
    p.set_defaults(func=_cmd_election)

    p = sub.add_parser("auction", help="run a sealed-bid auction over SBC")
    common(p)
    p.add_argument("--bids", nargs="*", type=int, default=None)
    p.set_defaults(func=_cmd_auction)

    # One shared execution-flag block (the SweepConfig knob set) for
    # bench/sweep/scenarios run/serve — defined once in runtime.config so
    # the subcommands cannot drift apart again.
    from repro.runtime.config import add_sweep_options

    p = sub.add_parser("bench", help="run a pooled SBC session sweep")
    common(p)
    p.add_argument("--sessions", type=int, default=32, help="number of independent sessions")
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--phi", type=int, default=5)
    p.add_argument("--delta", type=int, default=3)
    p.add_argument("--senders", type=int, default=2)
    add_sweep_options(p, executor_default="inline", trace_default="light")
    p.add_argument(
        "--compare", action="store_true",
        help="also run the sequential reference loop and print the speedup",
    )
    p.set_defaults(func=_cmd_bench, backend="pooled")

    p = sub.add_parser(
        "sweep",
        help="multi-core SBC session sweep (chunked process fan-out)",
    )
    common(p)
    p.add_argument("--sessions", type=int, default=64, help="number of independent sessions")
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--phi", type=int, default=5)
    p.add_argument("--delta", type=int, default=3)
    p.add_argument("--senders", type=int, default=2)
    p.add_argument(
        "--workload", choices=("sbc", "voting"), default="sbc",
        help="trial workload: SBC sessions, or self-tallying elections "
             "(each ballot burns a real Σ-protocol nonce — the workload "
             "that visibly spends pools under --online)",
    )
    add_sweep_options(p, executor_default="process", trace_default="light")
    p.add_argument(
        "--verify", action="store_true",
        help="also run the inline reference and require seed-for-seed "
             "digest equality (exit 1 on divergence)",
    )
    p.add_argument(
        "--replenish", action="store_true",
        help="run a background replenisher during the sweep: it watches "
             "the spend ledger and extends the pools when remaining "
             "capacity drops below the burn-rate watermark (requires "
             "--online)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the resolved plan (with adaptivity trace) and report "
             "as JSON instead of tables",
    )
    p.set_defaults(func=_cmd_sweep, backend="pooled")

    p = sub.add_parser(
        "serve",
        help="service mode: host N concurrent sessions on one asyncio "
             "loop (the event-driven `async` backend)",
    )
    common(p)
    p.add_argument("--sessions", type=int, default=64,
                   help="number of concurrent sessions to host")
    p.add_argument("--n", type=int, default=3,
                   help="parties (sbc) or voters (voting) per session")
    p.add_argument(
        "--workload", choices=("voting", "sbc"), default="voting",
        help="per-session workload (voting burns real Σ-protocol nonces, "
             "the workload that visibly spends pools under --online)",
    )
    p.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="admission budget: stop starting new sessions once this "
             "much wall time has elapsed (admitted sessions finish)",
    )
    p.add_argument(
        "--session-timeout-s", type=float, default=600.0,
        help="wall-clock bound on one executor-offloaded session",
    )
    add_sweep_options(p, executor_default="inline", trace_default="light")
    p.add_argument("--json", action="store_true",
                   help="emit the host report as JSON")
    p.set_defaults(func=_cmd_serve, backend="async")

    p = sub.add_parser(
        "material",
        help="manage the preprocessing store (offline crypto material)",
    )
    p.add_argument("action", choices=("build", "inspect", "clear", "replenish"))
    p.add_argument(
        "--dir", default=None,
        help="store directory (default: $REPRO_MATERIAL_DIR or "
             "~/.cache/repro-material)",
    )
    p.add_argument("--nonces", type=int, default=128,
                   help="Schnorr nonce pairs (k, g^k) per parameter set "
                        "(for 'replenish': how many to append)")
    p.add_argument("--feldman", type=int, default=16,
                   help="Feldman-committed random polynomials per set "
                        "(for 'replenish': how many to append)")
    p.add_argument("--for-sweep", type=int, default=None, metavar="SESSIONS",
                   help="size the pools for an online sweep of this many "
                        "tasks (raises --nonces/--feldman to the sweep "
                        "plan's requirement)")
    p.add_argument("--threshold", type=int, default=2,
                   help="degree t of the preprocessed Feldman polynomials")
    p.add_argument("--seed", type=int, default=0,
                   help="offline-phase seed (recorded in the material)")
    p.add_argument("--json", action="store_true",
                   help="emit inspect records as JSON")
    p.set_defaults(func=_cmd_material)

    p = sub.add_parser(
        "scenarios",
        help="list or run the adversarial scenario conformance matrix",
    )
    p.add_argument("action", choices=("list", "run"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--backend", default=None,
        help="restrict cells to one execution backend (default: all axes)",
    )
    p.add_argument(
        "--cell", default=None, metavar="SUBSTR",
        help="restrict to cells whose id contains SUBSTR (e.g. 'sbc-composed/')",
    )
    add_sweep_options(p, executor_default="inline", trace_default=None)
    p.add_argument("--json", action="store_true", help="emit JSON records")
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser("lineage", help="print the SBC lineage comparison table")
    p.add_argument("--n", nargs="+", type=int, default=[4, 16, 64])
    p.set_defaults(func=_cmd_lineage)

    # `repro lint` is normally short-circuited in main() before this
    # parser exists (the lint path must not import the crypto/runtime
    # stack); this stub keeps it in --help and covers invocations that
    # put global flags first (`repro --arith python lint ...`).
    p = sub.add_parser(
        "lint",
        help="AST invariant linter (RPR001-RPR007); exits non-zero on findings",
    )
    p.add_argument("args", nargs=argparse.REMAINDER,
                   help="arguments forwarded to the linter (see `repro lint --help`)")
    p.set_defaults(func=_cmd_lint)

    return parser


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint.cli import main as lint_main

    return lint_main(args.args)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    raw = list(sys.argv[1:]) if argv is None else list(argv)
    if raw[:1] == ["lint"]:
        # Dispatch before build_parser(): the linter must run on a
        # minimal install, and building the full parser imports the
        # runtime stack for backend/executor choices.
        from repro.analysis.lint.cli import main as lint_main

        return lint_main(raw[1:])
    parser = build_parser()
    argv = raw
    args = parser.parse_args(argv)
    if args.arith is not None:
        from repro.crypto.groups import set_arith_backend

        try:
            set_arith_backend(args.arith)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
