"""Unfair broadcast realized by Dolev–Strong runs (FRBC made concrete).

``ΠUBC`` (Figure 9) composes per-message ``FRBC`` instances; Fact 1 says
each instance is realizable by Dolev–Strong over ``Fcert``.  This module
performs that last substitution: every broadcast request starts a
Dolev–Strong run among all parties over authenticated point-to-point
channels, so the resulting :class:`DolevStrongUBCAdapter` is an unfair
broadcast whose agreement rests on *signatures*, not on an ideal box.

The price is latency: a run with corruption bound ``t`` delivers after
``t + 1`` relay rounds instead of within the sender's round.  Protocols
above must budget for it — ΠSBC over this layer needs its release delay
``Δ`` to exceed the Dolev–Strong latency so that ciphertext broadcasts
started before ``t_end`` still land before ``τ_rel`` (exercised in
``tests/test_ds_ubc.py`` and the E1b ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from repro.functionalities.certification import Certification
from repro.functionalities.network import SyncNetwork
from repro.uc.encoding import encode
from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


@dataclass
class _Run:
    """One Dolev–Strong broadcast run (all parties' per-run state)."""

    run_id: int
    sender: str
    start_time: int
    t: int
    # per party: values accepted so far (list to preserve order, max 2)
    accepted: Dict[str, List[Any]] = field(default_factory=dict)
    delivered: set = field(default_factory=set)
    decided: bool = False


class DolevStrongUBCAdapter(Functionality):
    """ΠUBC with each FRBC instance realized by Dolev–Strong.

    Drop-in for :class:`~repro.functionalities.ubc.UnfairBroadcast`
    (modulo latency).  Unfairness is faithful: the initial signed sends
    traverse the rushing network, so the adversary sees each message the
    round it is sent and a corrupted sender's key signs whatever the
    adversary likes.

    Args:
        session: Owning session.
        pids: The fixed party set of the broadcast network.
        t: Corruption bound (runs last ``t + 1`` relay rounds).
    """

    def __init__(
        self,
        session: "Session",
        pids: List[str],
        t: int,
        fid: str = "DSUBC",
    ) -> None:
        super().__init__(session, fid)
        self.pids = list(pids)
        self.t = t
        self.latency = t + 2  # t+1 relays + the decision round
        self.network = SyncNetwork(session, fid=f"Net:{fid}")
        self.certs = {
            pid: Certification(session, signer=pid, fid=f"Fcert:{fid}:{pid}")
            for pid in pids
        }
        self._runs: Dict[int, _Run] = {}
        self._next_run = 0
        self._inboxes: Dict[str, List[Tuple[int, Any, tuple]]] = {}
        self._outboxes: Dict[str, List[Tuple[int, Any, tuple]]] = {}
        self._ticked: Dict[str, int] = {}

    # -- wiring -------------------------------------------------------------

    def attach(self, party: Party) -> None:
        """Route the network to this adapter and join the clock chain."""
        party.route[self.network.fid] = lambda message, source: self._on_net(
            party, message
        )
        if self not in party.clock_recipients:
            party.clock_recipients.append(self)

    # -- broadcast interface ----------------------------------------------------

    def broadcast(self, party: Party, message: Any) -> None:
        """Start a Dolev–Strong run with ``party`` as sender."""
        if party.corrupted:
            raise ValueError("honest interface used by corrupted party")
        self._start_run(party.pid, message)

    def adv_broadcast(self, pid: str, message: Any) -> None:
        """Corrupted sender: the adversary signs and starts a run."""
        self.require_corrupted(pid)
        self._start_run(pid, message)

    def _start_run(self, sender: str, message: Any) -> None:
        run = _Run(
            run_id=self._next_run, sender=sender, start_time=self.time, t=self.t
        )
        self._next_run += 1
        self._runs[run.run_id] = run
        signature = self.certs[sender].sign(
            sender, self._payload(run.run_id, sender, message)
        )
        run.accepted.setdefault(sender, []).append(message)
        self._outboxes.setdefault(sender, []).append(
            (run.run_id, message, ((sender, signature),))
        )
        # The initial sends leave immediately (rushing adversary sees them
        # via the network's metadata leak; content leaks on delivery to
        # corrupted parties).
        self._flush_outbox(sender)

    def _payload(self, run_id: int, sender: str, message: Any) -> bytes:
        return encode(("DS-UBC", self.fid, run_id, sender, message))

    # -- network delivery ------------------------------------------------------------

    def _on_net(self, party: Party, message: Any) -> None:
        kind, payload, _wire_sender = message
        if kind != "P2P":
            return
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return
        run_id, value, chain = payload
        if run_id not in self._runs:
            return
        self._inboxes.setdefault(party.pid, []).append((run_id, value, tuple(chain)))

    # -- round work --------------------------------------------------------------------

    def on_party_tick(self, party: Party) -> None:
        now = self.time
        if self._ticked.get(party.pid) == now:
            return
        self._ticked[party.pid] = now
        self._process_inbox(party.pid, now)
        self._flush_outbox(party.pid)
        self._decide_due_runs(party, now)

    def _process_inbox(self, pid: str, now: int) -> None:
        inbox = self._inboxes.pop(pid, [])
        for run_id, value, chain in inbox:
            run = self._runs.get(run_id)
            if run is None or run.decided:
                continue
            k = now - run.start_time
            accepted = run.accepted.setdefault(pid, [])
            if len(accepted) >= 2 or value in accepted:
                continue
            if not self._valid_chain(run, value, chain, minimum=k):
                continue
            accepted.append(value)
            if k <= run.t and not self.session.is_corrupted(pid):
                signature = self.certs[pid].sign(
                    pid, self._payload(run.run_id, run.sender, value)
                )
                self._outboxes.setdefault(pid, []).append(
                    (run_id, value, chain + ((pid, signature),))
                )

    def _valid_chain(self, run: _Run, value: Any, chain: tuple, minimum: int) -> bool:
        if len(chain) < max(1, minimum):
            return False
        signers = [pid for pid, _sig in chain]
        if signers[0] != run.sender or len(set(signers)) != len(signers):
            return False
        payload = self._payload(run.run_id, run.sender, value)
        return all(
            pid in self.certs and self.certs[pid].verify(payload, signature)
            for pid, signature in chain
        )

    def _flush_outbox(self, pid: str) -> None:
        outbox = self._outboxes.pop(pid, [])
        party = self.session.parties.get(pid)
        for item in outbox:
            for recipient in self.pids:
                if party is not None and not party.corrupted:
                    self.network.send(party, recipient, item)
                else:
                    self.network.adv_send(pid, recipient, item)

    def _decide_due_runs(self, party: Party, now: int) -> None:
        for run in self._runs.values():
            if now - run.start_time < run.t + 1:
                continue
            if party.pid in run.delivered:
                continue
            run.delivered.add(party.pid)
            accepted = run.accepted.get(party.pid, [])
            if len(accepted) == 1:
                self.deliver(party, ("Broadcast", accepted[0], run.sender))
