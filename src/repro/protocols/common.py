"""Shared helpers for protocol machines: message padding and XOR masking.

The equivocation trick (ΠFBC step 4, ΠSBC step 2(b), both after [Nie02])
transmits ``y = M ⊕ η`` where ``η`` is a random-oracle response.  That
requires messages serialized to a *fixed* length matching the oracle's
range, so protocol instances fix a wire size ``msg_len`` and pad.
"""

from __future__ import annotations

from typing import Any

from repro.uc.encoding import decode, encode

#: Default fixed wire size for masked messages (bytes).
DEFAULT_MSG_LEN = 192


class MessageTooLong(ValueError):
    """An input message does not fit the protocol's fixed wire size."""


def pad_message(message: Any, size: int) -> bytes:
    """Canonically encode ``message`` and zero-pad to exactly ``size`` bytes.

    Raises:
        MessageTooLong: if the encoding exceeds ``size - 4``.
    """
    raw = encode(message)
    if len(raw) > size - 4:
        raise MessageTooLong(
            f"encoded message is {len(raw)} bytes; wire size allows {size - 4}"
        )
    return len(raw).to_bytes(4, "big") + raw + b"\x00" * (size - 4 - len(raw))


def unpad_message(padded: bytes) -> Any:
    """Inverse of :func:`pad_message`.

    Raises:
        ValueError: on malformed padding or encoding (garbage after an
            equivocation mismatch decodes to an error, not a wrong value).
    """
    if len(padded) < 4:
        raise ValueError("padded message too short")
    length = int.from_bytes(padded[:4], "big")
    if length > len(padded) - 4:
        raise ValueError("padding length field out of range")
    return decode(padded[4 : 4 + length])
