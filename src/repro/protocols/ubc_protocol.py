"""ΠUBC — unfair broadcast over ``FRBC`` instances (Figure 9, Lemma 1).

Every ``Broadcast`` input spawns a fresh single-shot ``FRBC`` instance
with the requesting party as its sender (the figure's
``F^{P,total_P}_RBC``); the sender's ``Advance_Clock`` drives each of its
instances to deliver.  Agreement is inherited per-message from ``FRBC``;
unfairness is inherited too — the adversary sees each message at request
time and may replace it by corrupting the sender before its tick.

Implementation note: the per-party ΠUBC code of Figure 9 holds no state
beyond counters and its live ``FRBC`` instances, so we fold all parties'
ΠUBC machines into one :class:`UBCProtocolAdapter` object exposing the
same interface as the ideal :class:`~repro.functionalities.ubc.
UnfairBroadcast`.  Protocols above UBC run unchanged against either —
that interchangeability *is* Lemma 1, exercised by the tests in
``tests/test_ubc.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

from repro.functionalities.rbc import RelaxedBroadcast
from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


class UBCProtocolAdapter(Functionality):
    """ΠUBC: drop-in replacement for the ideal ``FUBC``.

    The adapter dynamically creates one :class:`RelaxedBroadcast` per
    broadcast request.  Instances leak and deliver exactly as ``FRBC``
    does, so the adversarial surface (observe-then-corrupt-then-replace)
    is the real protocol's.
    """

    def __init__(self, session: "Session", fid: str = "PiUBC") -> None:
        super().__init__(session, fid)
        #: total_P counters of Figure 9.
        self._totals: Dict[str, int] = {}
        #: live (unhalted) FRBC instances per sender.
        self._instances: Dict[str, List[RelaxedBroadcast]] = {}

    # -- honest interface ---------------------------------------------------

    def broadcast(self, party: Party, message: Any) -> bytes:
        """``Broadcast`` input: spawn F^{P,total}_RBC and hand it the message."""
        if party.corrupted:
            raise ValueError("honest interface used by corrupted party")
        total = self._totals.get(party.pid, 0) + 1
        self._totals[party.pid] = total
        instance = RelaxedBroadcast(
            self.session, fid=f"FRBC:{self.fid}:{party.pid}:{total}", via=self
        )
        self._instances.setdefault(party.pid, []).append(instance)
        instance.broadcast(party, message)
        return instance.fid.encode()

    # -- adversarial interface ------------------------------------------------

    def adv_broadcast(self, pid: str, message: Any) -> None:
        """Broadcast on behalf of corrupted ``pid`` (immediate delivery)."""
        self.require_corrupted(pid)
        total = self._totals.get(pid, 0) + 1
        self._totals[pid] = total
        instance = RelaxedBroadcast(
            self.session, fid=f"FRBC:{self.fid}:{pid}:{total}", via=self
        )
        instance.adv_broadcast(pid, message)

    def adv_allow(self, tag: bytes, message: Any) -> None:
        """Replace a pending message (the sender must now be corrupted).

        ``tag`` is the instance handle returned by :meth:`broadcast`
        (leaked to the adversary via the instance's broadcast leak).
        """
        fid = tag.decode()
        for instances in self._instances.values():
            for instance in instances:
                if instance.fid == fid:
                    instance.adv_allow(message)
                    return

    def pending_of(self, pid: str) -> List[Any]:
        """Messages not yet delivered for sender ``pid`` (test helper)."""
        return [
            instance.output
            for instance in self._instances.get(pid, [])
            if not instance.halted
        ]

    # -- clock ------------------------------------------------------------------

    def on_party_tick(self, party: Party) -> None:
        """The sender's tick drives each of its live instances to deliver."""
        instances = self._instances.get(party.pid, [])
        for instance in list(instances):
            instance.on_party_tick(party)
        self._instances[party.pid] = [
            instance for instance in instances if not instance.halted
        ]
