"""ΠDURS — delayed uniform random string over SBC (Figure 16, Theorem 3).

Each party contributes a uniform λ-bit string via simultaneous broadcast;
the URS is the XOR of all valid contributions.  Simultaneity is exactly
what makes the output *unbiased*: no contributor (not even one corrupted
adaptively, not even a full dishonest majority) learns anything about the
other contributions before its own is locked in, so the XOR is uniform as
long as a single honest party participates.  The session is started by a
``Wake_Up`` broadcast in RBC manner from the first party asked for
randomness.

Theorem 3: over ``F^{Φ,∆−Φ,α}_SBC`` this realizes ``F^{∆,α}_DURS`` for
``∆ > Φ > 0`` and ``∆ − Φ ≥ α``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence

from repro.crypto.hashing import xor_bytes
from repro.functionalities.durs import URS_LEN
from repro.functionalities.rbc import RelaxedBroadcast
from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session

WAKE_UP = "Wake_Up"


class DURSParty(Party):
    """One party of ΠDURS.

    Args:
        session: Owning session.
        pid: Party identifier.
        sbc: SBC service with period Φ and delay ∆ − Φ (ideal
            ``SimultaneousBroadcast`` or ΠSBC adapter).
        rbc_instances: pid -> single-shot ``FRBC`` instance of that party
            (used only for the initial ``Wake_Up``).
    """

    def __init__(
        self,
        session: "Session",
        pid: str,
        sbc: Functionality,
        rbc_instances: Dict[str, RelaxedBroadcast],
    ) -> None:
        super().__init__(session, pid)
        self.sbc = sbc
        self.rbc_instances = rbc_instances
        self.urs: Optional[bytes] = None
        self.waiting = False  # f^P_wait
        self.awake = False  # f^P_awake

        if hasattr(sbc, "attach"):
            sbc.attach(self)
        self.route[sbc.fid] = self._on_sbc
        for instance in rbc_instances.values():
            self.route[instance.fid] = self._on_rbc
        # Own RBC instance is driven by this party's ticks; the SBC layer
        # follows, per Figure 16's Advance_Clock clause.
        self.clock_recipients.append(rbc_instances[pid])
        if sbc not in self.clock_recipients:
            self.clock_recipients.append(sbc)

    # -- environment input ----------------------------------------------------

    def urs_request(self) -> Optional[bytes]:
        """``URS`` input from Z; answers immediately once the URS is known."""
        if self.urs is not None:
            self.output(("URS", self.urs))
            return self.urs
        self.waiting = True
        if not self.awake:
            own = self.rbc_instances[self.pid]
            own.broadcast(self, WAKE_UP)
        return None

    # -- deliveries ----------------------------------------------------------------

    def _on_rbc(self, message: Any, source: Functionality) -> None:
        kind, payload, sender = message
        if kind != "Broadcast" or payload != WAKE_UP:
            return
        if self.awake or sender not in self.rbc_instances:
            return
        self.awake = True
        contribution = self.session.random_bytes(URS_LEN)
        self.record("contribute", contribution.hex()[:8])
        if self.corrupted:
            self.sbc.adv_broadcast(self.pid, contribution)
        else:
            self.sbc.broadcast(self, contribution)

    def _on_sbc(self, message: Any, source: Functionality) -> None:
        kind, contributions = message
        if kind != "Broadcast" or self.urs is not None:
            return
        urs = bytes(URS_LEN)
        for value in contributions:
            if isinstance(value, bytes) and len(value) == URS_LEN:
                urs = xor_bytes(urs, value)
        self.urs = urs
        if self.waiting:
            self.output(("URS", self.urs))


def make_durs_network(
    session: "Session",
    pids: Sequence[str],
    sbc: Functionality,
) -> Dict[str, DURSParty]:
    """Wire a complete ΠDURS network over ``sbc``; returns pid -> party."""
    rbc_instances = {
        pid: RelaxedBroadcast(session, fid=f"FRBC:durs:{pid}") for pid in pids
    }
    return {
        pid: DURSParty(session, pid, sbc=sbc, rbc_instances=rbc_instances)
        for pid in pids
    }
