"""ΠSTVS — self-tallying voting over SBC (Figure 18, Theorem 4).

[SP15]'s boardroom voting with the bulletin board replaced by our SBC
channel, which removes the trusted "control voter": *fairness* (no partial
tally before the end of casting) now comes from simultaneity instead of a
trusted party casting last.

Roles:

* **Authorities** ``A_j`` deal each voter ``V_i`` a share ``x_{i,j}`` of a
  secret exponent, with ``Σ_i x_{i,j} = 0`` per authority, encrypted to
  the voter's ``FPKG`` key, publishing commitments ``W_{i,j} = w^{x_{i,j}}``
  over RBC.
* **Scrutineers** (any party) check ``Π_i W_{i,j} = 1`` and compute each
  voter's verification key ``w_i = Π_j W_{i,j} = w^{x_i}``.
* **Voters** cast ``b_i = r^{x_i} · g^{v_i}`` (seed ``r`` from the RO)
  over SBC, with a disjunctive ZK proof of vote validity and correct
  exponent, plus an ``Fcert`` signature.
* **Self-tally**: since ``Σ_i x_i = 0``, the product of all ballots is
  ``g^{Σ v_i}``; encoding candidate ``j`` as ``(n+1)^j`` makes the digits
  of the discrete log the per-candidate counts.

The self-tally needs *every* registered voter's ballot (``Σ x_i = 0``
only over the full set) — the known property of [KY02]-style schemes; a
run with missing ballots reports an explicit failure rather than a wrong
tally.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.crypto.batch import BATCH_EVENT_KIND, BatchItem, BatchPolicy, current_policy
from repro.crypto.groups import SchnorrGroup
from repro.crypto.hashing import expand, hash_to_int, xor_bytes
from repro.crypto.zkp import BallotProof, ballot_batch_item, ballot_prove, ballot_verify
from repro.functionalities.certification import Certification
from repro.functionalities.keygen import AuthorityKeyGen, VoterKeyGen
from repro.functionalities.random_oracle import RandomOracle
from repro.functionalities.rbc import RelaxedBroadcast
from repro.uc.encoding import encode, register_dataclass
from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session

register_dataclass(BallotProof)


# ---------------------------------------------------------------------------
# Hashed-ElGamal share encryption (scalar shares to voter public keys)
# ---------------------------------------------------------------------------


def encrypt_share(
    group: SchnorrGroup, public: int, share: int, rng
) -> Tuple[int, bytes]:
    """Encrypt scalar ``share`` to ``public``: ``(g^k, share ⊕ H(pk^k))``."""
    k = group.random_scalar(rng)
    pad = expand(group.element_to_bytes(group.exp(public, k)), 32, domain=b"share")
    body = xor_bytes(share.to_bytes(32, "big"), pad)
    return group.power_of_g(k), body


def decrypt_share(group: SchnorrGroup, secret: int, ciphertext: Tuple[int, bytes]) -> int:
    """Inverse of :func:`encrypt_share` for the key owner."""
    ephemeral, body = ciphertext
    pad = expand(group.element_to_bytes(group.exp(ephemeral, secret)), 32, domain=b"share")
    return int.from_bytes(xor_bytes(body, pad), "big") % group.q


# ---------------------------------------------------------------------------
# Election definition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Election:
    """Static election parameters shared by all participants.

    Attributes:
        voters: Registered voter pids (all must cast for a self-tally).
        candidates: Candidate labels; candidate ``j`` is encoded as the
            exponent ``(len(voters)+1)^j``.
    """

    voters: Tuple[str, ...]
    candidates: Tuple[str, ...]

    def exponent_of(self, candidate: str) -> int:
        index = self.candidates.index(candidate)
        return (len(self.voters) + 1) ** index

    @property
    def choices(self) -> List[int]:
        """Allowed ballot exponents, in candidate order."""
        return [self.exponent_of(c) for c in self.candidates]

    def decode_tally(self, total: int) -> Dict[str, int]:
        """Digits of ``total`` in base ``len(voters)+1`` = per-candidate counts."""
        base = len(self.voters) + 1
        counts = {}
        for candidate in self.candidates:
            total, digit = divmod(total, base)
            counts[candidate] = digit
        return counts

    @property
    def tally_bound(self) -> int:
        """Upper bound on ``Σ v_i`` for the brute-force discrete log."""
        return (len(self.voters) + 1) ** len(self.candidates)


# ---------------------------------------------------------------------------
# Authority
# ---------------------------------------------------------------------------


class AuthorityParty(Party):
    """An election authority ``A_j``: deals exponent shares summing to zero."""

    def __init__(
        self,
        session: "Session",
        pid: str,
        election: Election,
        pkg: VoterKeyGen,
        skg: AuthorityKeyGen,
        rbc: RelaxedBroadcast,
    ) -> None:
        super().__init__(session, pid)
        self.election = election
        self.pkg = pkg
        self.skg = skg
        self.rbc = rbc
        self.dealt = False
        self.clock_recipients.append(rbc)

    def deal(self) -> None:
        """``Init``-phase input: deal shares ``x_{i,j}`` with ``Σ_i x_{i,j} = 0``."""
        if self.dealt:
            return
        self.dealt = True
        group, w = self.skg.parameters()
        voters = self.election.voters
        shares = [group.random_scalar(self.session.rng) for _ in voters[:-1]]
        shares.append((-sum(shares)) % group.q)
        encrypted: Dict[str, Tuple[int, bytes]] = {}
        commitments: Dict[str, int] = {}
        for voter, share in zip(voters, shares):
            public = self.pkg.public_key(voter)
            if public is None:
                _, public = self.pkg.keygen(voter)
            encrypted[voter] = encrypt_share(group, public, share, self.session.rng)
            commitments[voter] = group.exp(w, share)
        payload = (
            "Shares",
            tuple(sorted(encrypted.items())),
            tuple(sorted(commitments.items())),
        )
        self.rbc.broadcast(self, payload)


# ---------------------------------------------------------------------------
# Voter (doubles as scrutineer)
# ---------------------------------------------------------------------------


class VoterParty(Party):
    """A voter ``V_i``: assembles its secret exponent, casts, self-tallies."""

    def __init__(
        self,
        session: "Session",
        pid: str,
        election: Election,
        sbc: Functionality,
        pkg: VoterKeyGen,
        skg: AuthorityKeyGen,
        authority_rbcs: Dict[str, RelaxedBroadcast],
        certs: Dict[str, Certification],
        oracle: RandomOracle,
    ) -> None:
        super().__init__(session, pid)
        self.election = election
        self.sbc = sbc
        self.pkg = pkg
        self.skg = skg
        self.certs = certs
        self.oracle = oracle
        self.group, self.w = skg.parameters()
        self.key_secret, self.key_public = pkg.keygen(pid)

        #: authority pid -> (encrypted shares, commitments)
        self.dealings: Dict[str, Tuple[dict, dict]] = {}
        self.secret_exponent: Optional[int] = None
        self.verification_keys: Dict[str, int] = {}
        self.result: Optional[Dict[str, int]] = None
        self.tally_failure: Optional[str] = None
        self._pending_vote: Optional[str] = None
        self._cast = False

        if hasattr(sbc, "attach"):
            sbc.attach(self)
        self.route[sbc.fid] = self._on_sbc
        for rbc in authority_rbcs.values():
            self.route[rbc.fid] = self._on_authority
        if sbc not in self.clock_recipients:
            self.clock_recipients.append(sbc)
        self._expected_authorities = set(authority_rbcs)

    # -- setup phase ---------------------------------------------------------

    def _on_authority(self, message: Any, source: Functionality) -> None:
        kind, payload, sender = message
        if kind != "Broadcast":
            return
        if not (isinstance(payload, tuple) and payload and payload[0] == "Shares"):
            return
        _, encrypted_items, commitment_items = payload
        self.dealings[sender] = (dict(encrypted_items), dict(commitment_items))
        if set(self.dealings) == self._expected_authorities:
            self._finish_setup()

    def _finish_setup(self) -> None:
        group, w = self.group, self.w
        # Scrutineer check: each authority's commitments multiply to 1.
        for authority, (_, commitments) in self.dealings.items():
            product = 1
            for voter in self.election.voters:
                product = group.mul(product, commitments.get(voter, 1))
            if product != 1:
                self.record("scrutineer_reject", authority)
                return
        # Verification keys w_i = Π_j W_{i,j}.
        for voter in self.election.voters:
            key = 1
            for _, commitments in self.dealings.values():
                key = group.mul(key, commitments.get(voter, 1))
            self.verification_keys[voter] = key
        # Own secret exponent x_i = Σ_j x_{i,j} (verified against w_i).
        total = 0
        for encrypted, _ in self.dealings.values():
            total = (total + decrypt_share(group, self.key_secret, encrypted[self.pid])) % group.q
        if group.exp(w, total) != self.verification_keys[self.pid]:
            self.record("share_mismatch", self.pid)
            return
        self.secret_exponent = total
        self.record("setup_done", self.pid)
        if self._pending_vote is not None:
            vote, self._pending_vote = self._pending_vote, None
            self.vote(vote)

    # -- casting ----------------------------------------------------------------

    def _seed(self) -> int:
        """The public random seed ``r`` (a group element from the RO)."""
        digest = self.oracle.query(b"election-seed:" + self.session.sid.encode(), self.pid)
        exponent = hash_to_int(digest, modulus=self.group.q, domain=b"seed")
        return self.group.power_of_g(exponent)

    def vote(self, candidate: str) -> None:
        """``Vote`` input: build, prove, sign and cast the ballot via SBC."""
        if candidate not in self.election.candidates:
            raise ValueError(f"unknown candidate {candidate!r}")
        if self._cast:
            return
        if self.secret_exponent is None:
            self._pending_vote = candidate  # cast as soon as setup completes
            return
        self._cast = True
        group = self.group
        seed = self._seed()
        exponent = self.election.exponent_of(candidate)
        ballot = group.mul(
            group.exp(seed, self.secret_exponent), group.power_of_g(exponent)
        )
        proof = ballot_prove(
            group,
            seed,
            self.verification_keys[self.pid],
            ballot,
            self.secret_exponent,
            exponent,
            self.election.choices,
            self.session.rng,
            key_base=self.w,
        )
        signature = self.certs[self.pid].sign(
            self.pid, encode((ballot, proof, self.pid))
        )
        payload = ("Ballot", self.pid, ballot, proof, signature)
        if self.corrupted:
            self.sbc.adv_broadcast(self.pid, payload)
        else:
            self.sbc.broadcast(self, payload)

    # -- self-tally ------------------------------------------------------------------

    def _on_sbc(self, message: Any, source: Functionality) -> None:
        kind, batch = message
        if kind != "Broadcast" or self.result is not None:
            return
        if not self.verification_keys:
            self.tally_failure = "setup incomplete"
            self.output(("Result", None, self.tally_failure))
            return
        seed = self._seed()
        policy = current_policy()
        if policy is not None:
            ballots = self._tally_ballots_batched(batch, seed, policy)
        else:
            ballots = self._tally_ballots(batch, seed)
        group = self.group
        missing = [v for v in self.election.voters if v not in ballots]
        if missing:
            # Σ x_i = 0 holds only over the full voter set; a partial
            # product is indistinguishable from random.
            self.tally_failure = f"missing ballots: {missing}"
            self.output(("Result", None, self.tally_failure))
            return
        product = 1
        for ballot in ballots.values():
            product = group.mul(product, ballot)
        try:
            total = group.discrete_log_small(product, bound=self.election.tally_bound)
        except ValueError:
            self.tally_failure = "tally outside bound (inconsistent ballots)"
            self.output(("Result", None, self.tally_failure))
            return
        self.result = self.election.decode_tally(total)
        self.output(("Result", self.result, None))

    def _tally_ballots(self, batch: Sequence[Any], seed: int) -> Dict[str, int]:
        """Per-item ballot screening: the sequential reference path."""
        group = self.group
        ballots: Dict[str, int] = {}
        for item in batch:
            if not (isinstance(item, tuple) and len(item) == 5 and item[0] == "Ballot"):
                continue
            _, voter, ballot, proof, signature = item
            if voter in ballots or voter not in self.election.voters:
                continue
            if not self.certs[voter].verify(encode((ballot, proof, voter)), signature):
                continue
            if not isinstance(proof, BallotProof):
                continue
            if not ballot_verify(
                group,
                seed,
                self.verification_keys[voter],
                ballot,
                proof,
                self.election.choices,
                key_base=self.w,
            ):
                continue
            ballots[voter] = ballot
        return ballots

    def _tally_ballots_batched(
        self, batch: Sequence[Any], seed: int, policy: BatchPolicy
    ) -> Dict[str, int]:
        """Ballot screening via one random-linear-combination batch.

        Each entry contributes two items — the certificate check and the
        disjunctive ballot proof — to a single
        :func:`~repro.crypto.batch.verify_batch` call; certificates whose
        backend cannot express an equation (the ideal ``Fcert`` registry)
        join as exact-check fallbacks.  Accepting the first *verified*
        occurrence per voter reproduces the per-item loop's
        dedup-by-acceptance outcome exactly, duplicates and forgeries
        included.  When ``policy.record_trace`` is set the round records
        one :data:`~repro.crypto.batch.BATCH_EVENT_KIND` event, pinning
        batched runs in the trace digest like online-spend runs.
        """
        group = self.group
        entries: List[Tuple[str, int]] = []
        items: List[BatchItem] = []
        for item in batch:
            if not (isinstance(item, tuple) and len(item) == 5 and item[0] == "Ballot"):
                continue
            _, voter, ballot, proof, signature = item
            if voter not in self.election.voters:
                continue
            cert = self.certs[voter]
            message = encode((ballot, proof, voter))
            if hasattr(cert, "batch_verify_item"):
                cert_item = cert.batch_verify_item(message, signature)
            else:
                cert_item = BatchItem(
                    bases=(), equations=(), check=partial(cert.verify, message, signature)
                )
            if isinstance(proof, BallotProof):
                proof_item = ballot_batch_item(
                    group,
                    seed,
                    self.verification_keys[voter],
                    ballot,
                    proof,
                    self.election.choices,
                    key_base=self.w,
                )
            else:
                proof_item = BatchItem(bases=(), equations=(), check=lambda: False)
            entries.append((voter, ballot))
            items.append(cert_item)
            items.append(proof_item)
        report = policy.run(group, items)
        if policy.record_trace:
            self.record(BATCH_EVENT_KIND, report.trace_detail())
        ballots: Dict[str, int] = {}
        for index, (voter, ballot) in enumerate(entries):
            if voter in ballots:
                continue
            if report.verdicts[2 * index] and report.verdicts[2 * index + 1]:
                ballots[voter] = ballot
        return ballots
