"""ΠFBC — fair broadcast over UBC + time-lock puzzles (Figure 11, Lemma 2).

To broadcast ``M`` fairly, the sender samples a fresh ``ρ``, time-locks
``ρ`` with difficulty **2** (an Astrolabous ciphertext ``c``), masks the
message as ``y = M ⊕ FRO(ρ)`` and broadcasts ``(c, y)`` unfairly.  The
semantic hiding of ``ρ`` for two rounds is what buys fairness: an
adversary corrupting the sender after seeing ``(c, y)`` learns nothing
about ``M`` in time to replace it coherently.  Every recipient starts
solving a received puzzle *in the round after receipt* (Sec. 3.2 item 3 —
this aligns all parties regardless of activation order) and finishes one
round later, so messages are delivered after exactly ``Δ = 2`` rounds,
sorted, matching ``F^{2,2}_FBC``.

Implementation note: like ΠUBC, the per-party machines are folded into a
single :class:`FBCProtocolAdapter` exposing the ideal
:class:`~repro.functionalities.fbc.FairBroadcast` interface (Lemma 2 is
the interchangeability of the two, exercised in ``tests/test_fbc.py``).
Per-party query budgets are spent against the *party's own* wrapper
account, exactly as Figure 11 schedules them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.crypto.hashing import DIGEST_SIZE, xor_bytes
from repro.functionalities.random_oracle import RandomOracle
from repro.functionalities.wrapper import QueryWrapper
from repro.protocols.common import DEFAULT_MSG_LEN, pad_message, unpad_message
from repro.tle.astrolabous import PuzzleSolver, TLECiphertext, ast_decrypt, ast_encrypt
from repro.uc.encoding import sort_key
from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session

#: The paper's protocol fixes time-lock difficulty 2 (Sec. 3.2 item 4):
#: difficulty 1 would let a rushing adversary solve within the receipt
#: round, denying the simulator its equivocation window.
DIFFICULTY = 2


@dataclass
class _WaitEntry:
    ciphertext: TLECiphertext
    mask: bytes
    received_at: int
    solver: Optional[PuzzleSolver] = None


@dataclass
class _PartyState:
    pending: List[Any] = field(default_factory=list)  # L^P_pend
    waiting: List[_WaitEntry] = field(default_factory=list)  # L^P_wait
    seen: set = field(default_factory=set)  # replay suppression
    last_tick: int = -1  # first-Advance_Clock-of-the-round guard


class FBCProtocolAdapter(Functionality):
    """ΠFBC: drop-in replacement for the ideal ``F^{2,2}_FBC``.

    Args:
        session: Owning session.
        ubc: The unfair broadcast below (ideal ``FUBC`` or ΠUBC adapter).
        wrapper: ``Wq(F*RO)`` metering puzzle queries.
        oracle: The equivocation oracle ``FRO`` — its ``digest_size`` must
            equal ``msg_len``.
        msg_len: Fixed wire size of masked messages.
    """

    delta = DIFFICULTY
    alpha = DIFFICULTY

    def __init__(
        self,
        session: "Session",
        ubc: Functionality,
        wrapper: QueryWrapper,
        oracle: RandomOracle,
        msg_len: int = DEFAULT_MSG_LEN,
        fid: str = "PiFBC",
    ) -> None:
        if oracle.digest_size != msg_len:
            raise ValueError("oracle digest size must equal msg_len")
        super().__init__(session, fid)
        self.ubc = ubc
        self.wrapper = wrapper
        self.oracle = oracle
        self.msg_len = msg_len
        self._state: Dict[str, _PartyState] = {}

    # -- wiring ------------------------------------------------------------

    def attach(self, party: Party) -> None:
        """Wire ``party`` into this FBC instance (routes + clock chain)."""
        party.route[self.ubc.fid] = lambda message, source: self._on_ubc(
            party, message
        )
        if self not in party.clock_recipients:
            party.clock_recipients.append(self)

    def _st(self, pid: str) -> _PartyState:
        return self._state.setdefault(pid, _PartyState())

    # -- broadcast input -------------------------------------------------------

    def broadcast(self, party: Party, message: Any) -> None:
        """``Broadcast`` input: queue for this round's end-of-round work."""
        if party.corrupted:
            raise ValueError("honest interface used by corrupted party")
        pad_message(message, self.msg_len)  # validate size early
        self._st(party.pid).pending.append(message)

    def adv_broadcast(self, pid: str, message: Any) -> None:
        """The adversary runs the sender code of corrupted ``pid``.

        A corrupted party may follow the protocol; its messages enter the
        same pipeline (and its puzzle queries bill the corrupted pool).
        """
        self.require_corrupted(pid)
        self._st(pid).pending.append(message)

    # -- UBC delivery -----------------------------------------------------------

    def _on_ubc(self, party: Party, message: Any) -> None:
        kind, payload, _sender = message
        if kind != "Broadcast":
            return
        if not (isinstance(payload, tuple) and len(payload) == 2):
            return
        ciphertext, mask = payload
        if not isinstance(ciphertext, TLECiphertext) or not isinstance(mask, bytes):
            return
        if ciphertext.difficulty != DIFFICULTY or len(mask) != self.msg_len:
            return  # malformed: honest parties ignore invalid messages
        state = self._st(party.pid)
        replay_key = (bytes(b"".join(ciphertext.chain)), mask)
        if replay_key in state.seen:
            return
        state.seen.add(replay_key)
        state.waiting.append(
            _WaitEntry(ciphertext=ciphertext, mask=mask, received_at=self.time)
        )

    # -- round work (Figure 11, Advance_Clock) ------------------------------------

    def on_party_tick(self, party: Party) -> None:
        now = self.time
        state = self._st(party.pid)
        if state.last_tick == now:
            return  # only the first Advance_Clock of a round does work
        state.last_tick = now
        q = self.wrapper.q

        fresh = [e for e in state.waiting if e.received_at == now - 1]
        finishing = [e for e in state.waiting if e.received_at == now - 2]
        for entry in fresh:
            entry.solver = PuzzleSolver(entry.ciphertext)

        # Step 1: sample puzzle randomness for every pending message.
        pending = list(state.pending)
        state.pending.clear()
        randomness = {
            index: [
                self.session.random_bytes(DIGEST_SIZE) for _ in range(DIFFICULTY * q)
            ]
            for index in range(len(pending))
        }

        # Step 3: the round's q query batches.  Batch 0 carries all the
        # (independent) encryption randomness; every batch advances every
        # active solver by one sequential link.
        enc_responses: Dict[bytes, bytes] = {}
        solvers = [e.solver for e in fresh + finishing]
        for j in range(q):
            points: List[bytes] = []
            if j == 0:
                for values in randomness.values():
                    points.extend(values)
            active = [s for s in solvers if s is not None and not s.solved]
            offsets = []
            for solver in active:
                offsets.append(len(points))
                points.append(solver.next_query())
            if not points:
                continue
            responses = self.wrapper.evaluate(party.pid, points)
            if j == 0:
                for point, response in zip(points, responses):
                    enc_responses.setdefault(point, response)
            for solver, offset in zip(active, offsets):
                solver.absorb(responses[offset])

        # Step 4: encrypt and broadcast each pending message.
        for index, message in enumerate(pending):
            rho = self.session.random_bytes(DIGEST_SIZE)
            ciphertext = ast_encrypt(
                rho,
                difficulty=DIFFICULTY,
                rate=q,
                hash_fn=lambda x: enc_responses[x],
                rng=self.session.rng,
                randomness=randomness[index],
            )
            eta = self.oracle.query(rho, querier=party.pid)
            mask = xor_bytes(pad_message(message, self.msg_len), eta)
            if party.corrupted:
                self.ubc.adv_broadcast(party.pid, (ciphertext, mask))
            else:
                self.ubc.broadcast(party, (ciphertext, mask))

        # Step 5: open the puzzles received two rounds ago.
        ready: List[Any] = []
        for entry in finishing:
            state.waiting.remove(entry)
            try:
                rho = ast_decrypt(entry.ciphertext, entry.solver.witness)
            except Exception:
                continue  # invalid puzzle: ignore, as honest parties do
            eta = self.oracle.query(rho, querier=party.pid)
            try:
                ready.append(unpad_message(xor_bytes(entry.mask, eta)))
            except ValueError:
                continue

        # Steps 6-7: deliver sorted.
        ready.sort(key=sort_key)
        for message in ready:
            self.deliver(party, ("Broadcast", message))

        # Step 9: Advance_Clock down to FUBC.
        self.ubc.on_party_tick(party)
