"""ΠTLE — time-lock encryption over fair broadcast (Figure 12, Theorem 1).

An ``Enc(M, τ)`` request is served by time-locking a fresh ``ρ`` with
difficulty ``τdec = τ − (Cl + ∆ + 1)`` and broadcasting
``c = (c₁, c₂, c₃) = (AST.Enc(ρ, τdec), M ⊕ FRO(ρ), FRO(ρ‖M))``
together with ``τ`` via ``F∆,α_FBC``.  Fair broadcast guarantees everyone
receives ``c`` in the same round and begins solving together; the third
component authenticates the plaintext against the puzzle, so a witness
that opens ``c₁`` to the wrong ``ρ`` is rejected.

Theorem 1: this realizes ``F^{leak,delay}_TLE`` with
``leak(Cl) = Cl + α`` and ``delay = ∆ + 1``, adaptively, for any
``∆ ≥ α ≥ 0``.

Like ΠUBC/ΠFBC, the per-party machines are folded into one
:class:`TLEProtocolAdapter` exposing the ideal
:class:`~repro.functionalities.tle.TimeLockEncryption` interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.crypto.hashing import DIGEST_SIZE, xor_bytes
from repro.functionalities.random_oracle import RandomOracle
from repro.functionalities.tle import BOTTOM, INVALID_TIME, MORE_TIME
from repro.functionalities.wrapper import QueryWrapper
from repro.protocols.common import pad_message, unpad_message
from repro.tle.astrolabous import PuzzleSolver, TLECiphertext, ast_decrypt, ast_encrypt
from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session

#: Wire form of a ΠTLE ciphertext: (c1 = puzzle of ρ, c2 = M ⊕ η, c3 = check).
WireCiphertext = Tuple[TLECiphertext, bytes, bytes]


@dataclass
class _EncRecord:
    message: Any
    ciphertext: Optional[WireCiphertext]
    tau: int
    recorded_at: int
    broadcast: bool = False


@dataclass
class _Puzzle:
    ciphertext: WireCiphertext
    tau: int
    solver: PuzzleSolver


@dataclass
class _TLEState:
    records: List[_EncRecord] = field(default_factory=list)  # L^P_rec
    puzzles: Dict[bytes, _Puzzle] = field(default_factory=dict)  # L^P_puzzle
    inbox: List[Tuple[WireCiphertext, int]] = field(default_factory=list)
    last_tick: int = -1


def _puzzle_key(ciphertext: WireCiphertext) -> bytes:
    c1, c2, c3 = ciphertext
    return b"".join(c1.chain) + c1.body + c2 + c3


class TLEProtocolAdapter(Functionality):
    """ΠTLE: drop-in replacement for the ideal ``FTLE``.

    Args:
        session: Owning session.
        fbc: The fair broadcast below (ideal ``FairBroadcast`` or the
            ΠFBC adapter); must expose ``delta``/``alpha`` attributes.
        wrapper: ``Wq(F*RO)``.
        oracle: Equivocation oracle ``FRO`` (digest size = ``msg_len``).
        msg_len: Fixed plaintext wire size.
    """

    def __init__(
        self,
        session: "Session",
        fbc: Functionality,
        wrapper: QueryWrapper,
        oracle: RandomOracle,
        msg_len: int,
        fid: str = "PiTLE",
    ) -> None:
        if oracle.digest_size != msg_len:
            raise ValueError("oracle digest size must equal msg_len")
        super().__init__(session, fid)
        self.fbc = fbc
        self.wrapper = wrapper
        self.oracle = oracle
        self.msg_len = msg_len
        self.delta = fbc.delta
        self.alpha = fbc.alpha
        #: The functionality parameters this protocol realizes (Theorem 1).
        self.delay = self.delta + 1
        self.leak_fn = lambda cl: cl + self.alpha
        self._state: Dict[str, _TLEState] = {}

    # -- wiring -------------------------------------------------------------

    def attach(self, party: Party) -> None:
        """Wire ``party`` into this TLE instance (routes + clock chain)."""
        party.route[self.fbc.fid] = lambda message, source: self._on_fbc(
            party, message
        )
        if hasattr(self.fbc, "attach"):
            self.fbc.attach(party)
        if self not in party.clock_recipients:
            party.clock_recipients.append(self)

    def _st(self, pid: str) -> _TLEState:
        return self._state.setdefault(pid, _TLEState())

    # -- Enc input -------------------------------------------------------------

    def enc(self, party: Party, message: Any, tau: int) -> str:
        """``Enc`` request: record; ciphertext is built at round's end."""
        if party.corrupted:
            raise ValueError("honest interface used by corrupted party")
        if tau < 0:
            return BOTTOM
        self._st(party.pid).records.append(
            _EncRecord(
                message=message, ciphertext=None, tau=tau, recorded_at=self.time
            )
        )
        return "Encrypting"

    # -- Retrieve input -----------------------------------------------------------

    def retrieve(self, party: Party) -> List[Tuple[Any, WireCiphertext, int]]:
        """Matured (message, ciphertext, τ) triples (age ≥ ∆ + 1)."""
        now = self.time
        return [
            (record.message, record.ciphertext, record.tau)
            for record in self._st(party.pid).records
            if record.broadcast
            and record.ciphertext is not None
            and now - record.recorded_at >= self.delta + 1
        ]

    # -- Dec input -------------------------------------------------------------------

    def dec(self, party: Party, ciphertext: Any, tau: int) -> Any:
        """``Dec`` request, Figure 12's decision tree."""
        if tau < 0 or ciphertext is None:
            return BOTTOM
        now = self.time
        if now < tau:
            return MORE_TIME
        state = self._st(party.pid)
        puzzle = state.puzzles.get(_puzzle_key(ciphertext))
        if puzzle is None:
            return BOTTOM
        if tau < puzzle.tau <= now:
            return INVALID_TIME
        if not puzzle.solver.solved:
            return MORE_TIME
        c1, c2, c3 = puzzle.ciphertext
        try:
            rho = ast_decrypt(c1, puzzle.solver.witness)
        except Exception:
            return BOTTOM
        eta = self.oracle.query(rho, querier=party.pid)
        padded = xor_bytes(c2, eta)
        check = self.oracle.query(rho + padded, querier=party.pid)
        if check != c3:
            return BOTTOM
        try:
            return unpad_message(padded)
        except ValueError:
            return BOTTOM

    # -- FBC delivery ------------------------------------------------------------------

    def _on_fbc(self, party: Party, message: Any) -> None:
        if not (isinstance(message, tuple) and message[0] == "Broadcast"):
            return
        payload = message[1]
        if not (isinstance(payload, tuple) and len(payload) == 2):
            return
        ciphertext, tau = payload
        if not (
            isinstance(ciphertext, tuple)
            and len(ciphertext) == 3
            and isinstance(ciphertext[0], TLECiphertext)
        ):
            return
        self._st(party.pid).inbox.append((ciphertext, tau))

    # -- round work (Figure 12, Advance_Clock) ---------------------------------------------

    def on_party_tick(self, party: Party) -> None:
        now = self.time
        state = self._st(party.pid)
        if state.last_tick == now:
            return
        state.last_tick = now
        q = self.wrapper.q

        # Step 1: Advance_Clock down to FFBC first — its delayed
        # deliveries for this round land in our inbox.
        self.fbc.on_party_tick(party)

        # Step 2: register received ciphertexts as puzzles.
        inbox, state.inbox = state.inbox, []
        for ciphertext, tau in inbox:
            key = _puzzle_key(ciphertext)
            if key in state.puzzles:
                continue
            state.puzzles[key] = _Puzzle(
                ciphertext=ciphertext, tau=tau, solver=PuzzleSolver(ciphertext[0])
            )

        # Step 3: ENCRYPT&SOLVE.
        fresh = [record for record in state.records if record.ciphertext is None]
        randomness: Dict[int, List[bytes]] = {}
        difficulties: Dict[int, int] = {}
        for index, record in enumerate(fresh):
            tau_dec = max(0, record.tau - (now + self.delta + 1))
            difficulties[index] = tau_dec
            randomness[index] = [
                self.session.random_bytes(DIGEST_SIZE) for _ in range(q * tau_dec)
            ]

        enc_responses: Dict[bytes, bytes] = {}
        for j in range(q):
            points: List[bytes] = []
            if j == 0:
                for values in randomness.values():
                    points.extend(values)
            active = [
                puzzle.solver
                for puzzle in state.puzzles.values()
                if not puzzle.solver.solved
            ]
            offsets = []
            for solver in active:
                offsets.append(len(points))
                points.append(solver.next_query())
            if not points:
                continue
            responses = self.wrapper.evaluate(party.pid, points)
            if j == 0:
                for point, response in zip(points, responses):
                    enc_responses.setdefault(point, response)
            for solver, offset in zip(active, offsets):
                solver.absorb(responses[offset])

        for index, record in enumerate(fresh):
            rho = self.session.random_bytes(DIGEST_SIZE)
            c1 = ast_encrypt(
                rho,
                difficulty=difficulties[index],
                rate=q,
                hash_fn=lambda x: enc_responses[x],
                rng=self.session.rng,
                randomness=randomness[index],
            )
            eta = self.oracle.query(rho, querier=party.pid)
            padded = pad_message(record.message, self.msg_len)
            c2 = xor_bytes(padded, eta)
            c3 = self.oracle.query(rho + padded, querier=party.pid)
            record.ciphertext = (c1, c2, c3)

        # Step 4: broadcast freshly-built ciphertexts via FFBC.
        for record in state.records:
            if record.ciphertext is not None and not record.broadcast:
                record.broadcast = True
                payload = (record.ciphertext, record.tau)
                if party.corrupted:
                    self.fbc.adv_broadcast(party.pid, payload)
                else:
                    self.fbc.broadcast(party, payload)
