"""Protocol machines realizing the paper's functionalities.

=======================  ====================================================
Module                   Paper protocol
=======================  ====================================================
``dolev_strong``         ΠRBC — Dolev–Strong over ``Fcert`` (Fact 1)
``ubc_protocol``         ΠUBC over ``FRBC`` instances (Figure 9, Lemma 1)
``fbc_protocol``         ΠFBC over ``FUBC`` + ``Wq(F*RO)`` + ``FRO``
                         (Figure 11, Lemma 2: realizes ``F^{2,2}_FBC``)
``tle_protocol``         ΠTLE over ``F∆,α_FBC`` (Figure 12, Theorem 1)
``sbc_protocol``         ΠSBC over ``FUBC`` + ``FTLE`` + ``FRO``
                         (Figure 14, Theorem 2)
``durs_protocol``        ΠDURS over ``FSBC`` + ``FRBC`` (Figure 16, Thm 3)
``voting_protocol``      ΠSTVS over ``FSBC`` + ``FRBC`` + ``FPKG`` +
                         ``FSKG`` (Figure 18, Theorem 4)
=======================  ====================================================

The multi-party protocols are packaged as *adapters*: one object holding
every party's per-party protocol state, exposing the same interface as the
ideal functionality it realizes.  A protocol written against the ideal
object runs unchanged against the adapter — the executable counterpart of
each "Π realizes F" statement, and the mechanism by which the composed
world of Corollary 1 is assembled.
"""

from repro.protocols.common import pad_message, unpad_message
from repro.protocols.dolev_strong import DolevStrongParty, make_dolev_strong_instance
from repro.protocols.ds_ubc import DolevStrongUBCAdapter
from repro.protocols.durs_protocol import DURSParty, make_durs_network
from repro.protocols.fbc_protocol import FBCProtocolAdapter
from repro.protocols.sbc_protocol import SBCParty, SBCProtocolAdapter
from repro.protocols.tle_protocol import TLEProtocolAdapter
from repro.protocols.ubc_protocol import UBCProtocolAdapter
from repro.protocols.voting_protocol import AuthorityParty, Election, VoterParty

__all__ = [
    "AuthorityParty",
    "DolevStrongParty",
    "DolevStrongUBCAdapter",
    "DURSParty",
    "Election",
    "FBCProtocolAdapter",
    "SBCParty",
    "SBCProtocolAdapter",
    "TLEProtocolAdapter",
    "UBCProtocolAdapter",
    "VoterParty",
    "make_dolev_strong_instance",
    "make_durs_network",
    "pad_message",
    "unpad_message",
]
