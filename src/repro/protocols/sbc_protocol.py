"""ΠSBC — simultaneous broadcast over UBC + TLE (Figure 14, Theorem 2).

The first sender of the session wakes everyone up with a special
``Wake_Up`` message over UBC; by UBC agreement all honest parties fix the
same broadcast period ``[t_awake, t_end = t_awake + Φ)`` and time-lock
release time ``τ_rel = t_end + ∆``.  To broadcast ``M``, a sender
time-locks a fresh ``ρ`` for ``τ_rel`` via ``FTLE``, masks
``y = M ⊕ FRO(ρ)``, and UBC-broadcasts ``(c, τ_rel, y)``.  Until
``τ_rel``, the semantic security of the TLE ciphertexts keeps every
honest message hidden — *simultaneity*: corrupted senders must commit
their own ciphertexts with no information about honest plaintexts.  At
``τ_rel``, everyone decrypts everything and outputs the sorted batch —
*liveness* without full participation.

Theorem 2: for ``Φ > delay`` and ``∆ > max(leak(Cl) − Cl)`` this realizes
``F^{Φ,∆,α}_SBC`` with ``α = max(leak(Cl) − Cl) + 1``, against adaptive
corruption of up to ``t < n`` parties.

Like the layers below, the per-party machines are folded into one
:class:`SBCProtocolAdapter` exposing the ideal
:class:`~repro.functionalities.sbc.SimultaneousBroadcast` interface;
:class:`SBCParty` is a thin top-of-stack party for direct use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.crypto.hashing import DIGEST_SIZE, xor_bytes
from repro.functionalities.random_oracle import RandomOracle
from repro.protocols.common import DEFAULT_MSG_LEN, pad_message, unpad_message
from repro.uc.encoding import sort_key
from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session

WAKE_UP = "Wake_Up"

#: Dec responses that mean "no plaintext" (sentinel strings of FTLE).
_DEC_FAILURES = {None, "Bottom", "More_Time", "Invalid_Time"}


@dataclass
class _SBCState:
    pending: List[Tuple[bytes, Any]] = field(default_factory=list)  # (ρ, M)
    received: List[Tuple[Any, bytes]] = field(default_factory=list)  # (c, y)
    t_awake: Optional[int] = None
    t_end: Optional[int] = None
    tau_rel: Optional[int] = None
    #: Inputs received before the session woke up.  The figure stores a
    #: single ``firstP``; we queue all of them so honest inputs are never
    #: silently dropped (matching FSBC, which records every request made
    #: within the period — see DESIGN.md, deviations).
    pre_wake: List[Any] = field(default_factory=list)
    masked: set = field(default_factory=set)
    last_tick: int = -1
    delivered: bool = False


class SBCProtocolAdapter(Functionality):
    """ΠSBC: drop-in replacement for the ideal ``FΦ,∆,α_SBC``.

    Args:
        session: Owning session.
        ubc: Unfair broadcast below (ideal ``FUBC`` or ΠUBC adapter).
        tle: Time-lock service (ideal ``FTLE`` or ΠTLE adapter); must
            expose ``delay``, ``leak_fn`` and the Enc/Retrieve/Dec
            interface.
        oracle: Equivocation oracle with ``digest_size == msg_len``.
        phi: Broadcast period length Φ (requires ``Φ > tle.delay``).
        delta: Release delay ∆ (requires ``∆ > max(leak(Cl) − Cl)``).
        msg_len: Fixed wire size of masked messages.
    """

    def __init__(
        self,
        session: "Session",
        ubc: Functionality,
        tle: Functionality,
        oracle: RandomOracle,
        phi: int,
        delta: int,
        msg_len: int = DEFAULT_MSG_LEN,
        fid: str = "PiSBC",
    ) -> None:
        if oracle.digest_size != msg_len:
            raise ValueError("oracle digest size must equal msg_len")
        if phi <= tle.delay:
            raise ValueError("Theorem 2 requires phi > delay of FTLE")
        advantage = tle.leak_fn(0)  # max(leak(Cl) − Cl): constant here
        if delta <= advantage:
            raise ValueError("Theorem 2 requires delta > max(leak(Cl) − Cl)")
        super().__init__(session, fid)
        self.ubc = ubc
        self.tle = tle
        self.oracle = oracle
        self.phi = phi
        self.delta = delta
        self.alpha = advantage + 1  # Theorem 2's simulator advantage
        self.msg_len = msg_len
        self._state: Dict[str, _SBCState] = {}

    # -- wiring --------------------------------------------------------------

    def attach(self, party: Party) -> None:
        """Wire ``party`` into this SBC instance (routes + clock chain)."""
        party.route[self.ubc.fid] = lambda message, source: self._on_ubc(
            party, message
        )
        if hasattr(self.tle, "attach"):
            self.tle.attach(party)
        if self not in party.clock_recipients:
            party.clock_recipients.append(self)

    def _st(self, pid: str) -> _SBCState:
        return self._state.setdefault(pid, _SBCState())

    # -- broadcast input ---------------------------------------------------------

    def broadcast(self, party: Party, message: Any) -> None:
        """``Broadcast`` input (Figure 14, first interface)."""
        if party.corrupted:
            raise ValueError("honest interface used by corrupted party")
        self._input(party, message)

    def adv_broadcast(self, pid: str, message: Any) -> None:
        """The adversary runs the sender code of corrupted ``pid``."""
        self.require_corrupted(pid)
        self._input(self.session.party(pid), message)

    def _input(self, party: Party, message: Any) -> None:
        pad_message(message, self.msg_len)  # validate size early
        state = self._st(party.pid)
        if state.t_awake is None:
            if not state.pre_wake:
                self._ubc_broadcast(party, WAKE_UP)
            state.pre_wake.append(message)
            return
        if self.time >= state.t_end - self.tle.delay:
            # Too late: a ciphertext could not be ready before t_end.
            self.record("late_input", (party.pid, message))
            return
        self._lock_and_queue(party, message)

    def _ubc_broadcast(self, party: Party, payload: Any) -> None:
        if party.corrupted:
            self.ubc.adv_broadcast(party.pid, payload)
        else:
            self.ubc.broadcast(party, payload)

    def _lock_and_queue(self, party: Party, message: Any) -> None:
        state = self._st(party.pid)
        rho = self.session.random_bytes(DIGEST_SIZE)
        state.pending.append((rho, message))
        self.tle.enc(party, rho, state.tau_rel)

    # -- UBC deliveries ---------------------------------------------------------------

    def _on_ubc(self, party: Party, message: Any) -> None:
        kind, payload, _sender = message
        if kind != "Broadcast":
            return
        state = self._st(party.pid)
        if payload == WAKE_UP:
            self._on_wake_up(party, state)
            return
        if state.tau_rel is None:
            return
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return
        ciphertext, tau, mask = payload
        if tau != state.tau_rel or not isinstance(mask, bytes):
            return
        if len(mask) != self.msg_len:
            return
        for seen_cipher, seen_mask in state.received:
            if seen_cipher == ciphertext or seen_mask == mask:
                return  # replayed component: ignored
        state.received.append((ciphertext, mask))

    def _on_wake_up(self, party: Party, state: _SBCState) -> None:
        if state.t_awake is not None:
            return
        state.t_awake = self.time
        state.t_end = state.t_awake + self.phi
        state.tau_rel = state.t_end + self.delta
        self.record("awake", (party.pid, state.t_awake, state.t_end, state.tau_rel))
        pre_wake, state.pre_wake = state.pre_wake, []
        for message in pre_wake:
            self._lock_and_queue(party, message)

    # -- round work (Figure 14, Advance_Clock) ----------------------------------------------

    def on_party_tick(self, party: Party) -> None:
        now = self.time
        state = self._st(party.pid)
        if state.last_tick == now:
            return
        state.last_tick = now

        # Drive the TLE layer first so earlier Enc requests have matured
        # by the time we Retrieve.
        if hasattr(self.tle, "on_party_tick"):
            self.tle.on_party_tick(party)

        if state.t_awake is not None and state.t_awake <= now < state.t_end:
            # Step 2: fetch matured ciphertexts and UBC-broadcast them.
            for rho, ciphertext, _tau in self.tle.retrieve(party):
                match = next(
                    (pair for pair in state.pending if pair[0] == rho), None
                )
                if match is None or rho in state.masked:
                    continue
                state.masked.add(rho)
                eta = self.oracle.query(rho, querier=party.pid)
                mask = xor_bytes(pad_message(match[1], self.msg_len), eta)
                self._ubc_broadcast(party, (ciphertext, state.tau_rel, mask))

        if state.tau_rel is not None and now == state.tau_rel and not state.delivered:
            # Step 3: open every received ciphertext; deliver the batch.
            state.delivered = True
            opened: List[Any] = []
            for ciphertext, mask in state.received:
                rho = self.tle.dec(party, ciphertext, state.tau_rel)
                if rho in _DEC_FAILURES or not isinstance(rho, bytes):
                    continue
                eta = self.oracle.query(rho, querier=party.pid)
                try:
                    opened.append(unpad_message(xor_bytes(mask, eta)))
                except ValueError:
                    continue
            opened.sort(key=sort_key)
            self.deliver(party, ("Broadcast", opened))

        # Step 4: Advance_Clock down to FUBC.
        self.ubc.on_party_tick(party)


class SBCParty(Party):
    """Thin top-of-stack party: forwards inputs to an SBC service and
    hands its deliveries to Z.

    Works identically against the ideal
    :class:`~repro.functionalities.sbc.SimultaneousBroadcast` and the
    :class:`SBCProtocolAdapter` — that interchangeability is Theorem 2.
    """

    def __init__(self, session: "Session", pid: str, sbc: Functionality) -> None:
        super().__init__(session, pid)
        self.sbc = sbc
        if hasattr(sbc, "attach"):
            sbc.attach(self)
        self.route[sbc.fid] = lambda message, source: self.output(message)
        if sbc not in self.clock_recipients:
            self.clock_recipients.append(sbc)

    def broadcast(self, message: Any) -> None:
        """Forward a ``Broadcast`` input to the SBC service."""
        self.sbc.broadcast(self, message)
