"""The Dolev–Strong broadcast protocol ΠRBC (realizing ``FRBC``, Fact 1).

Classic authenticated broadcast [DS82]: the sender signs its value and
sends it to everyone; in relay round ``k`` a party accepts a value carried
by a chain of ``k`` valid signatures (the sender's first, all signers
distinct), appends its own signature and forwards.  After ``t+1`` relay
rounds a party outputs the unique accepted value, or ``⊥`` if it accepted
zero or several — with ``t+1`` rounds, any value accepted by one honest
party is accepted by all, which gives *agreement* for any ``t < n``.

Validity is the *relaxed* kind of [GKKZ11]: only a sender that remains
honest is guaranteed to have its value delivered unmodified; an adaptively
corrupted sender's signature key is the adversary's, so equivocation
becomes possible and parties may output ``⊥`` or an adversarial value —
but never *disagree*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.functionalities.certification import Certification
from repro.functionalities.network import SyncNetwork
from repro.uc.encoding import encode
from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session

#: Output symbol when agreement on a single value failed.
BOTTOM = "Bottom"

#: A signature chain: ((pid, signature), ...), sender's signature first.
Chain = Tuple[Tuple[str, bytes], ...]


def _signed_payload(sid: str, sender: str, message: Any) -> bytes:
    return encode(("DS", sid, sender, message))


class DolevStrongParty(Party):
    """One party of a single-shot Dolev–Strong broadcast instance.

    Args:
        session: Owning session.
        pid: This party's identifier.
        network: The synchronous point-to-point network.
        certs: Map pid -> ``Fcert`` instance of that signer.
        sender: The designated sender's pid.
        t: Corruption bound; the protocol runs ``t + 1`` relay rounds.
        instance: Disambiguates concurrent instances (part of signed data).
    """

    def __init__(
        self,
        session: "Session",
        pid: str,
        network: SyncNetwork,
        certs: Dict[str, Certification],
        sender: str,
        t: int,
        instance: str = "ds0",
    ) -> None:
        super().__init__(session, pid)
        self.network = network
        self.certs = certs
        self.sender = sender
        self.t = t
        self.instance = instance
        self.start_time: Optional[int] = None
        self._sent = False
        self.accepted: List[Any] = []
        self.decided = False
        self._inbox: List[Tuple[Any, Chain]] = []
        self._outbox: List[Tuple[Any, Chain]] = []

    # -- environment input ----------------------------------------------------

    def broadcast(self, message: Any) -> None:
        """Sender input: sign and queue the initial send (this round)."""
        if self.pid != self.sender:
            raise ValueError(f"{self.pid} is not the designated sender")
        if self._sent:
            return
        self._sent = True
        if self.start_time is None:
            self.start_time = self.time
        signature = self.certs[self.pid].sign(
            self.pid, _signed_payload(self.session.sid, self.sender, message)
        )
        self.accepted.append(message)
        self._outbox.append((message, ((self.pid, signature),)))

    def arm(self, start_time: Optional[int] = None) -> None:
        """Non-sender parties learn the instance's start round.

        In a full deployment the start round is part of the session setup;
        tests call :meth:`arm` on every party when the sender is given its
        input (or when the adversary initiates a corrupted-sender run).
        """
        if self.start_time is None:
            self.start_time = self.time if start_time is None else start_time

    # -- network delivery -----------------------------------------------------

    def on_deliver(self, message: Any, source: Functionality) -> None:
        kind, payload, _sender = message
        if kind != "P2P":
            return
        tag, value, chain = payload
        if tag != ("DS", self.instance):
            return
        self._inbox.append((value, tuple(chain)))

    # -- round work ----------------------------------------------------------------

    def end_of_round(self) -> None:
        if self.start_time is None or self.decided:
            return
        k = self.time - self.start_time  # relative relay round
        if k >= 1:
            self._process_inbox(k)
        self._flush_outbox()
        if k >= self.t + 1:
            self._decide()

    def _process_inbox(self, k: int) -> None:
        inbox, self._inbox = self._inbox, []
        for value, chain in inbox:
            if len(self.accepted) >= 2:
                break  # already certain of disagreement: ⊥ regardless
            if value in self.accepted:
                continue
            if not self._valid_chain(value, chain, minimum=k):
                continue
            self.accepted.append(value)
            if k <= self.t and not self.corrupted:
                signature = self.certs[self.pid].sign(
                    self.pid, _signed_payload(self.session.sid, self.sender, value)
                )
                self._outbox.append((value, chain + ((self.pid, signature),)))

    def _valid_chain(self, value: Any, chain: Chain, minimum: int) -> bool:
        if len(chain) < minimum:
            return False
        signers = [pid for pid, _ in chain]
        if signers[0] != self.sender:
            return False
        if len(set(signers)) != len(signers):
            return False
        payload = _signed_payload(self.session.sid, self.sender, value)
        return all(
            pid in self.certs and self.certs[pid].verify(payload, signature)
            for pid, signature in chain
        )

    def _flush_outbox(self) -> None:
        outbox, self._outbox = self._outbox, []
        for value, chain in outbox:
            self.network.send_all(self, (("DS", self.instance), value, chain))

    def _decide(self) -> None:
        self.decided = True
        if len(self.accepted) == 1:
            self.output(("Broadcast", self.accepted[0], self.sender))
        else:
            self.output(("Broadcast", BOTTOM, self.sender))


def make_dolev_strong_instance(
    session: "Session",
    pids: Sequence[str],
    sender: str,
    t: int,
    instance: str = "ds0",
    network: Optional[SyncNetwork] = None,
    certs: Optional[Dict[str, Certification]] = None,
) -> Dict[str, DolevStrongParty]:
    """Wire up a complete Dolev–Strong instance; returns pid -> party."""
    network = network or SyncNetwork(session, fid=f"Net:{instance}")
    certs = certs or {
        pid: Certification(session, signer=pid, fid=f"Fcert:{instance}:{pid}")
        for pid in pids
    }
    return {
        pid: DolevStrongParty(
            session,
            pid,
            network=network,
            certs=certs,
            sender=sender,
            t=t,
            instance=instance,
        )
        for pid in pids
    }
