"""One config object for every execution entry point.

Nine PRs of organic growth left ``SessionPool``, ``ParallelSweep``,
``run_matrix`` and four CLI subcommands each re-declaring the same ~20
execution knobs — and silently drifting (``run_matrix`` lacked
``retry``/``deadline``/``journal``/``resume``/``trace`` for two PRs
before anyone noticed).  :class:`SweepConfig` is the single source of
truth: a frozen dataclass holding every knob, with *all* validation in
:meth:`SweepConfig.__post_init__`, an argparse bridge
(:func:`add_sweep_options` / :meth:`SweepConfig.from_args`) shared by
``bench``/``sweep``/``scenarios``/``serve``, and back-compat shims in
the entry points that build a config from legacy keyword arguments
(warning on positional use).

The knobs themselves are documented once, on :class:`SweepConfig`'s
fields below; ``SessionPool``'s docstring points here.
"""

from __future__ import annotations

import argparse
import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Optional, Sequence, Tuple, Union

from repro.runtime.backend import TRACE_MODES, ExecutionBackend

__all__ = [
    "EXECUTORS",
    "SweepConfig",
    "add_sweep_options",
    "resolve_legacy_config",
]

#: The executors every entry point understands, in one place (the CLI
#: ``choices`` and the validation error both read from it).
EXECUTORS: Tuple[str, ...] = ("inline", "thread", "process")


@dataclass(frozen=True)
class SweepConfig:
    """Every execution knob, validated once.

    Args:
        backend: Execution backend applied inside each session (name or
            :class:`~repro.runtime.backend.ExecutionBackend` instance);
            forwarded to runners as ``backend=``.
        executor: ``"inline"`` (one warm driver, no worker overhead),
            ``"thread"`` or ``"process"`` for ``concurrent.futures``
            fan-out.
        workers: Worker count for the concurrent executors (default:
            all cores for processes, the executor default for threads).
        chunksize: Tasks shipped per process dispatch (default: auto
            via :func:`~repro.runtime.pool.auto_chunksize`).
        max_tasks_per_child: Recycle each process worker after this
            many tasks; ``None`` reuses workers for the whole sweep.
        warmup: Run the shared-crypto warm-up initializer in each
            process worker (False measures cold workers).
        material: Worker warm-up source — ``"compute"`` (default:
            rebuild locally), ``"disk"`` or ``"shared"`` (attach the
            preprocessing store).  All three produce value-identical
            caches, so trace digests never depend on the source.
        material_groups: Parameter sets published to process workers
            (default: the test group).
        adaptive: Re-plan the process chunk size mid-sweep from
            observed per-task wall time.
        online: Spend the preprocessed randomness pools inside trials.
            ``True`` partitions the pools across tasks by position; an
            explicit :class:`~repro.runtime.material.OnlinePlan` pins
            custom slot assignments.  Requires a pool-bearing
            ``material`` source, ``warmup``, and a non-thread executor.
        consume_forward: Offset the online plan by the persisted spend
            ledger so successive sweeps spend disjoint pool slices.
            Requires ``online``.
        batch_verify: Batch verification-heavy rounds through one
            random-linear-combination multi-exp per round.  ``True``
            uses the stock :class:`~repro.crypto.batch.BatchPolicy`;
            an explicit policy pins seed/threshold/trace behaviour.
            Not supported on the thread executor.
        retry: :class:`~repro.runtime.supervisor.RetryPolicy` for the
            supervised process fan-out.  Process executor only.
        deadline: :class:`~repro.runtime.supervisor.DeadlinePolicy`
            bounding each chunk's wait.  Process executor only.
        chaos: Fault-injection schedule — a
            :class:`~repro.runtime.supervisor.ChaosPlan` or a spec
            string (``"kill@3,exc@5:*"``).  Process executor only.
        journal: Path for a crash-safe
            :class:`~repro.runtime.supervisor.SweepJournal`.  Process
            executor only.
        resume: Resume from ``journal`` instead of starting fresh.
            Requires ``journal``.
        trace: Optional trace-mode override forwarded to runners
            (``"light"`` turns the EventLog off for throughput runs).
    """

    backend: Union[str, ExecutionBackend] = "pooled"
    executor: str = "inline"
    workers: Optional[int] = None
    chunksize: Optional[int] = None
    max_tasks_per_child: Optional[int] = None
    warmup: bool = True
    material: Optional[str] = None
    material_groups: Optional[Sequence[Any]] = None
    adaptive: bool = False
    online: Any = False
    consume_forward: bool = False
    batch_verify: Any = False
    retry: Optional[Any] = None
    deadline: Optional[Any] = None
    chaos: Optional[Any] = None
    journal: Optional[Any] = None
    resume: bool = False
    trace: Optional[str] = None

    def __post_init__(self) -> None:
        from repro.runtime.backend import get_backend
        from repro.runtime.material import MATERIAL_COMPUTE, resolve_material_source

        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be inline/thread/process, got {self.executor!r}"
            )
        if self.chunksize is not None and self.chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {self.chunksize}")
        if self.max_tasks_per_child is not None and self.max_tasks_per_child < 1:
            raise ValueError(
                f"max_tasks_per_child must be >= 1, got {self.max_tasks_per_child}"
            )
        get_backend(self.backend)  # unknown names raise here, not mid-sweep
        object.__setattr__(self, "warmup", bool(self.warmup))
        object.__setattr__(self, "material", resolve_material_source(self.material))
        if self.material_groups is not None:
            object.__setattr__(self, "material_groups", tuple(self.material_groups))
        object.__setattr__(self, "adaptive", bool(self.adaptive))
        object.__setattr__(self, "consume_forward", bool(self.consume_forward))
        if self.consume_forward and not self.online:
            raise ValueError(
                "consume_forward offsets the online plan by the spend "
                "ledger; it needs online=True (or an explicit plan)"
            )
        if self.batch_verify and self.executor == "thread":
            raise ValueError(
                "batch_verify is not supported on the thread executor "
                "(interleaved trials would race on the ambient policy)"
            )
        if isinstance(self.chaos, str):
            # Lazy import: supervisor imports the runtime at top level,
            # so the reverse edge must stay inside functions.
            from repro.runtime.supervisor import ChaosPlan

            object.__setattr__(self, "chaos", ChaosPlan.parse(self.chaos))
        object.__setattr__(self, "resume", bool(self.resume))
        supervised = (
            self.retry is not None
            or self.deadline is not None
            or self.chaos is not None
            or self.journal is not None
            or self.resume
        )
        if supervised and self.executor != "process":
            raise ValueError(
                "retry/deadline/chaos/journal/resume configure the "
                "supervised process fan-out; they need executor='process' "
                "(chaos faults would kill the coordinator inline, and a "
                "journal of an unsupervised run could not be trusted)"
            )
        if self.resume and self.journal is None:
            raise ValueError(
                "resume restores completed chunks from the sweep journal; "
                "pass journal=<path> (the file the interrupted run wrote)"
            )
        if self.trace is not None and self.trace not in TRACE_MODES:
            raise ValueError(
                f"trace must be one of {TRACE_MODES} (or None), got {self.trace!r}"
            )
        if self.online:
            if self.material == MATERIAL_COMPUTE:
                raise ValueError(
                    "online mode spends the preprocessing store: pick "
                    "material='disk' or 'shared' (compute has no pools)"
                )
            if self.executor == "thread":
                raise ValueError(
                    "online mode is not supported on the thread executor "
                    "(interleaved trials would share one ambient cursor)"
                )
            if not self.warmup:
                raise ValueError(
                    "online mode needs warmup=True (the warm-up attach is "
                    "what installs the pools)"
                )

    @property
    def batch_policy(self) -> Optional[Any]:
        """The resolved :class:`~repro.crypto.batch.BatchPolicy` (or None)."""
        if self.batch_verify is True:
            from repro.crypto.batch import BatchPolicy

            return BatchPolicy()
        return self.batch_verify or None

    def replace(self, **changes: Any) -> "SweepConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    @classmethod
    def knob_names(cls) -> Tuple[str, ...]:
        """Every knob's field name — the contract the entry points share."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_args(cls, args: argparse.Namespace, **overrides: Any) -> "SweepConfig":
        """Build a config from an :func:`add_sweep_options` namespace.

        Knobs a command chose not to expose fall back to the dataclass
        defaults (``getattr`` with default), so one builder serves
        ``bench``, ``sweep``, ``scenarios run`` and ``serve``.
        ``overrides`` win over the namespace — commands pass
        ``backend=args.backend`` (or a forced value) explicitly, since
        ``--backend`` semantics differ per command.
        """
        retry = deadline = None
        retry_attempts = getattr(args, "retry_attempts", None)
        if retry_attempts is not None:
            from repro.runtime.supervisor import RetryPolicy

            retry = RetryPolicy(max_attempts=retry_attempts)
        deadline_cap_s = getattr(args, "deadline_cap_s", None)
        if deadline_cap_s is not None:
            from repro.runtime.supervisor import DeadlinePolicy

            deadline = DeadlinePolicy(
                floor_s=min(deadline_cap_s, 60.0), cap_s=deadline_cap_s
            )
        chaos = getattr(args, "chaos", None)
        if chaos is not None:
            from repro.runtime.supervisor import ChaosPlan

            chaos = ChaosPlan.parse(chaos, hang_s=getattr(args, "chaos_hang_s", 30.0))
        kwargs = dict(
            executor=getattr(args, "executor", cls.executor),
            workers=getattr(args, "workers", None),
            chunksize=getattr(args, "chunksize", None),
            max_tasks_per_child=getattr(args, "max_tasks_per_child", None),
            warmup=not getattr(args, "no_warmup", False),
            material=getattr(args, "material", None),
            adaptive=getattr(args, "adaptive", False),
            online=getattr(args, "online", False),
            consume_forward=getattr(args, "consume_forward", False),
            batch_verify=getattr(args, "batch_verify", False),
            retry=retry,
            deadline=deadline,
            chaos=chaos,
            journal=getattr(args, "journal", None),
            resume=getattr(args, "resume", False),
            trace=getattr(args, "trace", None),
        )
        kwargs.update(overrides)
        return cls(**kwargs)


#: The pre-``SweepConfig`` positional parameter order of
#: ``SessionPool.__init__``/``ParallelSweep.__init__`` — the shim maps
#: stray positional arguments onto it so old call sites keep working
#: (with a :class:`DeprecationWarning`).
LEGACY_KNOB_ORDER: Tuple[str, ...] = (
    "backend",
    "executor",
    "workers",
    "chunksize",
    "max_tasks_per_child",
    "warmup",
    "material",
    "material_groups",
    "adaptive",
    "online",
    "consume_forward",
    "batch_verify",
    "retry",
    "deadline",
    "chaos",
    "journal",
    "resume",
    "trace",
)


def resolve_legacy_config(
    config: Optional[SweepConfig],
    legacy: Tuple[Any, ...],
    kwargs: "dict",
    *,
    defaults: Optional["dict"] = None,
    owner: str = "SessionPool",
) -> Tuple[SweepConfig, "dict"]:
    """Back-compat bridge from the legacy keyword API to ``config=``.

    ``legacy`` holds stray positional arguments (mapped onto
    :data:`LEGACY_KNOB_ORDER`, with a :class:`DeprecationWarning` —
    the old signature took every knob positionally, which is exactly
    the drift-prone surface this redesign retires).  Knob names are
    popped out of ``kwargs``; the remainder is returned untouched as
    runner kwargs.  ``defaults`` carries the owner's historical
    defaults (``ParallelSweep`` fans out to processes, ``SessionPool``
    stays inline).  Passing ``config=`` together with individual knobs
    is ambiguous and refused.
    """
    if len(legacy) > len(LEGACY_KNOB_ORDER):
        raise TypeError(
            f"{owner}() takes at most {len(LEGACY_KNOB_ORDER)} positional "
            f"execution knobs ({len(legacy)} given)"
        )
    if legacy:
        warnings.warn(
            f"passing {owner} execution knobs positionally is deprecated; "
            "pass config=SweepConfig(...) (or name the keywords)",
            DeprecationWarning,
            stacklevel=3,
        )
    positional = dict(zip(LEGACY_KNOB_ORDER, legacy))
    knob_kwargs = {
        name: kwargs.pop(name) for name in LEGACY_KNOB_ORDER if name in kwargs
    }
    overlap = sorted(set(positional) & set(knob_kwargs))
    if overlap:
        raise TypeError(f"{owner}() got multiple values for {', '.join(overlap)}")
    knobs = dict(defaults or {})
    knobs.update(positional)
    knobs.update(knob_kwargs)
    if config is not None:
        if positional or knob_kwargs:
            raise TypeError(
                f"{owner}: pass either config=SweepConfig(...) or individual "
                "execution knobs, not both"
            )
        return config, kwargs
    return SweepConfig(**knobs), kwargs


def add_sweep_options(
    parser: argparse.ArgumentParser,
    executor_default: str = "inline",
    trace_default: Optional[str] = "light",
) -> None:
    """Install the shared execution flags on ``parser``.

    One definition for ``bench``/``sweep``/``scenarios run``/``serve``:
    the flag set *is* :class:`SweepConfig`'s knob set, so subcommands
    cannot drift apart again.  ``executor_default``/``trace_default``
    carry the per-command defaults (bench and the matrix stay inline,
    the sweep fans out to processes).
    """
    parser.add_argument(
        "--executor", choices=EXECUTORS, default=executor_default,
        help="how sessions map to workers "
             f"(default: {executor_default})",
    )
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count (default: all cores for processes)")
    parser.add_argument(
        "--chunksize", type=int, default=None,
        help="tasks per process dispatch (default: auto, ~4 chunks/worker)",
    )
    parser.add_argument(
        "--max-tasks-per-child", type=int, default=None,
        help="recycle process workers after this many tasks",
    )
    parser.add_argument(
        "--no-warmup", action="store_true",
        help="skip the per-worker crypto warm-up initializer",
    )
    parser.add_argument(
        "--material", choices=("compute", "disk", "shared"), default="compute",
        help="worker crypto warm-up source: rebuild locally, attach the "
             "preprocessing store from disk, or attach shared memory "
             "(see 'repro material build')",
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help="re-plan the process chunk size mid-sweep from observed "
             "per-task wall time",
    )
    parser.add_argument(
        "--online", action="store_true",
        help="spend the preprocessed randomness pools inside trials "
             "(offline/online protocol mode; requires --material "
             "disk or shared — see 'repro material build --for-sweep')",
    )
    parser.add_argument(
        "--consume-forward", action="store_true",
        help="offset the online plan by the persisted spend ledger "
             "so successive runs spend disjoint pool slices (the "
             "plan's range is reserved in the ledger up front); "
             "without it, re-running --online re-spends from index 0 "
             "and warns when the ledger shows prior spends",
    )
    parser.add_argument(
        "--batch-verify", action="store_true",
        help="batch verification rounds inside trials through one "
             "random-linear-combination multi-exp per round "
             "(outputs identical to per-item verification; batched "
             "runs are digest-pinned via verify.batch trace events)",
    )
    parser.add_argument(
        "--trace", choices=TRACE_MODES, default=trace_default,
        help="trace mode inside sessions (light = no EventLog, faster)",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="record each completed chunk to a crash-safe JSONL journal "
             "so a killed sweep can pick up where it left off",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore completed chunks from --journal instead of "
             "re-running them (the journaled online plan is replayed "
             "verbatim, so no material is double-spent)",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="inject worker faults for resilience testing: "
             "comma-separated kind@task[:repeat] with kind in "
             "kill/exc/hang and ':*' for every dispatch "
             "(e.g. 'kill@3,exc@7:2'); recovery keeps the sweep "
             "digest-equal, so combine with --verify",
    )
    parser.add_argument(
        "--chaos-hang-s", type=float, default=30.0,
        help="how long an injected 'hang' fault sleeps (default: 30)",
    )
    parser.add_argument(
        "--retry-attempts", type=int, default=None,
        help="max attempts per chunk before bisecting to the poison "
             "task (default: 3)",
    )
    parser.add_argument(
        "--deadline-cap-s", type=float, default=None,
        help="hard upper bound on the per-chunk deadline in seconds: a "
             "chunk silent that long gets its pool respawned and is "
             "retried (default: none — the EWMA-derived deadline rules; "
             "set a few seconds to exercise hang recovery)",
    )
