"""Session pools: run N independent sessions through one driver.

Benchmarks and repeated-execution experiments (the [FKL08] workload) need
many independent executions — same protocol, different seeds or configs.
:class:`SessionPool` owns that loop: it maps a picklable *trial runner*
over a seed list, either inline (one driver, warm interpreter and crypto
tables) or via ``concurrent.futures`` workers, and collects uniform
:class:`TrialResult` records including a deterministic trace digest so
pooled and sequential runs can be byte-compared.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.runtime.backend import ExecutionBackend, get_backend


def trace_digest(log) -> str:
    """Deterministic SHA-256 digest of an :class:`~repro.uc.trace.EventLog`.

    Hashes the ``(seq, time, kind, source, detail)`` tuples in execution
    order; two sessions with byte-identical traces digest equally, across
    processes (event details are reprs of ints/bytes/strings/tuples only).

    Returns ``""`` for a trace-off (``light``) log — a constant hash there
    would make distinct executions compare equal, which is exactly the
    false positive a digest consumer must never see.
    """
    from repro.uc.trace import NullEventLog

    if isinstance(log, NullEventLog):
        return ""
    h = hashlib.sha256()
    for event in log:
        h.update(repr((event.seq, event.time, event.kind, event.source, event.detail)).encode())
    return h.hexdigest()


class TraceDigestUnavailable(ValueError):
    """Both sides of a digest comparison ran trace-off (``light``) mode.

    An empty digest means "no trace was kept", so ``"" == ""`` says
    nothing about the two executions — a comparison that would silently
    pass for *any* pair of runs must error instead.
    """


def compare_trace_digests(left: str, right: str) -> bool:
    """Compare two :func:`trace_digest` values, refusing vacuous equality.

    Returns whether the digests match.  A one-sided empty digest simply
    compares unequal (one run kept a trace, the other did not).

    Raises:
        TraceDigestUnavailable: both digests are empty — both executions
            ran trace-off, so equality would be meaningless.
    """
    if not left and not right:
        raise TraceDigestUnavailable(
            "both digests are empty (trace-off executions); rerun under a "
            "full-trace backend or compare protocol outputs instead"
        )
    return left == right


def reports_match(left: "PoolReport", right: "PoolReport") -> bool:
    """Seed-for-seed digest comparison of two pool reports.

    Raises:
        ValueError: the reports cover different numbers of trials.
        TraceDigestUnavailable: any trial pair is empty on both sides.
    """
    if len(left.results) != len(right.results):
        raise ValueError(
            f"reports cover {len(left.results)} vs {len(right.results)} trials"
        )
    return all(
        compare_trace_digests(a.digest, b.digest)
        for a, b in zip(left.results, right.results)
    )


@dataclass(frozen=True)
class TrialResult:
    """Picklable summary of one pooled session execution.

    Attributes:
        seed: The session seed this trial ran under.
        wall_time_s: Wall-clock seconds for build + run.
        rounds: Rounds the global clock advanced.
        messages: Total messages counted by the session metrics.
        digest: Trace digest (empty string when tracing is off).
        outputs: Compact, picklable summary of the protocol outputs.
    """

    seed: int
    wall_time_s: float
    rounds: int
    messages: int
    digest: str
    outputs: Any = None


def run_sbc_trial(
    seed: int,
    n: int = 3,
    mode: str = "hybrid",
    phi: int = 4,
    delta: int = 2,
    senders: int = 1,
    backend: Union[str, ExecutionBackend] = "pooled",
    trace: Optional[str] = None,
) -> TrialResult:
    """Run one full SBC session end to end and summarise it.

    Module-level (hence picklable) so :class:`SessionPool` can dispatch it
    to ``concurrent.futures`` process workers.
    """
    from repro.core.stacks import build_sbc_stack

    start = time.perf_counter()
    stack = build_sbc_stack(
        n=n, mode=mode, seed=seed, phi=phi, delta=delta, backend=backend, trace=trace
    )
    for index in range(senders):
        stack.parties[f"P{index % n}"].broadcast(f"m{seed}-{index}".encode())
    stack.run_until_delivery()
    elapsed = time.perf_counter() - start
    delivered = stack.delivered()
    return TrialResult(
        seed=seed,
        wall_time_s=elapsed,
        rounds=stack.session.metrics.get("rounds.advanced"),
        messages=stack.session.metrics.get("messages.total"),
        digest=trace_digest(stack.session.log),
        outputs=repr(delivered["P0"]),
    )


@dataclass
class PoolReport:
    """Aggregate view over one :meth:`SessionPool.run`."""

    backend: str
    executor: str
    wall_time_s: float
    results: List[TrialResult] = field(default_factory=list)

    @property
    def sessions(self) -> int:
        return len(self.results)

    @property
    def total_rounds(self) -> int:
        return sum(result.rounds for result in self.results)

    @property
    def total_messages(self) -> int:
        return sum(result.messages for result in self.results)

    def summary(self) -> Dict[str, Any]:
        """Uniform record for benchmark JSON emission."""
        return {
            "backend": self.backend,
            "executor": self.executor,
            "sessions": self.sessions,
            "wall_time_s": round(self.wall_time_s, 6),
            "rounds": self.total_rounds,
            "messages": self.total_messages,
        }


class SessionPool:
    """Run many independent sessions (different seeds) through one driver.

    Args:
        runner: ``runner(seed, **kwargs) -> TrialResult`` (or any picklable
            result).  Must be a module-level callable for process workers.
        backend: Execution backend applied inside each session; forwarded
            to ``runner`` as ``backend=`` unless the runner opts out.
        executor: ``"inline"`` (default: one warm driver, no worker
            overhead), ``"thread"`` or ``"process"`` for
            ``concurrent.futures`` fan-out.  Process workers only pay off
            with real cores and chunky sessions.
        workers: Worker count for the concurrent executors.
        trace: Optional trace-mode override forwarded to the runner
            (``"light"`` turns the EventLog off for throughput runs).
    """

    def __init__(
        self,
        runner: Callable[..., TrialResult] = run_sbc_trial,
        backend: Union[str, ExecutionBackend] = "pooled",
        executor: str = "inline",
        workers: Optional[int] = None,
        trace: Optional[str] = None,
        **runner_kwargs: Any,
    ) -> None:
        if executor not in ("inline", "thread", "process"):
            raise ValueError(f"executor must be inline/thread/process, got {executor!r}")
        self.runner = runner
        self.backend = get_backend(backend)
        self.executor = executor
        self.workers = workers
        self.trace = trace
        self.runner_kwargs = dict(runner_kwargs)

    def _call_kwargs(self) -> Dict[str, Any]:
        kwargs = dict(self.runner_kwargs)
        # Forward the backend *instance* (frozen dataclass, picklable), not
        # its name: with_trace() overrides and unregistered custom backends
        # must survive the trip into the runner.
        kwargs.setdefault("backend", self.backend)
        if self.trace is not None:
            kwargs.setdefault("trace", self.trace)
        return kwargs

    def run(self, seeds: Iterable[int]) -> PoolReport:
        """Execute one trial per seed; returns the aggregate report."""
        seeds = list(seeds)
        kwargs = self._call_kwargs()
        start = time.perf_counter()
        if self.executor == "inline":
            results = [self.runner(seed, **kwargs) for seed in seeds]
        else:
            import concurrent.futures as futures
            import functools

            pool_cls = (
                futures.ThreadPoolExecutor
                if self.executor == "thread"
                else futures.ProcessPoolExecutor
            )
            bound = functools.partial(self.runner, **kwargs)
            with pool_cls(max_workers=self.workers) as pool:
                results = list(pool.map(bound, seeds))
        elapsed = time.perf_counter() - start
        return PoolReport(
            backend=self.backend.name,
            executor=self.executor,
            wall_time_s=elapsed,
            results=results,
        )


def sequential_loop(
    seeds: Sequence[int],
    runner: Callable[..., TrialResult] = run_sbc_trial,
    **runner_kwargs: Any,
) -> PoolReport:
    """The naive baseline: a plain loop on the reference backend.

    This is what benchmarks compare :class:`SessionPool` against — each
    session cold-started under the ``sequential`` backend with full
    tracing, exactly as the pre-runtime engine ran them.
    """
    runner_kwargs.setdefault("backend", "sequential")
    start = time.perf_counter()
    results = [runner(seed, **runner_kwargs) for seed in seeds]
    elapsed = time.perf_counter() - start
    return PoolReport(
        backend="sequential",
        executor="loop",
        wall_time_s=elapsed,
        results=list(results),
    )
