"""Session pools: run N independent sessions through one driver.

Benchmarks and repeated-execution experiments (the [FKL08] workload) need
many independent executions — same protocol, different seeds or configs.
:class:`SessionPool` owns that loop: it maps a picklable *trial runner*
over a seed list, either inline (one driver, warm interpreter and crypto
tables) or via ``concurrent.futures`` workers, and collects uniform
:class:`TrialResult` records including a deterministic trace digest so
pooled and sequential runs can be byte-compared.
"""

from __future__ import annotations

import hashlib
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.runtime.backend import ExecutionBackend, get_backend
from repro.runtime.config import SweepConfig, resolve_legacy_config

# canonical_detail moved next to the Event type it renders; re-exported
# here (and from repro.runtime) for the existing import surface.
from repro.uc.trace import canonical_detail


def trace_digest(log) -> str:
    """Deterministic SHA-256 digest of an :class:`~repro.uc.trace.EventLog`.

    Hashes the ``(seq, time, kind, source, detail)`` tuples in execution
    order under :func:`canonical_detail`, so two sessions with identical
    traces digest equally even across processes with different hash seeds
    or dict insertion histories.

    Returns ``""`` for a trace-off (``light``) log — a constant hash there
    would make distinct executions compare equal, which is exactly the
    false positive a digest consumer must never see.
    """
    from repro.uc.trace import NullEventLog

    if isinstance(log, NullEventLog):
        return ""
    h = hashlib.sha256()
    for event in log:
        h.update(
            canonical_detail(
                (event.seq, event.time, event.kind, event.source, event.detail)
            ).encode()
        )
    return h.hexdigest()


class TraceDigestUnavailable(ValueError):
    """Both sides of a digest comparison ran trace-off (``light``) mode.

    An empty digest means "no trace was kept", so ``"" == ""`` says
    nothing about the two executions — a comparison that would silently
    pass for *any* pair of runs must error instead.
    """


def compare_trace_digests(left: str, right: str) -> bool:
    """Compare two :func:`trace_digest` values, refusing vacuous equality.

    Returns whether the digests match.  A one-sided empty digest simply
    compares unequal (one run kept a trace, the other did not).

    Raises:
        TraceDigestUnavailable: both digests are empty — both executions
            ran trace-off, so equality would be meaningless.
    """
    if not left and not right:
        raise TraceDigestUnavailable(
            "both digests are empty (trace-off executions); rerun under a "
            "full-trace backend or compare protocol outputs instead"
        )
    return left == right


def reports_match(left: "PoolReport", right: "PoolReport") -> bool:
    """Seed-for-seed digest comparison of two pool reports.

    Raises:
        ValueError: either report is empty (a zero-trial comparison would
            vacuously "match" any other empty run) or the reports cover
            different numbers of trials.
        TraceDigestUnavailable: any trial pair is empty on both sides.
    """
    if not left.results or not right.results:
        raise ValueError(
            "cannot compare empty pool reports (zero trials match vacuously)"
        )
    if len(left.results) != len(right.results):
        raise ValueError(
            f"reports cover {len(left.results)} vs {len(right.results)} trials"
        )
    return all(
        compare_trace_digests(a.digest, b.digest)
        for a, b in zip(left.results, right.results)
    )


@dataclass(frozen=True)
class TrialResult:
    """Picklable summary of one pooled session execution.

    Attributes:
        seed: The session seed this trial ran under.
        wall_time_s: Wall-clock seconds for build + run.
        rounds: Rounds the global clock advanced.
        messages: Total messages counted by the session metrics.
        digest: Trace digest (empty string when tracing is off).
        outputs: Compact, picklable summary of the protocol outputs.
        online: Pool-spend summary for online-mode trials (the cursor's
            fingerprint, reserved ranges and consumed/sampled counts);
            ``None`` for sample-per-call trials.
    """

    seed: int
    wall_time_s: float
    rounds: int
    messages: int
    digest: str
    outputs: Any = None
    online: Optional[Dict[str, Any]] = None


class TrialDisagreement(AssertionError):
    """Honest parties of one pooled trial delivered different outputs.

    Agreement is the protocol's core guarantee; a pooled sweep that only
    summarised one party's view could silently archive a disagreeing
    execution.  Trial runners call :func:`ensure_agreement` before
    summarising so such a trial aborts the sweep loudly instead.
    """


def ensure_agreement(delivered: Dict[str, Any], seed: Optional[int] = None) -> Any:
    """Assert every party's delivered view matches; return the common view.

    Args:
        delivered: pid -> delivered outputs (honest parties only).
        seed: Optional trial seed, included in the error message.

    Raises:
        ValueError: ``delivered`` is empty (no honest view to agree on).
        TrialDisagreement: at least two parties delivered different views.
    """
    if not delivered:
        raise ValueError("no delivered views: cannot check agreement")
    items = sorted(delivered.items())
    reference_pid, reference = items[0]
    disagreeing = {
        pid: view for pid, view in items[1:] if view != reference
    }
    if disagreeing:
        trial = f" (seed={seed})" if seed is not None else ""
        raise TrialDisagreement(
            f"honest parties disagree{trial}: {reference_pid}={reference!r} "
            f"vs {disagreeing!r}"
        )
    return reference


#: Trace-event kind under which a trial records its pool consumption.
ONLINE_EVENT_KIND = "online.spend"


def record_online_spend(session, cursor) -> Optional[Dict[str, Any]]:
    """Log one trial's pool consumption into its execution trace.

    The spend summary (pool fingerprint, reserved cursor ranges,
    consumed/sampled counts) becomes an ordinary trace event, so the
    trial's digest pins *which* pool entries the run spent — two
    pool-consuming runs only digest-equal when they spent the same
    entries of the same material, and a pool-consuming run can never
    digest-equal a sample-per-call run.  Returns the summary for the
    :class:`TrialResult`; ``cursor=None`` (an offline trial) records
    nothing and returns ``None``, so runners need no conditional.  A
    ``light``-trace session records nothing (its digest is empty
    anyway) but still returns the summary.
    """
    if cursor is None:
        return None
    summary = cursor.spend_summary()
    session.log.record(
        time=session.clock.time,
        kind=ONLINE_EVENT_KIND,
        source="runtime.material",
        detail=summary,
    )
    return summary


def run_sbc_trial(
    seed: int,
    n: int = 3,
    mode: str = "hybrid",
    phi: int = 4,
    delta: int = 2,
    senders: int = 1,
    backend: Union[str, ExecutionBackend] = "pooled",
    trace: Optional[str] = None,
    online: Optional[Any] = None,
    batch: Optional[Any] = None,
) -> TrialResult:
    """Run one full SBC session end to end and summarise it.

    Module-level (hence picklable) so :class:`SessionPool` can dispatch it
    to ``concurrent.futures`` process workers.  With ``online`` (an
    :class:`~repro.runtime.material.OnlinePlan`) the trial spends its
    reserved slice of the preprocessed randomness pools and records the
    consumed cursor ranges in the trace.  With ``batch`` (a
    :class:`~repro.crypto.batch.BatchPolicy`) verification-heavy rounds
    batch their checks through one random-linear-combination multi-exp.
    """
    from repro.core.stacks import build_sbc_stack
    from repro.crypto.batch import batching
    from repro.crypto.randomness import spending

    cursor = online.open(seed) if online is not None else None
    start = time.perf_counter()
    with spending(cursor), batching(batch):
        stack = build_sbc_stack(
            n=n, mode=mode, seed=seed, phi=phi, delta=delta, backend=backend,
            trace=trace,
        )
        for index in range(senders):
            stack.parties[f"P{index % n}"].broadcast(f"m{seed}-{index}".encode())
        stack.run_until_delivery()
    online_record = record_online_spend(stack.session, cursor)
    elapsed = time.perf_counter() - start
    delivered = stack.delivered()
    honest_views = {
        pid: batch
        for pid, batch in delivered.items()
        if not stack.session.is_corrupted(pid)
    }
    agreed = ensure_agreement(honest_views, seed=seed)
    return TrialResult(
        seed=seed,
        wall_time_s=elapsed,
        rounds=stack.session.metrics.get("rounds.advanced"),
        messages=stack.session.metrics.get("messages.total"),
        digest=trace_digest(stack.session.log),
        outputs=repr(agreed),
        online=online_record,
    )


def run_voting_trial(
    seed: int,
    voters: int = 3,
    candidates: Tuple[str, ...] = ("yes", "no"),
    mode: str = "hybrid",
    backend: Union[str, ExecutionBackend] = "pooled",
    trace: Optional[str] = None,
    online: Optional[Any] = None,
    batch: Optional[Any] = None,
) -> TrialResult:
    """Run one self-tallying election end to end and summarise it.

    The election workload is the sweep engine's proof-of-spend: every
    ballot carries a disjunctive Σ-protocol validity proof, so each
    trial burns real nonces — sampled per call by default, spent from
    the trial's reserved pool slice under an
    :class:`~repro.runtime.material.OnlinePlan`.  Module-level (hence
    picklable) for process fan-out, like :func:`run_sbc_trial`.  With
    ``batch`` (a :class:`~repro.crypto.batch.BatchPolicy`) the tally
    round verifies certificates and ballot proofs through one
    random-linear-combination batch per voter.
    """
    from repro.core.stacks import build_voting_stack
    from repro.crypto.batch import batching
    from repro.crypto.randomness import spending

    candidates = tuple(candidates)
    cursor = online.open(seed) if online is not None else None
    start = time.perf_counter()
    with spending(cursor), batching(batch):
        stack = build_voting_stack(
            voters=voters, mode=mode, seed=seed, candidates=candidates,
            backend=backend, trace=trace,
        )
        if mode == "ideal":
            stack.service.init()
        else:
            for authority in stack.authorities.values():
                authority.deal()
            stack.run_rounds(1)
        for index in range(voters):
            stack.parties[f"V{index}"].vote(candidates[index % len(candidates)])
        stack.run_until_result()
    online_record = record_online_spend(stack.session, cursor)
    elapsed = time.perf_counter() - start
    honest_tallies = {
        pid: tuple(sorted(tally.items()))
        for pid, tally in stack.results().items()
        if not stack.session.is_corrupted(pid)
    }
    agreed = ensure_agreement(honest_tallies, seed=seed)
    return TrialResult(
        seed=seed,
        wall_time_s=elapsed,
        rounds=stack.session.metrics.get("rounds.advanced"),
        messages=stack.session.metrics.get("messages.total"),
        digest=trace_digest(stack.session.log),
        outputs=repr(agreed),
        online=online_record,
    )


@dataclass
class PoolReport:
    """Aggregate view over one :meth:`SessionPool.run`."""

    backend: str
    executor: str
    wall_time_s: float
    results: List[TrialResult] = field(default_factory=list)
    #: Worker count / chunk size actually used (None for inline runs).
    workers: Optional[int] = None
    chunksize: Optional[int] = None
    #: Where worker crypto caches came from (compute/disk/shared).
    material_source: Optional[str] = None
    #: Per-wave re-chunking trace for adaptive sweeps (None otherwise).
    adaptivity: Optional[List[Dict[str, Any]]] = None
    #: Aggregate pool consumption for online-mode sweeps (None otherwise).
    online_spend: Optional[Dict[str, int]] = None
    #: The resolved :class:`~repro.runtime.material.OnlinePlan` the sweep
    #: executed (None for offline sweeps).  Verification replays must
    #: reuse this exact plan: re-planning a consume-forward sweep would
    #: read the already-advanced ledger and reserve *different* slices,
    #: so the replay would spend different absolute entries and the
    #: digest check could never pass.  Not part of :meth:`summary`.
    online_plan: Optional[Any] = None
    #: Degradation counters from the supervised process fan-out
    #: (retries/respawns/quarantined + events; see
    #: :class:`~repro.runtime.supervisor.SupervisorStats`).  Always set
    #: for process runs — zeros are the honest "nothing degraded" —
    #: and ``None`` for inline/thread executors.
    supervision: Optional[Dict[str, Any]] = None
    #: Trials restored from a :class:`~repro.runtime.supervisor.SweepJournal`
    #: instead of executed (``repro sweep --resume``).
    resumed: int = 0

    @property
    def sessions(self) -> int:
        return len(self.results)

    @property
    def total_rounds(self) -> int:
        return sum(result.rounds for result in self.results)

    @property
    def total_messages(self) -> int:
        return sum(result.messages for result in self.results)

    def summary(self) -> Dict[str, Any]:
        """Uniform record for benchmark JSON emission.

        Raises:
            ValueError: the report is empty — ``sessions=0`` rows have
                repeatedly masked sweeps that silently ran nothing.
        """
        if not self.results:
            raise ValueError("empty pool report: the sweep executed no trials")
        record = {
            "backend": self.backend,
            "executor": self.executor,
            "sessions": self.sessions,
            "wall_time_s": round(self.wall_time_s, 6),
            "rounds": self.total_rounds,
            "messages": self.total_messages,
        }
        if self.workers is not None:
            record["workers"] = self.workers
        if self.chunksize is not None:
            record["chunksize"] = self.chunksize
        if self.material_source is not None:
            record["material_source"] = self.material_source
        if self.adaptivity is not None:
            # The full per-wave trace lives on ``adaptivity`` (and in
            # SweepPlan.summary(adaptivity=...)); the flat record only
            # says how many times the sweep re-chunked.
            record["adaptive_waves"] = len(self.adaptivity)
        if self.online_spend is not None:
            record["online"] = True
            record.update(self.online_spend)
        if self.supervision is not None:
            # Degradation is part of the honest record: a reference-perf
            # row that silently retried its way to the finish line is
            # not comparable to a clean one.
            record["retries"] = int(self.supervision.get("retries", 0))
            record["respawns"] = int(self.supervision.get("respawns", 0))
            record["quarantined"] = int(self.supervision.get("quarantined", 0))
        if self.resumed:
            record["resumed"] = self.resumed
        return record


#: Target task chunks per worker for auto-chunked process fan-out; a few
#: chunks per worker amortise IPC while still balancing uneven trials.
CHUNKS_PER_WORKER = 4


def resolve_workers(workers: Optional[int]) -> int:
    """Effective worker count: the explicit value or every available core."""
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return workers
    return os.cpu_count() or 1


def auto_chunksize(tasks: int, workers: int) -> int:
    """Chunk size yielding ~:data:`CHUNKS_PER_WORKER` chunks per worker.

    One task per IPC round-trip (``chunksize=1``) dominates small-session
    sweeps with pickling overhead; one chunk per worker loses load
    balancing.  The middle ground ships ceil(tasks / (workers * 4)) tasks
    per dispatch.
    """
    if tasks <= 0:
        return 1
    return max(1, -(-tasks // (max(1, workers) * CHUNKS_PER_WORKER)))


def _warm_worker(
    backend: Union[str, ExecutionBackend, None] = None,
    material: Any = None,
    arith: Optional[str] = None,
) -> None:
    """Process-pool initializer: pre-build shared per-process caches.

    Runs once per worker process via the backend's
    :meth:`~repro.runtime.backend.ExecutionBackend.warm_up` hook, so every
    trial dispatched to the worker finds the fixed-base window tables and
    encoding caches already populated instead of paying table construction
    inside its first session.  With a published
    :class:`~repro.runtime.material.MaterialHandle` the tables are
    *attached* (shared memory or mmap) instead of recomputed, which takes
    cold-start warm-up off the sweep's critical path.  ``arith`` carries
    the parent's arithmetic-backend selection into the worker (values are
    identical across backends, so a worker that cannot honour it warns
    and falls back rather than failing the sweep).  Module-level (hence
    picklable) by construction.
    """
    get_backend(backend).warm_up(material, arith=arith)


# -- adaptive chunking -------------------------------------------------------

#: Wall-clock seconds one dispatched chunk should aim to cost.  Scenario
#: cells vary ~10x between the cheapest (`ubc`) and the dearest
#: (`sbc-composed`), so a fixed chunk size either starves workers on
#: heavy cells or drowns light ones in IPC; the re-planner sizes chunks
#: so each dispatch stays near this budget.
ADAPTIVE_TARGET_CHUNK_S = 0.2

#: EWMA smoothing factor for observed per-task wall time.
ADAPTIVE_EWMA_ALPHA = 0.5

#: Bound on how far one re-plan may move the chunk size (x or /).
ADAPTIVE_MAX_STEP = 4

#: Chunks per worker dispatched between re-plans; each wave is a small
#: barrier, so a couple of chunks per worker keeps stragglers short while
#: giving the EWMA enough samples to be worth re-planning on.
ADAPTIVE_CHUNKS_PER_WAVE = 2


def _observed_task_seconds(results: Sequence[Any], elapsed: float) -> float:
    """Mean per-task seconds for one wave, preferring in-task timings.

    :class:`TrialResult` carries the task's own build+run wall time,
    which excludes IPC and pickling; runners returning something else
    fall back to wave wall time over task count.
    """
    timings = [
        result.wall_time_s
        for result in results
        if getattr(result, "wall_time_s", None) is not None
    ]
    if timings:
        return sum(timings) / len(timings)
    return elapsed / max(len(results), 1)


def _replan_chunksize(
    current: int,
    ewma_task_s: float,
    max_tasks_per_child: Optional[int],
) -> int:
    """Next wave's chunk size, bounded so one re-plan can't overshoot.

    The move is clamped to a factor of :data:`ADAPTIVE_MAX_STEP` per
    wave, and under worker recycling the size may only shrink — the
    recycle bound was translated into chunk units from the size the pool
    started with, so growing a chunk later could push one worker past
    its per-worker trial budget.
    """
    if ewma_task_s <= 0:
        return current
    desired = max(1, round(ADAPTIVE_TARGET_CHUNK_S / ewma_task_s))
    bounded = max(
        max(1, current // ADAPTIVE_MAX_STEP),
        min(desired, current * ADAPTIVE_MAX_STEP),
    )
    if max_tasks_per_child is not None:
        bounded = min(bounded, current)
    return bounded


class SessionPool:
    """Run many independent sessions (different seeds) through one driver.

    Args:
        runner: ``runner(seed, **kwargs) -> TrialResult`` (or any picklable
            result).  Must be a module-level callable for process workers.
        config: A :class:`~repro.runtime.config.SweepConfig` holding
            every execution knob (backend, executor, workers, material,
            online, supervision, ...) — see that class for the full
            reference; validation lives in its ``__post_init__``.
        **runner_kwargs: Forwarded verbatim to ``runner`` on every
            trial.  For back compatibility the execution knobs are also
            accepted as individual keywords (``executor="process"``,
            ``online=True``, ...); they build a config internally.
            Passing them positionally is deprecated and warns.
    """

    def __init__(
        self,
        runner: Callable[..., TrialResult] = run_sbc_trial,
        *legacy: Any,
        config: Optional[SweepConfig] = None,
        **runner_kwargs: Any,
    ) -> None:
        config, runner_kwargs = resolve_legacy_config(
            config,
            legacy,
            runner_kwargs,
            defaults={"backend": "pooled", "executor": "inline"},
            owner="SessionPool",
        )
        self.config = config
        self.runner = runner
        self.backend = get_backend(config.backend)
        self.executor = config.executor
        self.workers = config.workers
        self.chunksize = config.chunksize
        self.max_tasks_per_child = config.max_tasks_per_child
        self.warmup = config.warmup
        self.material = config.material
        self.material_groups = config.material_groups
        self.adaptive = config.adaptive
        self.online = config.online
        self.consume_forward = config.consume_forward
        self.batch_policy = config.batch_policy
        self.retry_policy = config.retry
        self.deadline_policy = config.deadline
        self.chaos_plan = config.chaos
        self.journal = config.journal
        self.resume = config.resume
        self.trace = config.trace
        self.runner_kwargs = dict(runner_kwargs)

    def _online_plan(self, seeds: Sequence[Any]) -> Optional[Any]:
        """Resolve this sweep's :class:`OnlinePlan` (or ``None``).

        ``online=True`` plans positionally over ``seeds`` against the
        first material group; an explicit plan passes through untouched
        (the caller owns slot assignment — and the reference replay of a
        ``verify()`` must reuse the sweep's exact plan).
        """
        if not self.online:
            return None
        from repro.runtime.material import OnlinePlan

        if isinstance(self.online, OnlinePlan):
            return self.online
        from repro.crypto.groups import TEST_GROUP

        group = (self.material_groups or (TEST_GROUP,))[0]
        return OnlinePlan.for_tasks(
            seeds, group=group, consume_forward=self.consume_forward
        )

    @staticmethod
    def _spend_totals(results: Sequence[Any]) -> Tuple[Dict[str, int], int, int]:
        """Traffic sums plus observed reach over a set of trial results."""
        totals = {
            "nonces_spent": 0,
            "feldman_spent": 0,
            "nonces_sampled": 0,
            "feldman_sampled": 0,
        }
        nonce_reach = 0
        feldman_reach = 0
        for result in results:
            record = getattr(result, "online", None)
            if record:
                for key in totals:
                    totals[key] += int(record.get(key, 0))
                nonce_range = record.get("nonce_range") or (0, 0)
                feldman_range = record.get("feldman_range") or (0, 0)
                spent = int(record.get("nonces_spent", 0))
                if spent:
                    nonce_reach = max(nonce_reach, int(nonce_range[0]) + spent)
                spent = int(record.get("feldman_spent", 0))
                if spent:
                    feldman_reach = max(
                        feldman_reach, int(feldman_range[0]) + spent
                    )
        return totals, nonce_reach, feldman_reach

    def _aggregate_online(
        self,
        plan: Any,
        results: Sequence[Any],
        ledgered: Optional[Sequence[Any]] = None,
    ) -> Dict[str, int]:
        """Sum per-trial spend records and ledger them against the store.

        Besides the traffic sums, the ledger gets the *observed reach*:
        the largest absolute pool index any trial actually consumed
        through (its reserved range's start plus what it spent).  High
        marks merge by ``max``, so for consume-forward sweeps this never
        exceeds the reservation made at plan time, and for classic
        sweeps it records how deep into the pool slot-0-based plans have
        actually reached — the number ``inspect`` subtracts to report
        true remaining capacity.

        ``ledgered`` restricts what is *recorded* (not what is summed
        for the report): a resumed sweep reports totals over every
        trial, but only its freshly-executed trials may ledger spend —
        the journaled ones were ledgered by the run that executed them,
        and re-adding their traffic would double-count it.
        """
        totals, _, _ = self._spend_totals(results)
        recorded, nonce_reach, feldman_reach = self._spend_totals(
            results if ledgered is None else ledgered
        )
        try:
            from repro.runtime.material import MaterialStore

            MaterialStore().record_spend(
                plan.fingerprint,
                nonces=recorded["nonces_spent"],
                feldman=recorded["feldman_spent"],
                nonce_high=nonce_reach,
                feldman_high=feldman_reach,
                material_seed=plan.material_seed,
            )
        except OSError as exc:
            # Advisory bookkeeping must never fail a finished sweep — but
            # a ledger that silently stops advancing breaks the next
            # consume-forward run's disjointness, so say it degraded.
            warnings.warn(
                f"could not record online spend in the material ledger ({exc}); "
                "the next consume-forward sweep may re-spend these pool slices",
                RuntimeWarning,
                stacklevel=2,
            )
        return totals

    def _call_kwargs(self) -> Dict[str, Any]:
        kwargs = dict(self.runner_kwargs)
        # Forward the backend *instance* (frozen dataclass, picklable), not
        # its name: with_trace() overrides and unregistered custom backends
        # must survive the trip into the runner.
        kwargs.setdefault("backend", self.backend)
        if self.trace is not None:
            kwargs.setdefault("trace", self.trace)
        return kwargs

    def _process_map(
        self,
        bound: Callable[..., TrialResult],
        seeds: Sequence[int],
        chunksize: int,
        workers: int,
        material_handle: Any = None,
        adaptivity: Optional[List[Dict[str, Any]]] = None,
        journal: Optional[Any] = None,
    ) -> Tuple[List[Optional[TrialResult]], Any]:
        """Supervised chunked process fan-out; input order preserved.

        Every chunk is dispatched via ``apply_async`` under a
        :class:`~repro.runtime.supervisor.Supervisor` with a bounded
        per-chunk wait, so a SIGKILL-ed, hung or crashing worker costs
        a retry (and possibly a pool respawn or a quarantined task),
        never the sweep.  Worker recycling stays on
        ``multiprocessing.Pool``'s ``maxtasksperchild`` — an exact
        per-worker bound, available on every supported Python, unlike
        ``ProcessPoolExecutor(max_tasks_per_child=...)`` (3.11+, and
        observed to deadlock on recycle in 3.11.7).  The pool counts
        one ``apply_async`` chunk as one task, so the bound is
        expressed in chunk units; run() already clamps the chunk size
        to ``max_tasks_per_child``, and adaptive re-plans only ever
        shrink chunks under recycling (see ``_replan_chunksize``), so
        the bound holds for every wave.

        Returns ``(results, stats)``; quarantined tasks appear as
        ``None`` at their position.
        """
        from repro.crypto.groups import get_arith_backend
        from repro.runtime.supervisor import Supervisor

        initargs = (self.backend, material_handle, get_arith_backend().name)
        chunks_per_child: Optional[int] = None
        if self.max_tasks_per_child is not None:
            chunks_per_child = max(1, self.max_tasks_per_child // chunksize)
        supervisor = Supervisor(
            workers=workers,
            initializer=_warm_worker if self.warmup else None,
            initargs=initargs if self.warmup else (),
            max_chunks_per_child=chunks_per_child,
            retry=self.retry_policy,
            deadline=self.deadline_policy,
            chaos=self.chaos_plan,
            on_chunk=journal.append_chunk if journal is not None else None,
        )
        try:
            results = self._drive_map(
                lambda tasks, size: supervisor.map(bound, tasks, size),
                seeds, chunksize, workers, adaptivity,
            )
        finally:
            supervisor.close()
        return results, supervisor.stats

    def _drive_map(
        self,
        mapper: Callable[[Sequence[int], int], List[TrialResult]],
        seeds: Sequence[int],
        chunksize: int,
        workers: int,
        adaptivity: Optional[List[Dict[str, Any]]],
    ) -> List[TrialResult]:
        """One map call, or adaptive waves of them over a live pool.

        Adaptive mode dispatches the task list in waves of a few chunks
        per worker against the *same* pool (workers stay warm), measures
        each wave's per-task wall time, and re-plans the next wave's
        chunk size toward :data:`ADAPTIVE_TARGET_CHUNK_S`.  Waves run in
        task order and ``map`` preserves order within a wave, so results
        are position-identical to the single-map path — digest
        comparisons never see the difference.
        """
        if adaptivity is None:
            return mapper(seeds, chunksize)
        results: List[TrialResult] = []
        ewma: Optional[float] = None
        index = 0
        wave = 0
        while index < len(seeds):
            width = max(1, chunksize * workers * ADAPTIVE_CHUNKS_PER_WAVE)
            wave_tasks = seeds[index : index + width]
            start = time.perf_counter()
            wave_results = mapper(wave_tasks, chunksize)
            elapsed = time.perf_counter() - start
            results.extend(wave_results)
            index += len(wave_tasks)
            observed = _observed_task_seconds(wave_results, elapsed)
            ewma = (
                observed
                if ewma is None
                else ADAPTIVE_EWMA_ALPHA * observed + (1 - ADAPTIVE_EWMA_ALPHA) * ewma
            )
            adaptivity.append(
                {
                    "wave": wave,
                    "tasks": len(wave_tasks),
                    "chunksize": chunksize,
                    "ewma_task_s": round(ewma, 6),
                }
            )
            wave += 1
            if index < len(seeds):
                chunksize = _replan_chunksize(
                    chunksize, ewma, self.max_tasks_per_child
                )
        return results

    def _journal_config(self, seeds: Sequence[Any]) -> Dict[str, Any]:
        """What must match between a journaled run and its resume.

        Anything digest-relevant is pinned (runner, backend, trace,
        task list, protocol-mode flags, the runner kwargs via a
        canonical digest); execution-shape knobs (workers, chunksize)
        are deliberately absent — resuming on a differently-sized box
        is the point of the journal.
        """
        return {
            "runner": f"{self.runner.__module__}.{self.runner.__qualname__}",
            "backend": self.backend.name,
            "trace": self.trace,
            "online": bool(self.online),
            "consume_forward": self.consume_forward,
            "batch_verify": self.batch_policy is not None,
            "kwargs_digest": hashlib.sha256(
                canonical_detail(self.runner_kwargs).encode()
            ).hexdigest(),
            "tasks": list(seeds),
        }

    def _journal_open(
        self, seeds: Sequence[Any]
    ) -> Tuple[Optional[Any], Dict[Any, TrialResult], Optional[Any], bool]:
        """Open/resume the sweep journal; resolve the online plan.

        Returns ``(journal, resumed_results, online_plan, planned)``.
        On resume the journaled plan is reconstructed and replayed
        verbatim — re-planning would re-read the ledger the original
        run already advanced (and re-reserve a consume-forward range),
        a double-spend.  ``planned`` is False exactly then, telling
        run() the plan was restored, not freshly reserved.
        """
        if self.journal is None:
            return None, {}, self._online_plan(seeds), True
        from repro.runtime.supervisor import (
            SweepJournal,
            plan_from_record,
            plan_to_record,
            trial_result_from_record,
        )

        journal = SweepJournal(self.journal)
        if not self.resume:
            online_plan = self._online_plan(seeds)
            journal.begin(
                self._journal_config(seeds),
                plan_to_record(online_plan) if online_plan is not None else None,
            )
            return journal, {}, online_plan, True
        header, records = journal.load()
        expected = self._journal_config(seeds)
        if header.get("config") != expected:
            raise ValueError(
                f"sweep journal {journal.path} was written by a different "
                "sweep configuration; resume refused (splicing its results "
                "into this run would mix workloads)"
            )
        plan_record = header.get("plan")
        online_plan = (
            plan_from_record(plan_record) if plan_record is not None else None
        )
        resumed: Dict[Any, TrialResult] = {}
        for record in records:
            for task, payload in zip(record["tasks"], record["results"]):
                resumed[task] = trial_result_from_record(payload)
        return journal, resumed, online_plan, False

    def run(self, seeds: Iterable[int]) -> PoolReport:
        """Execute one trial per seed; returns the aggregate report.

        Results always come back in seed order, whatever the executor,
        so seed-for-seed digest comparison against an inline run needs
        no re-sorting.  Under the supervised process executor a
        quarantined poison task is *omitted* from the results (its
        identity lands in ``report.supervision["quarantined_tasks"]``)
        — the honest partial report the sweep completes with instead
        of crashing.
        """
        from repro.runtime.material import publish_material

        seeds = list(seeds)
        kwargs = self._call_kwargs()
        journal, resumed, online_plan, _ = self._journal_open(seeds)
        if online_plan is not None:
            kwargs["online"] = online_plan
        if self.batch_policy is not None:
            kwargs["batch"] = self.batch_policy
        used_workers: Optional[int] = None
        used_chunksize: Optional[int] = None
        adaptivity: Optional[List[Dict[str, Any]]] = None
        supervision: Optional[Dict[str, Any]] = None
        fresh_results: Optional[List[TrialResult]] = None
        start = time.perf_counter()
        if self.executor == "inline":
            if self.material != "compute" and self.warmup:
                self.backend.warm_up(self.material)
            results = [self.runner(seed, **kwargs) for seed in seeds]
        else:
            import functools

            bound = functools.partial(self.runner, **kwargs)
            if self.executor == "thread":
                import concurrent.futures as futures

                if self.material != "compute" and self.warmup:
                    # Threads share this process's caches: attach once here.
                    self.backend.warm_up(self.material)
                used_workers = self.workers
                with futures.ThreadPoolExecutor(max_workers=self.workers) as pool:
                    # Thread trials run in-process: no worker can be
                    # OOM-killed or leak, so the unbounded map is the
                    # honest simple thing.  # repro: allow[RPR007]
                    results = list(pool.map(bound, seeds))
            else:
                used_workers = resolve_workers(self.workers)
                used_chunksize = self.chunksize or auto_chunksize(
                    len(seeds), used_workers
                )
                if self.max_tasks_per_child is not None:
                    # A chunk larger than the recycle bound could never be
                    # dispatched without exceeding it.
                    used_chunksize = min(used_chunksize, self.max_tasks_per_child)
                if self.adaptive:
                    adaptivity = []
                remaining = [seed for seed in seeds if seed not in resumed]
                mapped: List[Optional[TrialResult]] = []
                if remaining:
                    # No warm-up means no attach: publishing material that
                    # no worker will read would waste the offline build
                    # inside the timed region and misreport the source.
                    if self.warmup:
                        handle, release = publish_material(
                            self.material, groups=self.material_groups
                        )
                    else:
                        handle, release = None, lambda: None
                    try:
                        mapped, stats = self._process_map(
                            bound, remaining, used_chunksize, used_workers,
                            material_handle=handle, adaptivity=adaptivity,
                            journal=journal,
                        )
                    finally:
                        release()
                    supervision = stats.to_record()
                else:
                    from repro.runtime.supervisor import SupervisorStats

                    supervision = SupervisorStats().to_record()
                fresh_results = [result for result in mapped if result is not None]
                fresh_iter = iter(mapped)
                results = []
                for seed in seeds:
                    if seed in resumed:
                        results.append(resumed[seed])
                    else:
                        result = next(fresh_iter)
                        if result is not None:
                            results.append(result)
        elapsed = time.perf_counter() - start
        # Process reports always say where worker caches came from;
        # inline/thread runs only mention material when they attached any,
        # and a warmup-less sweep attached nothing whatever was asked.
        material_source: Optional[str] = self.material
        if not self.warmup:
            material_source = "compute" if self.executor == "process" else None
        elif self.executor != "process" and self.material == "compute":
            material_source = None
        online_spend = (
            self._aggregate_online(online_plan, results, ledgered=fresh_results)
            if online_plan is not None
            else None
        )
        return PoolReport(
            backend=self.backend.name,
            executor=self.executor,
            wall_time_s=elapsed,
            results=results,
            workers=used_workers,
            chunksize=used_chunksize,
            material_source=material_source,
            adaptivity=adaptivity,
            online_spend=online_spend,
            online_plan=online_plan,
            supervision=supervision,
            resumed=len(resumed),
        )


def sequential_loop(
    seeds: Sequence[int],
    runner: Callable[..., TrialResult] = run_sbc_trial,
    **runner_kwargs: Any,
) -> PoolReport:
    """The naive baseline: a plain loop on the reference backend.

    This is what benchmarks compare :class:`SessionPool` against — each
    session cold-started under the ``sequential`` backend with full
    tracing, exactly as the pre-runtime engine ran them.
    """
    runner_kwargs.setdefault("backend", "sequential")
    start = time.perf_counter()
    results = [runner(seed, **runner_kwargs) for seed in seeds]
    elapsed = time.perf_counter() - start
    return PoolReport(
        backend="sequential",
        executor="loop",
        wall_time_s=elapsed,
        results=list(results),
    )
