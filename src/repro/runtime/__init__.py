"""Pluggable UC execution runtime.

The runtime separates *what* a protocol does (parties, functionalities,
the clock — :mod:`repro.uc`) from *how* an execution is driven:

* :class:`~repro.runtime.backend.ExecutionBackend` — a named bundle of
  round driver, scheduler drain policy and trace mode (``sequential``,
  ``pooled``, ``batched``);
* :class:`~repro.runtime.driver.RoundDriver` — the round loop behind
  :class:`~repro.uc.environment.Environment` and every stack builder;
* :class:`~repro.runtime.scheduler.BatchScheduler` — per-round message
  queues drained in batches instead of per-message callbacks;
* :class:`~repro.runtime.pool.SessionPool` — N independent sessions
  (seed sweeps, repeated executions) through one driver, inline or via
  ``concurrent.futures`` workers with chunked dispatch and per-worker
  crypto warm-up;
* :class:`~repro.runtime.sweep.ParallelSweep` — the multi-core sweep
  driver: plans worker/chunk shape for any ``(runner, task list)``
  workload and verifies digest equality against the inline reference;
* :class:`~repro.runtime.supervisor.Supervisor` — the fault-tolerant
  process fan-out underneath it: per-chunk deadlines, deterministic
  retry/backoff, pool respawn on dead workers, poison-task quarantine,
  the crash-safe :class:`~repro.runtime.supervisor.SweepJournal` and
  the :class:`~repro.runtime.supervisor.ChaosPlan` fault harness;
* :class:`~repro.runtime.config.SweepConfig` — the one frozen config
  object every entry point (``SessionPool``, ``ParallelSweep``,
  ``run_matrix``, ``AsyncSessionHost``, the CLI) builds its execution
  knobs from;
* :class:`~repro.runtime.aio.AsyncSessionHost` — service mode: N
  concurrent sessions on one asyncio loop under the event-driven
  ``async`` backend (:class:`~repro.runtime.aio.AsyncRoundDriver`),
  digest-equal to ``sequential``.

The ``sequential`` backend is the default everywhere and reproduces the
pre-runtime engine byte-for-byte (same seed, same trace).
"""

from repro.runtime.aio import (
    ASYNC,
    AsyncExecutionBackend,
    AsyncRoundDriver,
    AsyncSessionHost,
    HostReport,
    VirtualClock,
    async_sbc_session,
    async_voting_session,
    online_ranges_disjoint,
)

from repro.runtime.backend import (
    BATCHED,
    POOLED,
    SEQUENTIAL,
    ExecutionBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.runtime.driver import (
    BatchedRoundDriver,
    RoundDriver,
    SequentialRoundDriver,
)
from repro.runtime.config import (
    SweepConfig,
    add_sweep_options,
    resolve_legacy_config,
)
from repro.runtime.material import (
    MATERIAL_SOURCES,
    HostSlotAllocator,
    MaterialCursor,
    MaterialHandle,
    MaterialStore,
    OnlinePlan,
    Replenisher,
    SpendLedger,
    attached_material,
    ewma_burn_rate,
    extend_or_rebuild,
    online_pool_requirement,
    publish_material,
    replenish_amount,
    replenish_decision,
    resolve_material_source,
    warm_with_material,
    watermark_for,
)
from repro.runtime.pool import (
    PoolReport,
    SessionPool,
    TraceDigestUnavailable,
    TrialDisagreement,
    TrialResult,
    auto_chunksize,
    canonical_detail,
    compare_trace_digests,
    ensure_agreement,
    record_online_spend,
    reports_match,
    resolve_workers,
    run_sbc_trial,
    run_voting_trial,
    sequential_loop,
    trace_digest,
)
from repro.runtime.scheduler import BatchScheduler
from repro.runtime.supervisor import (
    CHAOS_FOREVER,
    ChaosFault,
    ChaosInjected,
    ChaosPlan,
    DeadlinePolicy,
    RetryPolicy,
    Supervisor,
    SupervisorStats,
    SweepJournal,
)
from repro.runtime.sweep import ParallelSweep, SweepPlan, SweepVerification

__all__ = [
    "ASYNC",
    "AsyncExecutionBackend",
    "AsyncRoundDriver",
    "AsyncSessionHost",
    "BATCHED",
    "BatchScheduler",
    "BatchedRoundDriver",
    "CHAOS_FOREVER",
    "ChaosFault",
    "ChaosInjected",
    "ChaosPlan",
    "DeadlinePolicy",
    "ExecutionBackend",
    "HostReport",
    "HostSlotAllocator",
    "MATERIAL_SOURCES",
    "MaterialCursor",
    "MaterialHandle",
    "MaterialStore",
    "OnlinePlan",
    "POOLED",
    "ParallelSweep",
    "PoolReport",
    "Replenisher",
    "RetryPolicy",
    "RoundDriver",
    "SEQUENTIAL",
    "SequentialRoundDriver",
    "SessionPool",
    "SpendLedger",
    "Supervisor",
    "SupervisorStats",
    "SweepJournal",
    "SweepConfig",
    "SweepPlan",
    "SweepVerification",
    "TraceDigestUnavailable",
    "TrialDisagreement",
    "TrialResult",
    "VirtualClock",
    "add_sweep_options",
    "async_sbc_session",
    "async_voting_session",
    "attached_material",
    "auto_chunksize",
    "available_backends",
    "canonical_detail",
    "compare_trace_digests",
    "ensure_agreement",
    "ewma_burn_rate",
    "extend_or_rebuild",
    "get_backend",
    "online_pool_requirement",
    "online_ranges_disjoint",
    "publish_material",
    "record_online_spend",
    "register_backend",
    "replenish_amount",
    "replenish_decision",
    "reports_match",
    "resolve_legacy_config",
    "resolve_material_source",
    "resolve_workers",
    "run_sbc_trial",
    "run_voting_trial",
    "sequential_loop",
    "trace_digest",
    "warm_with_material",
    "watermark_for",
]
