"""Pluggable UC execution runtime.

The runtime separates *what* a protocol does (parties, functionalities,
the clock — :mod:`repro.uc`) from *how* an execution is driven:

* :class:`~repro.runtime.backend.ExecutionBackend` — a named bundle of
  round driver, scheduler drain policy and trace mode (``sequential``,
  ``pooled``, ``batched``);
* :class:`~repro.runtime.driver.RoundDriver` — the round loop behind
  :class:`~repro.uc.environment.Environment` and every stack builder;
* :class:`~repro.runtime.scheduler.BatchScheduler` — per-round message
  queues drained in batches instead of per-message callbacks;
* :class:`~repro.runtime.pool.SessionPool` — N independent sessions
  (seed sweeps, repeated executions) through one driver, inline or via
  ``concurrent.futures`` workers.

The ``sequential`` backend is the default everywhere and reproduces the
pre-runtime engine byte-for-byte (same seed, same trace).
"""

from repro.runtime.backend import (
    BATCHED,
    POOLED,
    SEQUENTIAL,
    ExecutionBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.runtime.driver import (
    BatchedRoundDriver,
    RoundDriver,
    SequentialRoundDriver,
)
from repro.runtime.pool import (
    PoolReport,
    SessionPool,
    TraceDigestUnavailable,
    TrialResult,
    compare_trace_digests,
    reports_match,
    run_sbc_trial,
    sequential_loop,
    trace_digest,
)
from repro.runtime.scheduler import BatchScheduler

__all__ = [
    "BATCHED",
    "BatchScheduler",
    "BatchedRoundDriver",
    "ExecutionBackend",
    "POOLED",
    "PoolReport",
    "RoundDriver",
    "SEQUENTIAL",
    "SequentialRoundDriver",
    "SessionPool",
    "TraceDigestUnavailable",
    "TrialResult",
    "available_backends",
    "compare_trace_digests",
    "get_backend",
    "register_backend",
    "reports_match",
    "run_sbc_trial",
    "sequential_loop",
    "trace_digest",
]
