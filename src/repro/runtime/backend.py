"""Pluggable execution backends.

An :class:`ExecutionBackend` bundles the three runtime policies one knob
apart from protocol logic:

* which :class:`~repro.runtime.driver.RoundDriver` drives rounds;
* how the session's :class:`~repro.runtime.scheduler.BatchScheduler`
  drains per-round message queues (``fifo`` vs ``grouped``);
* how much of the event trace is kept (``full`` vs ``light``).

Three backends ship:

========== ============ ========= ======= ==========================================
name       driver       drain     trace   contract
========== ============ ========= ======= ==========================================
sequential sequential   fifo      full    byte-identical traces to the pre-runtime
                                          engine for any fixed seed (the default)
pooled     batched      fifo      full    traces identical to ``sequential``;
                                          trace-neutral elisions only — safe for
                                          determinism regressions and SessionPool
batched    batched      grouped   light   maximum throughput; per-recipient batch
                                          delivery, tracing off; protocol outputs
                                          equal, trace interleaving differs
========== ============ ========= ======= ==========================================

Stack builders and the CLI accept either a backend name or an
:class:`ExecutionBackend` instance everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Type, Union

from repro.runtime.driver import BatchedRoundDriver, RoundDriver, SequentialRoundDriver

#: Trace modes: ``full`` keeps the whole EventLog, ``light`` disables it.
TRACE_MODES = ("full", "light")


@dataclass(frozen=True)
class ExecutionBackend:
    """One named execution strategy for UC sessions.

    Attributes:
        name: Registry key (also what ``--backend`` accepts on the CLI).
        driver_cls: Round driver class instantiated per environment.
        scheduler_policy: Drain policy for per-round message queues.
        trace: Default trace mode for sessions created under this backend.
        description: One-line summary for ``--help`` and reports.
    """

    name: str
    driver_cls: Type[RoundDriver]
    scheduler_policy: str = "fifo"
    trace: str = "full"
    description: str = ""

    def make_driver(self, session, order: Optional[Sequence[str]] = None) -> RoundDriver:
        """Instantiate this backend's round driver for ``session``."""
        return self.driver_cls(session, order=order)

    def with_trace(self, trace: str) -> "ExecutionBackend":
        """A copy of this backend with a different trace mode."""
        if trace not in TRACE_MODES:
            raise ValueError(f"trace must be one of {list(TRACE_MODES)}, got {trace!r}")
        return replace(self, trace=trace)

    def warm_up(self, material=None, arith=None) -> "ExecutionBackend":
        """Pre-build the process-wide caches sessions under this backend use.

        Called once per worker by the pool initializer (and usable inline
        before timing-sensitive runs): warms the shared crypto
        acceleration caches so no session pays lazy construction mid-run.
        Custom backends with extra per-process state can extend this.

        Args:
            material: Where the caches come from — ``None``/``"compute"``
                rebuilds them locally, ``"disk"`` attaches the
                preprocessing store's serialized tables, and a
                :class:`~repro.runtime.material.MaterialHandle` attaches
                what the parent published (shared memory, mmap fallback).
                Every failure degrades to compute with a warning; the
                installed tables are value-identical either way.  A
                successful attach also registers the material's
                randomness pools with this process
                (:func:`~repro.runtime.material.attached_material`), so
                online-mode cursors can spend them without re-reading
                the blob per trial.
            arith: Optional arithmetic-backend name to select first
                (``"gmpy2"``/``"python"``/``"auto"``) — the pool
                initializer forwards the parent's selection so worker
                processes run the same tier.  Arithmetic backends are
                value-identical, so an unavailable name degrades to
                auto-detection with a warning rather than failing the
                worker.
        """
        from repro.runtime.material import warm_with_material

        if arith is not None:
            import warnings

            from repro.crypto.groups import set_arith_backend

            try:
                set_arith_backend(arith)
            except ValueError as exc:
                warnings.warn(
                    f"worker cannot select arith backend {arith!r} ({exc}); "
                    "falling back to auto-detection",
                    RuntimeWarning,
                    stacklevel=2,
                )
                set_arith_backend("auto")
        warm_with_material(material)
        return self


SEQUENTIAL = ExecutionBackend(
    name="sequential",
    driver_cls=SequentialRoundDriver,
    scheduler_policy="fifo",
    trace="full",
    description="reference engine: per-message callbacks, full trace (default)",
)

POOLED = ExecutionBackend(
    name="pooled",
    driver_cls=BatchedRoundDriver,
    scheduler_policy="fifo",
    trace="full",
    description="SessionPool driver: trace-identical to sequential, cached activation",
)

BATCHED = ExecutionBackend(
    name="batched",
    driver_cls=BatchedRoundDriver,
    scheduler_policy="grouped",
    trace="light",
    description="throughput engine: grouped batch delivery, tracing off",
)

_REGISTRY: Dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Register ``backend`` under its name (last registration wins)."""
    _REGISTRY[backend.name] = backend
    return backend


for _backend in (SEQUENTIAL, POOLED, BATCHED):
    register_backend(_backend)


def _ensure_builtin_backends() -> None:
    """Finish registering the built-ins that live in their own modules.

    The ``async`` backend's module pulls in the whole asyncio machinery
    and imports this module in turn, so it registers itself on import
    rather than being constructed here; importing it lazily at the
    first registry *read* keeps ``import repro.runtime.backend`` light
    while guaranteeing lookups and ``--backend`` choices always see the
    full set.
    """
    import repro.runtime.aio  # noqa: F401  (import registers "async")


def available_backends() -> Dict[str, ExecutionBackend]:
    """Name -> backend for every registered backend."""
    _ensure_builtin_backends()
    return dict(_REGISTRY)


def get_backend(backend: Union[str, ExecutionBackend, None]) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    Raises:
        ValueError: unknown backend name.
    """
    if backend is None:
        return SEQUENTIAL
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend not in _REGISTRY:
        _ensure_builtin_backends()
    try:
        return _REGISTRY[backend]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown backend {backend!r} (known: {known})") from None
