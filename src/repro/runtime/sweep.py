"""Multi-core sweep engine: shard one workload across process workers.

:class:`~repro.runtime.pool.SessionPool` knows how to fan a trial runner
out over inline/thread/process executors; :class:`ParallelSweep` is the
driver that turns that into a *planned* multi-core sweep for any
``(runner, task list)`` workload — repeated SBC trials, scenario-matrix
cells (each task is an index into a spec list), bench sweeps:

* it resolves an explicit or automatic chunk size (a few chunks per
  worker, so IPC is amortised without losing load balancing) and worker
  count, and exposes the resolved :class:`SweepPlan` for reports;
* every process worker runs the shared crypto warm-up initializer before
  its first task, so no trial pays fixed-base table construction;
* results keep deterministic task order whatever the executor, and
  :meth:`ParallelSweep.verify` re-runs the same tasks inline and checks
  seed-for-seed trace-digest equality — the determinism contract held by
  the single-core engine, now enforced across process boundaries.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional

from repro.runtime.config import SweepConfig, resolve_legacy_config
from repro.runtime.pool import (
    PoolReport,
    SessionPool,
    TrialResult,
    auto_chunksize,
    reports_match,
    resolve_workers,
    run_sbc_trial,
)

__all__ = ["ParallelSweep", "SweepPlan", "SweepVerification"]


@dataclass(frozen=True)
class SweepPlan:
    """The resolved execution shape of one sweep."""

    tasks: int
    executor: str
    workers: int
    chunksize: int
    max_tasks_per_child: Optional[int] = None
    warmup: bool = True
    #: Where worker warm-up caches come from (compute/disk/shared).
    material_source: str = "compute"
    #: Whether the chunk size re-plans mid-sweep from observed task times.
    adaptive: bool = False
    #: Whether trials spend the preprocessed randomness pools (online
    #: protocol mode; digests pinned separately from compute runs).
    online: bool = False
    #: Whether the online plan is offset by the persisted spend ledger
    #: (consume-forward mode: successive sweeps spend disjoint slices).
    consume_forward: bool = False
    #: Whether trials batch verification rounds through random-linear-
    #: combination multi-exps (digest-pinned via ``verify.batch`` events
    #: when the policy records them).
    batch_verify: bool = False

    @property
    def chunks(self) -> int:
        """Number of dispatch units the task list shards into.

        For an adaptive sweep this counts the *initial* sharding; the
        re-planner may split later waves differently (the executed shape
        lands in the report's adaptivity trace).
        """
        return -(-self.tasks // self.chunksize) if self.tasks else 0

    def summary(self, adaptivity: Optional[Any] = None) -> Dict[str, Any]:
        """Uniform record; pass a report's ``adaptivity`` trace to embed
        the executed re-chunking alongside the planned shape."""
        record = {
            "tasks": self.tasks,
            "executor": self.executor,
            "workers": self.workers,
            "chunksize": self.chunksize,
            "chunks": self.chunks,
            "max_tasks_per_child": self.max_tasks_per_child,
            "warmup": self.warmup,
            "material_source": self.material_source,
            "adaptive": self.adaptive,
            "online": self.online,
            "consume_forward": self.consume_forward,
            "batch_verify": self.batch_verify,
        }
        if adaptivity is not None:
            record["adaptivity"] = adaptivity
        return record


@dataclass
class SweepVerification:
    """A sweep report plus its inline reference and the digest verdict."""

    report: PoolReport
    reference: PoolReport
    matched: bool

    @property
    def speedup(self) -> float:
        """Inline wall time over sweep wall time (>1 means the sweep won)."""
        return self.reference.wall_time_s / max(self.report.wall_time_s, 1e-9)


class ParallelSweep:
    """Shard a ``(runner, task list)`` workload across worker processes.

    Args:
        runner: Module-level ``runner(task, **kwargs) -> TrialResult``;
            tasks are whatever the runner indexes by — seeds for protocol
            trials, list indices for scenario cells.
        config: A :class:`~repro.runtime.config.SweepConfig` with every
            execution knob (see that class for the reference).  The
            sweep's historical default executor is ``"process"`` — a
            config built here (from legacy keywords) inherits it; an
            explicit ``config=`` carries its own.
        runner_kwargs: Extra keyword arguments forwarded to the runner
            (e.g. ``specs=`` for the scenario-cell runner).  The
            execution knobs are also accepted as individual keywords for
            back compatibility; positional use is deprecated and warns.
    """

    def __init__(
        self,
        runner: Callable[..., TrialResult] = run_sbc_trial,
        *legacy: Any,
        config: Optional[SweepConfig] = None,
        **runner_kwargs: Any,
    ) -> None:
        # SweepConfig validates executor/chunksize/max_tasks_per_child/
        # material/online/batch_verify/consume_forward up front, so a bad
        # sweep fails at construction, not mid-fan-out.
        config, runner_kwargs = resolve_legacy_config(
            config,
            legacy,
            runner_kwargs,
            defaults={"backend": "pooled", "executor": "process"},
            owner="ParallelSweep",
        )
        self._pool = SessionPool(runner=runner, config=config, **runner_kwargs)

    @property
    def executor(self) -> str:
        return self._pool.executor

    def plan(self, tasks: int) -> SweepPlan:
        """The execution shape :meth:`run` will use for ``tasks`` tasks."""
        executor = self._pool.executor
        if executor == "process":
            workers = resolve_workers(self._pool.workers)
            chunksize = self._pool.chunksize or auto_chunksize(tasks, workers)
            if self._pool.max_tasks_per_child is not None:
                chunksize = min(chunksize, self._pool.max_tasks_per_child)
        elif executor == "thread":
            # ThreadPoolExecutor's documented default when max_workers is
            # None; tasks interleave on these threads, chunking is moot.
            workers = self._pool.workers or min(32, (os.cpu_count() or 1) + 4)
            chunksize = 1
        else:
            workers = 1
            chunksize = 1
        return SweepPlan(
            tasks=tasks,
            executor=self._pool.executor,
            workers=workers,
            chunksize=chunksize,
            max_tasks_per_child=self._pool.max_tasks_per_child,
            warmup=self._pool.warmup,
            material_source=self._pool.material,
            adaptive=self._pool.adaptive and executor == "process",
            online=bool(self._pool.online),
            consume_forward=self._pool.consume_forward
            or bool(
                getattr(self._pool.online, "consume_forward", False)
            ),
            batch_verify=self._pool.batch_policy is not None,
        )

    def run(self, tasks: Iterable[Any]) -> PoolReport:
        """Execute every task; results come back in task order."""
        return self._pool.run(tasks)

    def _inline_reference(
        self,
        tasks: Optional[Iterable[Any]] = None,
        report: Optional[PoolReport] = None,
    ) -> SessionPool:
        """An inline pool with identical runner/backend/trace settings.

        Deliberately left on the default ``compute`` material: verify()
        then checks digest equality *across* material sources (attached
        tables in the sweep vs locally built ones in the reference),
        which is exactly the store's correctness contract.

        Online sweeps are the exception: the reference must *spend the
        same pool entries*, so it attaches the disk store (same blob the
        sweep published) and replays the sweep's exact
        :class:`~repro.runtime.material.OnlinePlan` — which is how
        pool-consuming process runs stay seed-for-seed verifiable.  When
        the executed ``report`` is available its resolved plan is reused
        verbatim; re-planning here would re-read the spend ledger, which
        a consume-forward sweep has already advanced, and the replay
        would land on different absolute slices than the recorded run.
        """
        batch_verify = self._pool.batch_policy or False
        if not self._pool.online:
            return SessionPool(
                runner=self._pool.runner,
                config=SweepConfig(
                    backend=self._pool.backend,
                    executor="inline",
                    batch_verify=batch_verify,
                    trace=self._pool.trace,
                ),
                **self._pool.runner_kwargs,
            )
        from repro.runtime.material import MATERIAL_DISK

        plan = getattr(report, "online_plan", None)
        if plan is None:
            plan = (
                self._pool.online
                if not isinstance(self._pool.online, bool)
                else self._pool._online_plan(list(tasks or ()))
            )
        return SessionPool(
            runner=self._pool.runner,
            config=SweepConfig(
                backend=self._pool.backend,
                executor="inline",
                material=MATERIAL_DISK,
                material_groups=self._pool.material_groups,
                online=plan,
                batch_verify=batch_verify,
                trace=self._pool.trace,
            ),
            **self._pool.runner_kwargs,
        )

    def verify(self, tasks: Iterable[Any]) -> SweepVerification:
        """Run the sweep *and* the inline reference; compare digests.

        Raises:
            ValueError: the task list is empty.
            TraceDigestUnavailable: the sweep ran trace-off (``light``),
                so there are no digests to compare.
        """
        tasks = list(tasks)
        report = self.run(tasks)
        reference = self._inline_reference(tasks, report=report).run(tasks)
        return SweepVerification(
            report=report,
            reference=reference,
            matched=reports_match(report, reference),
        )
