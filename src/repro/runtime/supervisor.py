"""Supervised process fan-out: deadlines, retries, quarantine, journal.

The sweep engine used to drive one blocking ``pool.map`` per wave: a
single SIGKILL-ed worker (OOM killer), hung trial or poison task wedged
or aborted the whole sweep and discarded every finished chunk.  The
:class:`Supervisor` replaces that with per-chunk ``apply_async``
dispatch and a bounded wait per chunk, so worker failure becomes a
*recoverable, accounted* event:

* **Deadlines** — each chunk's wait is bounded by an EWMA of observed
  per-task wall time (the adaptive-chunking estimator) times a
  configurable factor (:class:`DeadlinePolicy`).  A deadline expiry
  covers both failure modes a parent can see: a hung worker, and a
  killed one (``multiprocessing.Pool`` repopulates dead workers, but
  the lost job's result never arrives).
* **Retry** — failed or timed-out chunks are re-dispatched under a
  deterministic :class:`RetryPolicy` (max attempts, exponential
  backoff).  Trials are seed-deterministic and wall-clock never enters
  trace digests, so a retried chunk reproduces the undisturbed run's
  digests exactly.
* **Respawn** — a deadline expiry terminates the pool (the only safe
  move once a worker may have died holding a queue lock) and restarts
  it; chunks already completed are kept, unfinished ones re-dispatch.
* **Quarantine** — a chunk that exhausts its attempts is bisected until
  the poison task is isolated, which is then quarantined with a
  ``task.quarantined`` event: the sweep completes with an honest
  partial report instead of crashing.
* **Journal** — :class:`SweepJournal` persists each completed chunk
  (tasks, results, record digest) to an append-only JSONL sidecar with
  the same mkstemp+fsync+rename discipline as the spend ledger, so a
  killed sweep resumes (``repro sweep --resume``) without re-running
  finished work — and, composed with the consume-forward
  :class:`~repro.runtime.material.OnlinePlan` recorded in the header,
  without double-spending material.
* **Chaos** — :class:`ChaosPlan` injects worker faults (in-worker
  SIGKILL at task *k*, an exception, a hang) for tests/CI.  Faults fire
  on the first ``repeat`` dispatches of a task only, so every chaos run
  must stay digest-equal to the undisturbed run — recovery itself is
  ``--verify``-checkable.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import signal
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.pool import ADAPTIVE_EWMA_ALPHA, TrialResult
from repro.uc.trace import canonical_detail

__all__ = [
    "ChaosFault",
    "ChaosInjected",
    "ChaosPlan",
    "DeadlinePolicy",
    "RetryPolicy",
    "Supervisor",
    "SupervisorStats",
    "SweepJournal",
    "plan_from_record",
    "plan_to_record",
    "run_chunk",
    "trial_result_from_record",
    "trial_result_to_record",
]


class ChaosInjected(RuntimeError):
    """An exception injected by a :class:`ChaosPlan` fault (never a real bug)."""


#: Fault kinds a :class:`ChaosFault` can inject inside a worker.
CHAOS_KINDS = ("kill", "exc", "hang")

#: ``repeat`` value meaning "fire on every dispatch" (drives bisection
#: and quarantine instead of a clean retry).
CHAOS_FOREVER = 1 << 30


@dataclass(frozen=True)
class ChaosFault:
    """One injected worker fault: ``kind`` fires when ``task`` is reached.

    Attributes:
        task: The task value (seed / index) the fault triggers on.
        kind: ``"kill"`` (SIGKILL the worker process), ``"exc"`` (raise
            :class:`ChaosInjected`) or ``"hang"`` (sleep ``hang_s``
            before running the task — longer than the chunk deadline to
            model a wedged worker, shorter to model a stall).
        repeat: How many dispatches of the task the fault fires on
            (default 1: first attempt only, so the retry runs clean and
            the sweep stays digest-equal to an undisturbed run).  Use
            :data:`CHAOS_FOREVER` for a persistent poison task.
        hang_s: Sleep length for ``"hang"`` faults.
    """

    task: Any
    kind: str
    repeat: int = 1
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(f"fault kind must be one of {CHAOS_KINDS}, got {self.kind!r}")
        if self.repeat < 1:
            raise ValueError(f"fault repeat must be >= 1, got {self.repeat}")
        if self.hang_s <= 0:
            raise ValueError(f"fault hang_s must be > 0, got {self.hang_s}")


@dataclass(frozen=True)
class ChaosPlan:
    """The fault-injection schedule for one sweep (picklable, frozen).

    Built programmatically from :class:`ChaosFault` instances or parsed
    from a CLI spec (see :meth:`parse`).  The supervisor ships a task's
    fault to the worker only while the task's dispatch count is below
    the fault's ``repeat`` — retries replay clean.
    """

    faults: Tuple[ChaosFault, ...]

    @classmethod
    def parse(cls, spec: str, hang_s: float = 30.0) -> "ChaosPlan":
        """Parse ``kind@task[:repeat][,...]`` (e.g. ``kill@3,exc@5:*``).

        ``repeat`` defaults to 1 (first dispatch only); ``*`` means
        every dispatch (a persistent poison task, exercising bisection
        and quarantine).

        Raises:
            ValueError: empty or malformed spec.
        """
        faults: List[ChaosFault] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                kind, _, target = part.partition("@")
                if not target:
                    raise ValueError("missing '@task'")
                task_text, _, repeat_text = target.partition(":")
                repeat = 1
                if repeat_text:
                    repeat = CHAOS_FOREVER if repeat_text == "*" else int(repeat_text)
                faults.append(
                    ChaosFault(
                        task=int(task_text), kind=kind, repeat=repeat, hang_s=hang_s
                    )
                )
            except ValueError as exc:
                raise ValueError(
                    f"bad chaos fault {part!r} (want kind@task[:repeat] with "
                    f"kind in {CHAOS_KINDS}, e.g. 'kill@3' or 'exc@5:*'): {exc}"
                ) from exc
        if not faults:
            raise ValueError(f"chaos spec {spec!r} names no faults")
        return cls(faults=tuple(faults))

    def fault_for(self, task: Any) -> Optional[ChaosFault]:
        for fault in self.faults:
            if fault.task == task:
                return fault
        return None


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry schedule for failed/timed-out chunks.

    Backoff is a pure function of the attempt number — no jitter, no
    wall-clock reads — so a chaos run's retry schedule is reproducible.
    Backoff delays only pace re-dispatch; wall time never enters trace
    digests, so the schedule is digest-neutral by construction.

    Attributes:
        max_attempts: Dispatches a chunk gets before it is bisected
            (or, at size one, quarantined).
        backoff_base_s: Delay before the first retry.
        backoff_factor: Multiplier per further attempt.
        backoff_max_s: Cap on any single delay.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def delay_s(self, attempt: int) -> float:
        """Pre-retry delay after ``attempt`` failed dispatches (>= 1)."""
        if attempt < 1:
            return 0.0
        return min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )


@dataclass(frozen=True)
class DeadlinePolicy:
    """How long the supervisor waits on one chunk before declaring it dead.

    The estimate reuses the adaptive-chunking estimator: an EWMA
    (:data:`~repro.runtime.pool.ADAPTIVE_EWMA_ALPHA`) of observed
    per-task wall time from completed chunks, seeded with
    ``initial_task_s`` until the first chunk lands.  The deadline is
    ``max(floor_s, factor * est * chunk_len)``, clamped to ``cap_s``
    when one is set, then escalated per retry so a merely-slow chunk is
    not killed twice for the same reason.  The generous defaults mean
    healthy sweeps never trip it; chaos tests and CI smoke steps pass a
    small ``cap_s`` so hang detection fails fast even before the first
    completed chunk has taught the estimator anything.
    """

    factor: float = 32.0
    floor_s: float = 60.0
    initial_task_s: float = 1.0
    escalation: float = 2.0
    cap_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.factor <= 0 or self.floor_s <= 0 or self.initial_task_s <= 0:
            raise ValueError("deadline factor/floor_s/initial_task_s must be > 0")
        if self.escalation < 1.0:
            raise ValueError(f"escalation must be >= 1, got {self.escalation}")
        if self.cap_s is not None and self.cap_s <= 0:
            raise ValueError(f"cap_s must be > 0, got {self.cap_s}")

    def deadline_s(
        self, est_task_s: Optional[float], tasks: int, attempt: int = 0
    ) -> float:
        est = est_task_s if est_task_s and est_task_s > 0 else self.initial_task_s
        base = max(self.floor_s, self.factor * est * max(1, tasks))
        if self.cap_s is not None:
            base = min(base, self.cap_s)
        return base * self.escalation ** max(0, attempt)


def run_chunk(
    runner: Callable[[Any], Any],
    tasks: Sequence[Any],
    faults: Optional[Dict[Any, Tuple[str, float]]] = None,
) -> List[Any]:
    """Worker-side chunk body: run ``runner`` over ``tasks`` in order.

    Module-level (hence picklable) by construction.  ``faults`` maps a
    task to its active injected fault, applied *before* the task runs:
    ``kill`` SIGKILLs this worker (the parent sees a chunk deadline
    expire), ``exc`` raises :class:`ChaosInjected` (the parent sees the
    apply_async result fail), ``hang`` sleeps before proceeding.  The
    supervisor only ships a fault while its ``repeat`` budget lasts, so
    retries run this same code clean.
    """
    results: List[Any] = []
    for task in tasks:
        fault = (faults or {}).get(task)
        if fault is not None:
            kind, hang_s = fault
            if kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif kind == "hang":
                time.sleep(hang_s)
            elif kind == "exc":
                raise ChaosInjected(f"injected failure at task {task!r}")
        results.append(runner(task))
    return results


@dataclass
class SupervisorStats:
    """Degradation counters for one supervised fan-out (JSON-safe)."""

    retries: int = 0
    respawns: int = 0
    quarantined: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)

    def to_record(self) -> Dict[str, Any]:
        """Uniform record for :class:`~repro.runtime.pool.PoolReport`."""
        return {
            "retries": self.retries,
            "respawns": self.respawns,
            "quarantined": len(self.quarantined),
            "quarantined_tasks": [entry["task"] for entry in self.quarantined],
            "events": list(self.events),
        }


@dataclass(eq=False)
class _Chunk:
    """One dispatch unit: a slice of the task list plus its retry state."""

    order: Tuple[int, ...]
    positions: List[int]
    tasks: List[Any]
    attempts: int = 0
    done: bool = False


class Supervisor:
    """Drive chunks through a ``multiprocessing.Pool`` under supervision.

    Owns the pool lifecycle (create, recycle via ``maxtasksperchild``,
    terminate-and-respawn on failure).  :meth:`map` preserves input
    order and is safe to call repeatedly against the same warm pool
    (the adaptive re-planner dispatches waves through one supervisor),
    with the deadline EWMA and degradation counters carried across
    calls.  Quarantined tasks yield ``None`` in the result list; the
    caller decides how to report the partial run.

    Args:
        workers: Worker process count.
        initializer: Per-worker warm-up callable (module-level).
        initargs: Arguments for ``initializer``.
        max_chunks_per_child: Recycle a worker after this many chunk
            dispatches (``multiprocessing.Pool``'s ``maxtasksperchild``,
            which counts one ``apply_async`` as one task — i.e. chunk
            units, exactly like the old ``pool.map`` path).
        retry: :class:`RetryPolicy` (default: stock policy).
        deadline: :class:`DeadlinePolicy` (default: stock policy).
        chaos: Optional :class:`ChaosPlan` of injected worker faults.
        on_chunk: ``on_chunk(tasks, results)`` called as each chunk
            completes (the journal seam).  ``OSError`` from the callback
            degrades to a :class:`RuntimeWarning` — bookkeeping must
            never fail a healthy sweep.
    """

    def __init__(
        self,
        workers: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        max_chunks_per_child: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        deadline: Optional[DeadlinePolicy] = None,
        chaos: Optional[ChaosPlan] = None,
        on_chunk: Optional[Callable[[List[Any], List[Any]], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self.max_chunks_per_child = max_chunks_per_child
        self.retry = retry or RetryPolicy()
        self.deadline = deadline or DeadlinePolicy()
        self.chaos = chaos
        self.on_chunk = on_chunk
        self.stats = SupervisorStats()
        self._pool: Optional[Any] = None
        self._inflight: Dict[_Chunk, Any] = {}
        self._dispatches: Dict[Any, int] = {}
        self._ewma_task_s: Optional[float] = None
        # Liveness watch: worker Process handles seen on the last poll,
        # and whether one has died abnormally since the last respawn
        # (meaning some inflight chunk's result will never arrive).
        self._workers_seen: List[Any] = []
        self._suspect = False

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self) -> Any:
        if self._pool is None:
            import multiprocessing

            self._pool = multiprocessing.Pool(
                processes=self.workers,
                initializer=self.initializer,
                initargs=self.initargs if self.initializer else (),
                maxtasksperchild=self.max_chunks_per_child,
            )
            self._workers_seen = list(getattr(self._pool, "_pool", []))
        return self._pool

    def _shutdown_pool(self) -> None:
        self._inflight.clear()
        if self._pool is not None:
            # terminate() (not close()) — after a deadline expiry a worker
            # may be hung or may have died holding a queue lock, so a
            # graceful drain could block forever.
            self._pool.terminate()
            # Bounded in practice: terminate() has already killed the
            # workers, join only reaps them.  # repro: allow[RPR007]
            self._pool.join()
            self._pool = None
        self._workers_seen = []
        self._suspect = False

    def _respawn(self, reason: str) -> None:
        self._shutdown_pool()
        self.stats.respawns += 1
        self.stats.events.append({"kind": "pool.respawn", "reason": reason})

    def close(self) -> None:
        """Tear the pool down; the supervisor may not be reused after."""
        self._shutdown_pool()

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------

    def _active_faults(
        self, chunk: _Chunk
    ) -> Optional[Dict[Any, Tuple[str, float]]]:
        """Faults to ship with this dispatch; advances the attempt counts.

        A fault stays active while the task's dispatch count is below
        the fault's ``repeat`` — the gate that makes first-attempt
        faults replay clean on retry (digest equality) and persistent
        faults drive bisection.
        """
        faults: Dict[Any, Tuple[str, float]] = {}
        for task in chunk.tasks:
            seen = self._dispatches.get(task, 0)
            self._dispatches[task] = seen + 1
            if self.chaos is None:
                continue
            fault = self.chaos.fault_for(task)
            if fault is not None and seen < fault.repeat:
                faults[task] = (fault.kind, fault.hang_s)
        return faults or None

    def _submit(self, pool: Any, runner: Callable[[Any], Any], chunk: _Chunk) -> None:
        self._inflight[chunk] = pool.apply_async(
            run_chunk, (runner, list(chunk.tasks), self._active_faults(chunk))
        )

    def _observe(self, payload: Sequence[Any]) -> None:
        timings = [
            result.wall_time_s
            for result in payload
            if getattr(result, "wall_time_s", None) is not None
        ]
        if not timings:
            return
        observed = sum(timings) / len(timings)
        self._ewma_task_s = (
            observed
            if self._ewma_task_s is None
            else ADAPTIVE_EWMA_ALPHA * observed
            + (1 - ADAPTIVE_EWMA_ALPHA) * self._ewma_task_s
        )

    def _complete(
        self, results: Dict[int, Any], chunk: _Chunk, payload: List[Any]
    ) -> None:
        if len(payload) != len(chunk.tasks):
            raise RuntimeError(
                f"worker returned {len(payload)} results for a "
                f"{len(chunk.tasks)}-task chunk (run_chunk contract broken)"
            )
        for position, result in zip(chunk.positions, payload):
            results[position] = result
        chunk.done = True
        self._observe(payload)
        if self.on_chunk is not None:
            try:
                self.on_chunk(list(chunk.tasks), list(payload))
            except OSError as exc:
                warnings.warn(
                    f"sweep journal append failed ({exc}); a crash before the "
                    "next successful append will re-run this chunk on --resume",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def _harvest(self, results: Dict[int, Any], chunks: List[_Chunk]) -> None:
        """Collect finished siblings before a respawn discards the pool.

        Results already sitting in an ``AsyncResult`` survive
        ``terminate()``; results still in the output queue would be
        lost, so everything ready is drained first and journaled.
        """
        for chunk, handle in list(self._inflight.items()):
            if not handle.ready():
                continue
            del self._inflight[chunk]
            try:
                payload = handle.get(timeout=0)
            except Exception as exc:  # worker raised; account it as a failure
                self._fail(chunks, chunk, f"worker raised {type(exc).__name__}: {exc}")
            else:
                self._complete(results, chunk, payload)

    def _dead_worker(self) -> bool:
        """True if a tracked worker died abnormally since the last poll.

        Reads the pool's internal ``_pool`` worker list (stable across
        CPython 3.x) but keeps its own ``Process`` references, so an
        exitcode stays readable after the pool reaps the corpse.  Clean
        exits (code 0 — ``maxtasksperchild`` recycling) don't count.
        """
        if self._pool is None:
            return False
        dead = [
            proc for proc in self._workers_seen if proc.exitcode not in (None, 0)
        ]
        self._workers_seen = list(getattr(self._pool, "_pool", []))
        if dead:
            self.stats.events.append(
                {
                    "kind": "worker.death",
                    "exitcodes": [proc.exitcode for proc in dead],
                }
            )
        return bool(dead)

    def _await_result(
        self, handle: Any, budget: float, grace: float
    ) -> Tuple[str, Any]:
        """Wait on one chunk, watching worker liveness between polls.

        Returns ``("ok", payload)``, ``("error", exc)`` for a raising
        worker, or ``("timeout", reason)``.  A timeout fires either when
        the full deadline ``budget`` expires (hung worker) or — much
        sooner — when a worker has died abnormally and the chunk still
        hasn't produced within ``grace``: its job rode the dead worker
        and the result will never arrive, so waiting out a 60s deadline
        would just stall recovery.
        """
        import multiprocessing

        poll_s = 0.05
        start = time.monotonic()
        while True:
            elapsed = time.monotonic() - start
            if elapsed >= budget:
                return "timeout", f"chunk deadline of {budget:.3f}s expired"
            if self._suspect and elapsed >= grace:
                return (
                    "timeout",
                    f"worker died; chunk presumed lost after {grace:.3f}s grace",
                )
            try:
                return "ok", handle.get(timeout=min(poll_s, budget - elapsed))
            except multiprocessing.TimeoutError:
                if not self._suspect and self._dead_worker():
                    self._suspect = True
            except Exception as exc:  # worker raised; pool still healthy
                return "error", exc

    def _fail(self, chunks: List[_Chunk], chunk: _Chunk, reason: str) -> None:
        chunk.attempts += 1
        if chunk.attempts < self.retry.max_attempts:
            self.stats.retries += 1
            self.stats.events.append(
                {
                    "kind": "chunk.retry",
                    "tasks": list(chunk.tasks),
                    "attempt": chunk.attempts,
                    "reason": reason,
                }
            )
            delay = self.retry.delay_s(chunk.attempts)
            if delay:
                time.sleep(delay)
        elif len(chunk.tasks) > 1:
            # Attempts exhausted on a multi-task chunk: split it so the
            # poison task is isolated instead of taking siblings down.
            chunk.done = True
            mid = len(chunk.tasks) // 2
            children = [
                _Chunk(
                    order=chunk.order + (side,),
                    positions=chunk.positions[lo:hi],
                    tasks=chunk.tasks[lo:hi],
                )
                for side, (lo, hi) in enumerate(
                    ((0, mid), (mid, len(chunk.tasks)))
                )
            ]
            chunks.extend(children)
            self.stats.retries += 1
            self.stats.events.append(
                {
                    "kind": "chunk.bisect",
                    "tasks": list(chunk.tasks),
                    "attempt": chunk.attempts,
                    "reason": reason,
                }
            )
        else:
            chunk.done = True
            task = chunk.tasks[0]
            entry = {
                "task": task,
                "attempts": chunk.attempts,
                "reason": reason,
            }
            self.stats.quarantined.append(entry)
            self.stats.events.append({"kind": "task.quarantined", **entry})

    def map(
        self,
        runner: Callable[[Any], Any],
        tasks: Sequence[Any],
        chunksize: int,
    ) -> List[Optional[Any]]:
        """Run ``runner`` over ``tasks``; results in input order.

        Quarantined tasks yield ``None`` at their position.  Raises
        nothing for worker failure — every failure mode ends in a
        retry, a respawn, a bisection or a quarantine entry.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        chunksize = max(1, chunksize)
        chunks: List[_Chunk] = [
            _Chunk(
                order=(index,),
                positions=list(range(start, min(start + chunksize, len(tasks)))),
                tasks=tasks[start : start + chunksize],
            )
            for index, start in enumerate(range(0, len(tasks), chunksize))
        ]
        results: Dict[int, Any] = {}
        while True:
            open_chunks = sorted(
                (chunk for chunk in chunks if not chunk.done),
                key=lambda chunk: chunk.order,
            )
            if not open_chunks:
                break
            pool = self._ensure_pool()
            for chunk in open_chunks:
                if chunk not in self._inflight:
                    self._submit(pool, runner, chunk)
            target = open_chunks[0]
            budget = self.deadline.deadline_s(
                self._ewma_task_s, len(target.tasks), target.attempts
            )
            # Once a worker death is observed, a healthy target should
            # still finish within a few multiples of the running
            # estimate — if it doesn't, its job died with the worker.
            est = (
                self._ewma_task_s
                if self._ewma_task_s is not None
                else self.deadline.initial_task_s
            )
            grace = min(budget, max(4.0 * est * len(target.tasks), 1.0))
            handle = self._inflight[target]
            status, outcome = self._await_result(handle, budget, grace)
            if status == "timeout":
                # Dead or hung worker: the pool is no longer trustworthy
                # (a SIGKILL-ed worker may have died holding a queue
                # lock), so harvest what finished, then rebuild it.
                self._harvest(results, chunks)
                self._inflight.pop(target, None)
                self._respawn(f"{outcome} on tasks {target.tasks!r}")
                self._fail(chunks, target, str(outcome))
            elif status == "error":  # the worker raised: pool still healthy
                self._inflight.pop(target, None)
                self._fail(
                    chunks, target,
                    f"worker raised {type(outcome).__name__}: {outcome}",
                )
            else:
                self._inflight.pop(target, None)
                self._complete(results, target, outcome)
        return [results.get(position) for position in range(len(tasks))]


# -- journal -----------------------------------------------------------------


def trial_result_to_record(result: TrialResult) -> Dict[str, Any]:
    """JSON-safe record of one :class:`~repro.runtime.pool.TrialResult`.

    Raises:
        TypeError: the result's outputs/online payload is not
            JSON-serializable (journaling is defined for the standard
            trial runners, whose outputs are strings).
    """
    record = {
        "seed": result.seed,
        "wall_time_s": result.wall_time_s,
        "rounds": result.rounds,
        "messages": result.messages,
        "digest": result.digest,
        "outputs": result.outputs,
        "online": result.online,
    }
    # Round-trip through JSON now, for two reasons: a non-serializable
    # payload fails here instead of mid-flush with a torn journal, and
    # tuples (e.g. the online record's spend ranges) normalize to lists
    # *before* the chunk digest is taken — otherwise the digest could
    # never validate against the reloaded (list-bearing) record.
    return json.loads(json.dumps(record))


def trial_result_from_record(record: Dict[str, Any]) -> TrialResult:
    online = record.get("online")
    if online is not None:
        online = dict(online)
        # JSON turns the cursor's range tuples into lists; restore them
        # so a resumed result compares equal to a fresh one.
        for key in ("nonce_range", "feldman_range"):
            if online.get(key) is not None:
                online[key] = tuple(online[key])
    return TrialResult(
        seed=record["seed"],
        wall_time_s=record["wall_time_s"],
        rounds=record["rounds"],
        messages=record["messages"],
        digest=record["digest"],
        outputs=record.get("outputs"),
        online=online,
    )


def plan_to_record(plan: Any) -> Dict[str, Any]:
    """JSON-safe record of an :class:`~repro.runtime.material.OnlinePlan`."""
    return {
        "fingerprint": plan.fingerprint,
        "assignments": [[task, slot] for task, slot in plan.assignments],
        "nonces_per_task": plan.nonces_per_task,
        "feldman_per_task": plan.feldman_per_task,
        "material_seed": plan.material_seed,
        "pool_nonces": plan.pool_nonces,
        "pool_feldman": plan.pool_feldman,
        "nonce_offset": plan.nonce_offset,
        "feldman_offset": plan.feldman_offset,
        "consume_forward": plan.consume_forward,
    }


def plan_from_record(record: Dict[str, Any]) -> Any:
    """Reconstruct the journaled plan — resume must replay it *verbatim*.

    Re-planning on resume would re-read the spend ledger the original
    run already advanced (and, consume-forward, reserve a fresh range):
    the resumed trials would spend different absolute pool entries than
    the journaled ones and the run could never be digest-checked.
    """
    from repro.runtime.material import OnlinePlan

    return OnlinePlan(
        fingerprint=record["fingerprint"],
        assignments=tuple((task, slot) for task, slot in record["assignments"]),
        nonces_per_task=record["nonces_per_task"],
        feldman_per_task=record["feldman_per_task"],
        material_seed=record["material_seed"],
        pool_nonces=record["pool_nonces"],
        pool_feldman=record["pool_feldman"],
        nonce_offset=record["nonce_offset"],
        feldman_offset=record["feldman_offset"],
        consume_forward=record["consume_forward"],
    )


def _record_digest(payload: Any) -> str:
    """Deterministic digest of a journal record body (no wall-clock)."""
    return hashlib.sha256(canonical_detail(payload).encode()).hexdigest()


class SweepJournal:
    """Crash-safe chunk-completion log for one sweep (JSONL sidecar).

    Line 1 is a header (schema id, the sweep's configuration and its
    digest, the serialized :class:`~repro.runtime.material.OnlinePlan`
    or ``None``); each further line records one completed chunk (tasks,
    serialized results, a digest over the results).  Every append
    rewrites the whole file atomically — ``tempfile.mkstemp`` + write +
    fsync + ``os.replace``, the :class:`~repro.runtime.material.SpendLedger`
    discipline — so a coordinator killed between writes leaves either
    the old journal or the new one, never a torn line.  :meth:`load`
    still tolerates a truncated copy (e.g. an operator's partial
    restore): records after the first corrupt line are discarded with a
    warning, which only means the corresponding chunks re-run.
    """

    SCHEMA = "sweep.journal.v1"

    def __init__(self, path: Any) -> None:
        self.path = pathlib.Path(path)
        self._lines: Optional[List[str]] = None

    def begin(
        self, config: Dict[str, Any], plan_record: Optional[Dict[str, Any]] = None
    ) -> None:
        """Start a fresh journal (overwrites any previous run's file)."""
        header = {
            "kind": "header",
            "schema": self.SCHEMA,
            "config": config,
            "config_digest": _record_digest(config),
            "plan": plan_record,
        }
        self._lines = [json.dumps(header, sort_keys=True)]
        self._flush()

    def append_chunk(self, tasks: List[Any], results: List[Any]) -> None:
        """Record one completed chunk; quarantined (``None``) results are
        omitted so their tasks re-run on resume instead of being lost."""
        if self._lines is None:
            raise RuntimeError("journal has no header; call begin() or load() first")
        completed = [
            (task, result)
            for task, result in zip(tasks, results)
            if result is not None
        ]
        if not completed:
            return
        payload = [trial_result_to_record(result) for _, result in completed]
        record = {
            "kind": "chunk",
            "tasks": [task for task, _ in completed],
            "results": payload,
            "digest": _record_digest(payload),
        }
        self._lines.append(json.dumps(record, sort_keys=True))
        self._flush()

    def load(self) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
        """Read the journal back: ``(header, chunk records)``.

        Raises:
            FileNotFoundError: no journal at this path.
            ValueError: the header line is missing, corrupt, or not
                this schema — there is nothing safe to resume from.
        """
        lines = self.path.read_text().splitlines()
        header: Optional[Dict[str, Any]] = None
        records: List[Dict[str, Any]] = []
        kept: List[str] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                record = None
            if index == 0:
                if (
                    not isinstance(record, dict)
                    or record.get("kind") != "header"
                    or record.get("schema") != self.SCHEMA
                    or _record_digest(record.get("config"))
                    != record.get("config_digest")
                ):
                    raise ValueError(
                        f"{self.path} is not a valid {self.SCHEMA} journal "
                        "(missing or corrupt header); cannot resume"
                    )
                header = record
            elif (
                not isinstance(record, dict)
                or record.get("kind") != "chunk"
                or _record_digest(record.get("results")) != record.get("digest")
            ):
                warnings.warn(
                    f"sweep journal {self.path} record {index} is corrupt; "
                    f"discarding it and the {len(lines) - index - 1} records "
                    "after it — those chunks will re-run",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            else:
                records.append(record)
            kept.append(line)
        if header is None:
            raise ValueError(f"{self.path} is empty; cannot resume")
        # Future appends extend the validated prefix, dropping the torn tail.
        self._lines = kept
        return header, records

    def completed(self) -> Dict[Any, TrialResult]:
        """Task -> result for every journaled chunk (after :meth:`load`)."""
        _, records = self.load()
        results: Dict[Any, TrialResult] = {}
        for record in records:
            for task, payload in zip(record["tasks"], record["results"]):
                results[task] = trial_result_from_record(payload)
        return results

    def _flush(self) -> None:
        """Atomically rewrite the journal (mkstemp + fsync + rename)."""
        assert self._lines is not None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write("\n".join(self._lines) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            # Best-effort temp-file cleanup; the original error propagates.
            except OSError:  # repro: allow[RPR005]
                pass
            raise
