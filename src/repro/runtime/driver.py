"""Round drivers: the execution loop behind :class:`~repro.uc.environment.Environment`.

A :class:`RoundDriver` owns the mechanics of one UC round — input delivery,
activation order, ``Advance_Clock`` issuing — for a single session.  The
environment (and through it every stack builder and benchmark) delegates
here, so alternative execution strategies plug in without touching protocol
code:

* :class:`SequentialRoundDriver` — the reference implementation.  A verbatim
  port of the pre-runtime ``Environment.run_round`` loop; event traces are
  byte-identical to the original engine for any fixed seed.
* :class:`BatchedRoundDriver` — the throughput implementation.  Caches the
  activation list between topology changes (registration/corruption bump
  the session's ``topology_epoch``) and elides the per-party adversary
  activation hook when the installed adversary does not override it.  Both
  elisions are trace-neutral: they skip only work that records nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.entity import Party
    from repro.uc.session import Session

#: An input action: apply the callable to the named party's machine.
Action = Tuple[str, Callable[[Any], Any]]


#: The base no-op ``Adversary.on_party_activated``, resolved lazily on
#: first use (``repro.uc`` imports the runtime, so the reverse import
#: must not run at module load).
_BASE_ACTIVATION_HOOK = None


def _base_activation_hook():
    global _BASE_ACTIVATION_HOOK
    if _BASE_ACTIVATION_HOOK is None:
        from repro.uc.adversary import Adversary

        _BASE_ACTIVATION_HOOK = Adversary.on_party_activated
    return _BASE_ACTIVATION_HOOK


class RoundDriver:
    """Base driver: holds the session and the default activation order.

    Args:
        session: The session to drive.
        order: Default activation order for ``Advance_Clock`` (party ids);
            defaults to registration order.
    """

    #: Registry name filled in by subclasses (for reporting).
    name = "abstract"

    def __init__(self, session: "Session", order: Optional[Sequence[str]] = None) -> None:
        self.session = session
        self._order = list(order) if order is not None else None

    @property
    def order(self) -> Optional[List[str]]:
        """Default activation order (party ids); None = registration order."""
        return self._order

    @order.setter
    def order(self, value: Optional[Sequence[str]]) -> None:
        self._order = list(value) if value is not None else None
        self._order_changed()

    def _order_changed(self) -> None:
        """Hook for subclasses caching anything derived from the order."""

    # -- activation order -------------------------------------------------

    def activation_order(self, order: Optional[Sequence[str]] = None) -> List[str]:
        """Resolve the activation order for one round."""
        if order is not None:
            return list(order)
        if self.order is not None:
            return list(self.order)
        return list(self.session.parties)

    # -- the round loop ----------------------------------------------------

    def run_round(
        self,
        actions: Iterable[Action] = (),
        order: Optional[Sequence[str]] = None,
    ) -> int:
        """Run one full round and return the new clock time."""
        raise NotImplementedError

    def run_rounds(self, count: int, order: Optional[Sequence[str]] = None) -> int:
        """Run ``count`` empty rounds (clock ticks only)."""
        for _ in range(count):
            self.run_round((), order=order)
        return self.session.clock.time

    def run_until(
        self,
        predicate: Callable[["Session"], bool],
        max_rounds: int = 1000,
        order: Optional[Sequence[str]] = None,
    ) -> int:
        """Run empty rounds until ``predicate(session)`` holds.

        Raises:
            RuntimeError: if the predicate is still false after
                ``max_rounds`` rounds (a liveness failure in the system
                under test).
        """
        for _ in range(max_rounds):
            if predicate(self.session):
                return self.session.clock.time
            self.run_round((), order=order)
        if predicate(self.session):
            return self.session.clock.time
        raise RuntimeError(f"predicate not satisfied within {max_rounds} rounds")

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release driver-held resources.

        The synchronous drivers hold none, so this is a no-op; the
        asyncio driver overrides it to cancel pending step tasks and
        close its private event loop.  Safe to call more than once.
        """


class SequentialRoundDriver(RoundDriver):
    """Reference driver: one party, one message, one callback at a time.

    This is the pre-runtime engine verbatim; the default backend uses it
    so that traces stay byte-identical seed-for-seed.
    """

    name = "sequential"

    def run_round(
        self,
        actions: Iterable[Action] = (),
        order: Optional[Sequence[str]] = None,
    ) -> int:
        session = self.session
        for pid, action in actions:
            party = session.party(pid)
            if party.corrupted:
                continue
            action(party)
        for pid in self.activation_order(order):
            party = session.party(pid)
            if party.corrupted:
                continue
            session.adversary.on_party_activated(party)
            if party.corrupted:
                # on_party_activated may have corrupted it.
                continue
            party.advance_clock()
        return session.clock.time


class BatchedRoundDriver(RoundDriver):
    """Throughput driver: batched activation with trace-neutral elisions.

    Differences from the sequential reference — none of which emit or
    suppress a trace event:

    * the activation party list is resolved once per topology epoch
      instead of per round (no per-round ``party()`` lookups);
    * ``Adversary.on_party_activated`` is skipped entirely when the
      installed adversary inherits the base no-op implementation.
    """

    name = "batched"

    def __init__(self, session: "Session", order: Optional[Sequence[str]] = None) -> None:
        super().__init__(session, order)
        self._cached_epoch = -1
        self._cached_parties: List["Party"] = []

    def _order_changed(self) -> None:
        self._cached_epoch = -1  # reassigning env.order must rebuild the cache

    def _parties(self) -> List["Party"]:
        session = self.session
        if session.topology_epoch != self._cached_epoch:
            if self._order is not None:
                self._cached_parties = [session.party(pid) for pid in self._order]
            else:
                self._cached_parties = list(session.parties.values())
            self._cached_epoch = session.topology_epoch
        return self._cached_parties

    def run_round(
        self,
        actions: Iterable[Action] = (),
        order: Optional[Sequence[str]] = None,
    ) -> int:
        session = self.session
        for pid, action in actions:
            party = session.party(pid)
            if party.corrupted:
                continue
            action(party)
        adversary = session.adversary
        # Bound-method aware: catches both subclass overrides and
        # instance-assigned hooks (adv.on_party_activated = fn).
        hook = adversary.on_party_activated
        hooked = getattr(hook, "__func__", hook) is not _base_activation_hook()
        if order is not None:
            parties: Sequence["Party"] = [session.party(pid) for pid in order]
        else:
            parties = self._parties()
        for party in parties:
            if party.corrupted:
                continue
            if hooked:
                hook(party)
                if party.corrupted:
                    continue
            party.advance_clock()
        return session.clock.time
