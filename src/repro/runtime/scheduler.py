"""Batched per-round message queues.

The synchronous network model delivers every message queued in round ``r``
at the start of round ``r+1``.  Pre-runtime, each functionality kept its
own ad-hoc list and invoked a callback per message.  :class:`BatchScheduler`
centralises that queueing: producers enqueue ``(key, item)`` pairs under a
named channel during the round, and the round-advance hook drains the whole
channel as one batch.

Two drain policies are supported:

* ``"fifo"`` — the batch preserves global enqueue order.  This reproduces
  the pre-runtime delivery order exactly, so event traces are byte-identical
  to the reference engine (the default backend's contract).
* ``"grouped"`` — the batch is regrouped by key (e.g. recipient pid),
  preserving per-key FIFO order but delivering each recipient's messages
  contiguously.  Cache-friendlier and one recipient lookup per group, at
  the cost of a different (still deterministic) interleaving across
  recipients in the trace.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Tuple

#: Valid drain policies.
POLICIES = ("fifo", "grouped")


class BatchScheduler:
    """Named per-round queues with batch draining.

    Args:
        policy: ``"fifo"`` (trace-preserving global order) or ``"grouped"``
            (per-key grouping, per-key FIFO preserved).
    """

    #: Optional enqueue observer installed by event-driven backends:
    #: called as ``listener(channel, key, item)`` on every enqueue, so
    #: the asyncio driver can mirror deliveries into per-party queues
    #: (awaited wake-ups) instead of polling :meth:`pending`.  Must not
    #: mutate the queue and must stay deterministic — it runs inside
    #: the digest-pinned round loop.
    listener = None

    def __init__(self, policy: str = "fifo") -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {list(POLICIES)}, got {policy!r}")
        self.policy = policy
        self._queues: Dict[str, List[Tuple[Hashable, Any]]] = {}

    def enqueue(self, channel: str, key: Hashable, item: Any) -> None:
        """Queue ``item`` under ``channel``; ``key`` is the grouping key
        (typically the recipient pid) used by the ``grouped`` policy."""
        self._queues.setdefault(channel, []).append((key, item))
        if self.listener is not None:
            self.listener(channel, key, item)

    def pending(self, channel: str) -> int:
        """Number of items currently queued under ``channel``."""
        return len(self._queues.get(channel, ()))

    def drain(self, channel: str) -> List[Tuple[Hashable, Any]]:
        """Remove and return the whole batch queued under ``channel``.

        The returned list is ordered according to :attr:`policy`; the
        channel's queue is empty afterwards (items enqueued while the
        batch is being processed land in the *next* drain).
        """
        queue = self._queues.pop(channel, None)
        if not queue:
            return []
        if self.policy == "fifo":
            return queue
        grouped: Dict[Hashable, List[Tuple[Hashable, Any]]] = {}
        for key, item in queue:
            grouped.setdefault(key, []).append((key, item))
        batch: List[Tuple[Hashable, Any]] = []
        for items in grouped.values():
            batch.extend(items)
        return batch
