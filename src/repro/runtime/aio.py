"""Asyncio event-driven execution backend and session host.

The synchronous drivers *poll*: every round, :class:`SequentialRoundDriver`
walks the activation order and each functionality drains its scheduler
queues wholesale.  This module turns the same round structure into an
*event-driven* engine:

* every party owns an :class:`asyncio.Queue` mailbox; message deliveries
  are mirrored into it by the scheduler's enqueue listener, so a party's
  step coroutine *awaits* its wake-up instead of being polled;
* round timing runs on a :class:`VirtualClock` — ``FaultPlan``-style
  delays and per-step ordering become ``await`` points on a heap of
  virtual deadlines, never wall-clock sleeps, so digests stay
  deterministic and a thousand concurrent sessions cost no idle time;
* CPU-bound session work can be offloaded through
  ``loop.run_in_executor`` to warmed thread/process pools
  (:class:`AsyncSessionHost`), reusing the same ``_warm_worker``
  initializer the sweep engine ships.

The digest contract is the whole point: :class:`AsyncRoundDriver` fires
its virtual deadlines in strict step order, one step at a time, so the
observable event sequence — input actions in global order, then
activations in activation order, with the same corruption re-checks — is
byte-identical to :class:`SequentialRoundDriver` for any fixed seed.
The differential suite enforces this for every stack builder.

:class:`AsyncSessionHost` is the service-mode entry point (``repro
serve``): it hosts N sessions concurrently on one loop — as coroutines
(:func:`async_sbc_session` / :func:`async_voting_session`) or as
executor-offloaded sync trials — and leases each session a disjoint
online-pool slot through
:class:`~repro.runtime.material.HostSlotAllocator`, so concurrent
sessions can never double-spend preprocessed randomness.
"""

from __future__ import annotations

import asyncio
import functools
import heapq
import inspect
import itertools
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.runtime.backend import ExecutionBackend, get_backend, register_backend
from repro.runtime.config import SweepConfig
from repro.runtime.driver import Action, RoundDriver
from repro.runtime.pool import (
    TrialResult,
    ensure_agreement,
    record_online_spend,
    trace_digest,
)

__all__ = [
    "ASYNC",
    "AsyncExecutionBackend",
    "AsyncRoundDriver",
    "AsyncSessionHost",
    "HostReport",
    "VirtualClock",
    "async_sbc_session",
    "async_voting_session",
    "online_ranges_disjoint",
]


#: Wall-clock bound on any single awaited step/wake-up.  The conductor
#: fires deadlines promptly, so in a healthy run these never trip; they
#: exist so a wedged session (a step that never signals completion, a
#: mailbox that never fills) fails loudly instead of hanging the host.
STEP_TIMEOUT_S = 300.0


class VirtualClock:
    """A deterministic virtual clock: a heap of awaitable deadlines.

    ``sleep(delay)`` registers a future at ``now + delay`` and returns
    it; nothing resolves until the owner calls :meth:`fire_next`, which
    pops the earliest deadline, advances virtual time to it and resolves
    its future.  No wall-clock timers are involved, so a million virtual
    seconds cost nothing and the firing order is a pure function of the
    registered delays (ties break by registration order) — the property
    that keeps event digests deterministic.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, "asyncio.Future[float]"]] = []
        self._seq = itertools.count()
        #: Current virtual time (monotonic across rounds).
        self.time = 0.0

    def sleep(self, delay: float) -> "asyncio.Future[float]":
        """An awaitable resolving when virtual time reaches ``now + delay``."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[float]" = loop.create_future()
        heapq.heappush(self._heap, (self.time + delay, next(self._seq), future))
        return future

    def fire_next(self) -> bool:
        """Advance to the earliest pending deadline and resolve it.

        Cancelled waiters (e.g. steps torn down after a mid-round
        failure) are skipped.  Returns whether anything fired.
        """
        while self._heap:
            deadline, _, future = heapq.heappop(self._heap)
            if future.done():
                continue
            self.time = max(self.time, deadline)
            future.set_result(deadline)
            return True
        return False

    @property
    def pending(self) -> int:
        """Number of registered, unfired deadlines."""
        return len(self._heap)

    def discard_pending(self) -> None:
        """Cancel and drop every unfired deadline (teardown/rebind path)."""
        while self._heap:
            _, _, future = heapq.heappop(self._heap)
            if not future.done():
                try:
                    future.cancel()
                except RuntimeError:  # repro: allow[RPR005] loop closed
                    # The owning loop is already closed; the future can
                    # never be awaited again, dropping it is enough.
                    pass


class AsyncRoundDriver(RoundDriver):
    """Event-driven round driver, digest-equal to the sequential reference.

    One UC round becomes a list of *steps* — one per input action (in
    global order) and one per activation-order party.  Each step is a
    coroutine that sleeps on the :class:`VirtualClock` until its turn,
    then awaits its party's mailbox for the wake-up payload (draining
    any mirrored network tokens first), executes, and signals the
    conductor.  The conductor fires exactly one virtual deadline at a
    time and waits for the step to finish before firing the next, so
    steps execute in *strictly* the sequential reference order and the
    event trace is byte-identical for any fixed seed — concurrency
    lives between sessions (a host interleaves many drivers on one
    loop), never inside a round.

    The synchronous :meth:`run_round` facade drives a privately owned
    event loop, so the driver drops into every existing synchronous
    call site (stack builders, ``SessionPool``, the differential
    suite); inside a running loop it refuses and directs callers to
    :meth:`run_round_async`.
    """

    name = "async"

    def __init__(self, session, order: Optional[Sequence[str]] = None) -> None:
        super().__init__(session, order)
        self.clock = VirtualClock()
        #: Mirrored delivery wake-ups consumed by steps so far — evidence
        #: the event-driven path (not polling) observed the traffic.
        self.net_tokens = 0
        # Buffered wake-up counts per recipient pid.  Plain ints, not
        # queue items: the scheduler listener may fire outside any
        # running loop (inputs are queued between rounds), and plain
        # counts survive a loop rebind where bound queues cannot.
        self._net_buffer: Dict[Any, int] = {}
        self._mailboxes: Dict[Any, "asyncio.Queue[Tuple[str, Any]]"] = {}
        self._done: Optional["asyncio.Queue[Optional[BaseException]]"] = None
        self._bound_loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None  # owned, lazy
        self._listener = self._on_enqueue  # stable bound method for identity

    # -- scheduler mirroring ----------------------------------------------

    def _on_enqueue(self, channel: str, key: Any, item: Any) -> None:
        """Scheduler listener: mirror one delivery as a mailbox wake-up.

        Must stay deterministic and side-effect-free beyond counting —
        it runs inside the digest-pinned round loop.
        """
        self._net_buffer[key] = self._net_buffer.get(key, 0) + 1

    def _install_listener(self) -> None:
        # Re-install every round: FaultPlan.install swaps the session's
        # scheduler for a FaultyScheduler, which starts listener-less.
        scheduler = getattr(self.session, "scheduler", None)
        if scheduler is not None and scheduler.listener is not self._listener:
            scheduler.listener = self._listener

    def _flush_net_tokens(self) -> None:
        """Move buffered wake-up counts into the bound party mailboxes."""
        if not self._net_buffer:
            return
        parties = self.session.parties
        for pid, count in self._net_buffer.items():
            if pid in parties:
                box = self._mailbox(pid)
                for _ in range(count):
                    box.put_nowait(("net", None))
        self._net_buffer.clear()

    # -- loop / queue binding ---------------------------------------------

    def _mailbox(self, pid: Any) -> "asyncio.Queue[Tuple[str, Any]]":
        box = self._mailboxes.get(pid)
        if box is None:
            box = asyncio.Queue()
            self._mailboxes[pid] = box
        return box

    def _bind(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._bound_loop is loop:
            return
        # Rebinding (a host moved the session to a fresh loop) drops only
        # mirrored wake-up tokens still sitting in old mailboxes — they
        # are counters, not messages, so dropping them is semantics- and
        # digest-neutral.  Real traffic lives in the scheduler queues.
        self.clock.discard_pending()
        self._mailboxes = {}
        self._done = asyncio.Queue()
        self._bound_loop = loop

    def _own_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None or self._loop.is_closed():
            self._loop = asyncio.new_event_loop()
        return self._loop

    # -- the round loop ----------------------------------------------------

    def run_round(
        self,
        actions: Iterable[Action] = (),
        order: Optional[Sequence[str]] = None,
    ) -> int:
        """Synchronous facade over :meth:`run_round_async`.

        Drives a privately owned event loop so the async driver is a
        drop-in backend for every synchronous call site.

        Raises:
            RuntimeError: called from inside a running event loop —
                hosted sessions must ``await run_round_async`` instead.
        """
        try:
            asyncio.get_running_loop()
        except RuntimeError:  # repro: allow[RPR005] no loop == happy path
            pass
        else:
            raise RuntimeError(
                "AsyncRoundDriver.run_round() called inside a running event "
                "loop; await run_round_async()/run_until_async() instead "
                "(see async_sbc_session/async_voting_session)"
            )
        loop = self._own_loop()
        return loop.run_until_complete(self.run_round_async(actions, order=order))

    async def run_round_async(
        self,
        actions: Iterable[Action] = (),
        order: Optional[Sequence[str]] = None,
    ) -> int:
        """Run one full round as awaited steps; return the new clock time.

        Every step awaits a virtual deadline and its party's mailbox;
        the conductor fires deadlines one at a time and waits for each
        step's completion signal, so execution order — hence the event
        trace — is exactly the sequential reference's.
        """
        session = self.session
        loop = asyncio.get_running_loop()
        self._bind(loop)
        self._install_listener()
        steps: List[Tuple[str, Any, Any]] = [
            ("deliver", pid, action) for pid, action in actions
        ]
        steps.extend(
            ("activate", pid, None) for pid in self.activation_order(order)
        )
        self._flush_net_tokens()
        for kind, pid, action in steps:
            self._mailbox(pid).put_nowait((kind, action))
        tasks = [
            loop.create_task(self._step(position, pid))
            for position, (_kind, pid, _action) in enumerate(steps)
        ]
        done = self._done
        assert done is not None
        try:
            # Let every step task run its first segment and register its
            # virtual deadline before any deadline fires; a step that is
            # slow to register (spurious loop scheduling) is covered by
            # the fire-retry loop below.
            await asyncio.sleep(0)
            for _ in steps:
                while not self.clock.fire_next():
                    await asyncio.sleep(0)
                err = await asyncio.wait_for(done.get(), timeout=STEP_TIMEOUT_S)
                if err is not None:
                    raise err
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self.clock.discard_pending()
        return session.clock.time

    async def _step(self, position: int, pid: Any) -> None:
        """One awaited step: virtual-deadline turn, mailbox wake-up, work."""
        await asyncio.wait_for(self.clock.sleep(position), timeout=STEP_TIMEOUT_S)
        box = self._mailbox(pid)
        kind, action = await asyncio.wait_for(box.get(), timeout=STEP_TIMEOUT_S)
        while kind == "net":
            self.net_tokens += 1
            kind, action = await asyncio.wait_for(
                box.get(), timeout=STEP_TIMEOUT_S
            )
        err: Optional[BaseException] = None
        try:
            self._execute(kind, pid, action)
        except BaseException as exc:  # signal the conductor, then re-raise
            err = exc
        done = self._done
        assert done is not None
        done.put_nowait(err)
        if err is not None:
            raise err

    def _execute(self, kind: str, pid: Any, action: Any) -> None:
        # The exact SequentialRoundDriver.run_round body, one step at a
        # time — including the post-hook corruption re-check.  Any drift
        # here breaks digest equality with the reference engine.
        session = self.session
        party = session.party(pid)
        if party.corrupted:
            return
        if kind == "deliver":
            action(party)
            return
        session.adversary.on_party_activated(party)
        if party.corrupted:
            # on_party_activated may have corrupted it.
            return
        party.advance_clock()

    # -- async run helpers -------------------------------------------------

    async def run_rounds_async(
        self, count: int, order: Optional[Sequence[str]] = None
    ) -> int:
        """Async counterpart of :meth:`RoundDriver.run_rounds`."""
        for _ in range(count):
            await self.run_round_async((), order=order)
        return self.session.clock.time

    async def run_until_async(
        self,
        predicate: Callable[[Any], bool],
        max_rounds: int = 1000,
        order: Optional[Sequence[str]] = None,
    ) -> int:
        """Async counterpart of :meth:`RoundDriver.run_until`.

        Raises:
            RuntimeError: the predicate is still false after
                ``max_rounds`` rounds.
        """
        for _ in range(max_rounds):
            if predicate(self.session):
                return self.session.clock.time
            await self.run_round_async((), order=order)
        if predicate(self.session):
            return self.session.clock.time
        raise RuntimeError(f"predicate not satisfied within {max_rounds} rounds")

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Cancel pending waiters, detach the listener, close the owned loop."""
        self.clock.discard_pending()
        scheduler = getattr(self.session, "scheduler", None)
        if scheduler is not None and scheduler.listener is self._listener:
            scheduler.listener = None
        self._net_buffer.clear()
        self._mailboxes = {}
        self._done = None
        self._bound_loop = None
        if self._loop is not None and not self._loop.is_closed():
            self._loop.close()
        self._loop = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:  # repro: allow[RPR005] GC teardown must not raise
            pass


@dataclass(frozen=True)
class AsyncExecutionBackend(ExecutionBackend):
    """The ``async`` backend: event-driven rounds, full trace, fifo drains.

    Same scheduler policy and trace mode as ``sequential`` — the driver
    is the only moving part, and it is digest-equal by construction (the
    differential suite holds it to that).
    """

    name: str = "async"
    driver_cls: Type[RoundDriver] = AsyncRoundDriver
    scheduler_policy: str = "fifo"
    trace: str = "full"
    description: str = (
        "event-driven asyncio engine: awaited mailboxes, virtual-clock "
        "rounds, digest-equal to sequential; powers `repro serve`"
    )


#: Registered at import; :func:`repro.runtime.backend.available_backends`
#: imports this module lazily so registry reads always see it.
ASYNC = register_backend(AsyncExecutionBackend())


# ---------------------------------------------------------------------------
# Coroutine session runners (the host's inline workload)
# ---------------------------------------------------------------------------


def _honest_outputs_done(parties: Dict[str, Any]) -> Callable[[Any], bool]:
    """The stacks' shared completion predicate: every honest party output."""

    def done(session: Any) -> bool:
        return all(
            party.outputs
            for pid, party in parties.items()
            if not session.is_corrupted(pid)
        )

    return done


async def _drive_until(stack: Any, predicate: Callable[[Any], bool], max_rounds: int) -> int:
    """Drive a stack to ``predicate`` cooperatively when the driver allows.

    An :class:`AsyncRoundDriver` is awaited (other hosted sessions
    interleave at every step); any other driver runs its synchronous
    loop — correct, just not cooperative — so the host accepts every
    registered backend.
    """
    driver = stack.env.driver
    if isinstance(driver, AsyncRoundDriver):
        return await driver.run_until_async(predicate, max_rounds=max_rounds)
    return driver.run_until(predicate, max_rounds=max_rounds)


async def _drive_rounds(stack: Any, count: int) -> int:
    driver = stack.env.driver
    if isinstance(driver, AsyncRoundDriver):
        return await driver.run_rounds_async(count)
    return driver.run_rounds(count)


async def async_sbc_session(
    seed: int,
    n: int = 3,
    mode: str = "hybrid",
    phi: int = 4,
    delta: int = 2,
    senders: int = 1,
    backend: Any = "async",
    trace: Optional[str] = None,
    online: Optional[Any] = None,
    batch: Optional[Any] = None,
) -> TrialResult:
    """Coroutine mirror of :func:`~repro.runtime.pool.run_sbc_trial`.

    Identical protocol flow and summary — same seed, same digest — but
    rounds are awaited on the hosting loop, so N of these interleave in
    one thread under :class:`AsyncSessionHost`.  The ambient randomness
    and batching seams are context-local (:mod:`contextvars`), so each
    session's ``spending`` cursor stays isolated however the sessions
    interleave.
    """
    from repro.core.stacks import build_sbc_stack
    from repro.crypto.batch import batching
    from repro.crypto.randomness import spending

    cursor = online.open(seed) if online is not None else None
    start = time.perf_counter()
    with spending(cursor), batching(batch):
        stack = build_sbc_stack(
            n=n, mode=mode, seed=seed, phi=phi, delta=delta, backend=backend,
            trace=trace,
        )
        for index in range(senders):
            stack.parties[f"P{index % n}"].broadcast(f"m{seed}-{index}".encode())
        # run_until_delivery(slack=2) inlined: target + 20 round budget.
        await _drive_until(
            stack,
            _honest_outputs_done(stack.parties),
            max_rounds=stack.delivery_round + 2 + 20,
        )
    online_record = record_online_spend(stack.session, cursor)
    elapsed = time.perf_counter() - start
    delivered = stack.delivered()
    honest_views = {
        pid: view
        for pid, view in delivered.items()
        if not stack.session.is_corrupted(pid)
    }
    agreed = ensure_agreement(honest_views, seed=seed)
    stack.env.driver.close()
    return TrialResult(
        seed=seed,
        wall_time_s=elapsed,
        rounds=stack.session.metrics.get("rounds.advanced"),
        messages=stack.session.metrics.get("messages.total"),
        digest=trace_digest(stack.session.log),
        outputs=repr(agreed),
        online=online_record,
    )


async def async_voting_session(
    seed: int,
    voters: int = 3,
    candidates: Tuple[str, ...] = ("yes", "no"),
    mode: str = "hybrid",
    backend: Any = "async",
    trace: Optional[str] = None,
    online: Optional[Any] = None,
    batch: Optional[Any] = None,
) -> TrialResult:
    """Coroutine mirror of :func:`~repro.runtime.pool.run_voting_trial`.

    The election workload is the host's proof-of-spend: every hosted
    session burns real nonces, so the 1000-session bench can check that
    leased pool slices never overlap (zero double-spend).
    """
    from repro.core.stacks import build_voting_stack
    from repro.crypto.batch import batching
    from repro.crypto.randomness import spending

    candidates = tuple(candidates)
    cursor = online.open(seed) if online is not None else None
    start = time.perf_counter()
    with spending(cursor), batching(batch):
        stack = build_voting_stack(
            voters=voters, mode=mode, seed=seed, candidates=candidates,
            backend=backend, trace=trace,
        )
        if mode == "ideal":
            stack.service.init()
        else:
            for authority in stack.authorities.values():
                authority.deal()
            await _drive_rounds(stack, 1)
        for index in range(voters):
            stack.parties[f"V{index}"].vote(candidates[index % len(candidates)])
        await _drive_until(
            stack,
            _honest_outputs_done(stack.parties),
            max_rounds=stack.phi + stack.delta + 30,
        )
    online_record = record_online_spend(stack.session, cursor)
    elapsed = time.perf_counter() - start
    honest_tallies = {
        pid: tuple(sorted(tally.items()))
        for pid, tally in stack.results().items()
        if not stack.session.is_corrupted(pid)
    }
    agreed = ensure_agreement(honest_tallies, seed=seed)
    stack.env.driver.close()
    return TrialResult(
        seed=seed,
        wall_time_s=elapsed,
        rounds=stack.session.metrics.get("rounds.advanced"),
        messages=stack.session.metrics.get("messages.total"),
        digest=trace_digest(stack.session.log),
        outputs=repr(agreed),
        online=online_record,
    )


# ---------------------------------------------------------------------------
# Service mode: host N concurrent sessions on one loop
# ---------------------------------------------------------------------------


def online_ranges_disjoint(results: Sequence[Any]) -> Tuple[bool, int]:
    """Check that no two trial spend records overlap pool ranges.

    Returns ``(disjoint, spends_checked)`` over every result carrying an
    ``online`` spend summary that actually *spent* (sampled-only records
    reserve nothing).  This is the zero-double-spend evidence the E22
    bench and the stress tests assert.
    """
    pools = (("nonce_range", "nonces_spent"), ("feldman_range", "feldman_spent"))
    spans_by_pool: Dict[str, List[Tuple[int, int]]] = {pool: [] for pool, _ in pools}
    for result in results:
        record = getattr(result, "online", None)
        if not record:
            continue
        for pool, spent_key in pools:
            lo_hi = record.get(pool)
            spent = int(record.get(spent_key, 0))
            if lo_hi and spent:
                spans_by_pool[pool].append((int(lo_hi[0]), int(lo_hi[0]) + spent))
    checked = 0
    disjoint = True
    # The two pools are separate index spaces: a session's nonce slice
    # legitimately shares indices with its own feldman slice, so overlap
    # is only ever checked within one pool.
    for spans in spans_by_pool.values():
        spans.sort()
        checked += len(spans)
        for (_, prev_hi), (lo, _) in zip(spans, spans[1:]):
            if lo < prev_hi:
                disjoint = False
    return disjoint, checked


@dataclass
class HostReport:
    """Aggregate view over one :meth:`AsyncSessionHost.run`."""

    backend: str
    executor: str
    wall_time_s: float
    results: List[Any] = field(default_factory=list)
    #: Task indices in the order sessions *finished* — evidence of
    #: interleaving (``results`` itself stays in submission order).
    completion_order: List[int] = field(default_factory=list)
    #: Aggregate pool consumption for online hosts (None otherwise).
    online_spend: Optional[Dict[str, int]] = None

    @property
    def sessions(self) -> int:
        return len(self.results)

    @property
    def sessions_per_s(self) -> float:
        """The service-mode headline: completed sessions per wall second."""
        return self.sessions / max(self.wall_time_s, 1e-9)

    @property
    def interleaved(self) -> int:
        """Completions that finished out of submission order.

        Zero means the sessions ran back-to-back (no concurrency
        observed); coroutine hosts should report a large fraction.
        """
        return sum(
            1
            for position, index in enumerate(self.completion_order)
            if index != position
        )

    def summary(self) -> Dict[str, Any]:
        """Uniform record for benchmark JSON emission.

        Raises:
            ValueError: the report is empty — a ``sessions=0`` service
                row would mask a host that silently ran nothing.
        """
        if not self.results:
            raise ValueError("empty host report: the host ran no sessions")
        record: Dict[str, Any] = {
            "backend": self.backend,
            "executor": self.executor,
            "sessions": self.sessions,
            "wall_time_s": round(self.wall_time_s, 6),
            "sessions_per_s": round(self.sessions_per_s, 3),
            "interleaved": self.interleaved,
        }
        if self.online_spend is not None:
            record["online"] = True
            record.update(self.online_spend)
        return record


class AsyncSessionHost:
    """Host N concurrent sessions on one event loop (``repro serve``).

    Args:
        runner: Per-session workload, called as ``runner(seed,
            **kwargs)``.  A coroutine function (the default
            :func:`async_voting_session`) runs inline on the host loop
            and interleaves with every other session at each awaited
            round step; a plain function under ``executor="thread"`` /
            ``"process"`` is offloaded through ``run_in_executor`` to a
            warmed pool (it must be picklable for processes — the sweep
            trial runners qualify).
        config: A :class:`~repro.runtime.config.SweepConfig`; the host
            reads ``backend`` (defaults to ``async``), ``executor``,
            ``workers``, ``warmup``, ``material``, ``online``,
            ``consume_forward``, ``batch_verify`` and ``trace``.
        session_timeout_s: Wall-clock bound on one executor-offloaded
            session (inline coroutine sessions are bounded by their
            round budgets instead).
        admission_chunk: Hosted sessions are admitted in chunks of this
            many before yielding to the loop, so early sessions start
            making progress while late ones are still being created.
        runner_kwargs: Extra keywords forwarded to every session's
            runner (only names the runner's signature accepts are
            injected, so minimal stress runners need no ``**kwargs``).

    Online mode: with ``config.online`` the host plans pool slots over
    the distinct seeds (or takes an explicit
    :class:`~repro.runtime.material.OnlinePlan`) and leases each session
    its slot through a
    :class:`~repro.runtime.material.HostSlotAllocator` — concurrent
    sessions therefore spend *disjoint* pool slices by construction, and
    a session beyond the planned capacity degrades to counted sampling
    instead of ever reusing a slice.
    """

    def __init__(
        self,
        runner: Callable[..., Any] = async_voting_session,
        *,
        config: Optional[SweepConfig] = None,
        session_timeout_s: float = 600.0,
        admission_chunk: int = 64,
        **runner_kwargs: Any,
    ) -> None:
        if config is None:
            config = SweepConfig(backend="async", executor="inline")
        if config.executor != "inline" and inspect.iscoroutinefunction(runner):
            raise ValueError(
                f"coroutine runners only work with executor='inline'; use a "
                f"synchronous trial runner for executor={config.executor!r}"
            )
        if session_timeout_s <= 0:
            raise ValueError(
                f"session_timeout_s must be > 0, got {session_timeout_s}"
            )
        self.config = config
        self.runner = runner
        self.session_timeout_s = session_timeout_s
        self.admission_chunk = max(1, int(admission_chunk))
        self.runner_kwargs = dict(runner_kwargs)
        self._backend = get_backend(config.backend)
        parameters = inspect.signature(runner).parameters
        self._accepts_any = any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )
        self._accepted = frozenset(parameters)
        #: Completion order of the most recent run (also on its report).
        self.completion_order: List[int] = []

    def _accepts(self, name: str) -> bool:
        return self._accepts_any or name in self._accepted

    def _session_kwargs(self, lease: Optional[Any]) -> Dict[str, Any]:
        kwargs = dict(self.runner_kwargs)
        if self._accepts("backend"):
            # Forward the backend *instance* so with_trace overrides and
            # unregistered backends survive executor offload.
            kwargs.setdefault("backend", self._backend)
        if self.config.trace is not None and self._accepts("trace"):
            kwargs.setdefault("trace", self.config.trace)
        if lease is not None and self._accepts("online"):
            kwargs.setdefault("online", lease)
        if self.config.batch_policy is not None and self._accepts("batch"):
            kwargs.setdefault("batch", self.config.batch_policy)
        return kwargs

    def _resolve_plan(self, seeds: Sequence[Any]) -> Optional[Any]:
        if not self.config.online:
            return None
        from repro.runtime.material import OnlinePlan

        if isinstance(self.config.online, OnlinePlan):
            return self.config.online
        from repro.crypto.groups import TEST_GROUP

        group = (self.config.material_groups or (TEST_GROUP,))[0]
        # Duplicate seeds share a slot (replay semantics, same as the
        # sweep engine); service deployments use distinct session seeds.
        distinct = list(dict.fromkeys(seeds))
        return OnlinePlan.for_tasks(
            distinct, group=group, consume_forward=self.config.consume_forward
        )

    def _make_executor(self) -> Optional[Any]:
        config = self.config
        if config.executor == "inline":
            if config.warmup:
                self._backend.warm_up(config.material)
            return None
        from repro.runtime.pool import _warm_worker, resolve_workers

        workers = resolve_workers(config.workers)
        if config.executor == "thread":
            from concurrent.futures import ThreadPoolExecutor

            if config.warmup:
                # Threads share the process caches: warm once, inline.
                self._backend.warm_up(config.material)
            return ThreadPoolExecutor(max_workers=workers)
        from concurrent.futures import ProcessPoolExecutor

        from repro.crypto.groups import get_arith_backend

        initargs = (self._backend, config.material, get_arith_backend().name)
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_warm_worker if config.warmup else None,
            initargs=initargs if config.warmup else (),
        )

    async def _session(
        self,
        index: int,
        seed: Any,
        allocator: Optional[Any],
        executor: Optional[Any],
    ) -> Any:
        lease = allocator.lease(seed) if allocator is not None else None
        kwargs = self._session_kwargs(lease)
        if executor is None:
            if inspect.iscoroutinefunction(self.runner):
                result = await self.runner(seed, **kwargs)
            else:
                # Synchronous runner inline: correct but blocks the loop
                # per session (no interleaving) — mainly for testing.
                result = self.runner(seed, **kwargs)
        else:
            loop = asyncio.get_running_loop()
            bound = functools.partial(self.runner, seed, **kwargs)
            result = await asyncio.wait_for(
                loop.run_in_executor(executor, bound),
                timeout=self.session_timeout_s,
            )
        self.completion_order.append(index)
        return result

    async def serve(
        self, seeds: Iterable[Any], duration_s: Optional[float] = None
    ) -> HostReport:
        """Host one session per seed concurrently; await them all.

        ``duration_s`` bounds *admission*: once the wall budget is
        spent, no further sessions start (already-admitted ones run to
        completion, each bounded by its own round budget or timeout).
        Results come back in submission order regardless of completion
        interleaving; the report's ``completion_order`` keeps the
        finish sequence as concurrency evidence.
        """
        loop = asyncio.get_running_loop()
        seeds = list(seeds)
        plan = self._resolve_plan(seeds)
        allocator = None
        if plan is not None:
            from repro.runtime.material import HostSlotAllocator

            allocator = HostSlotAllocator(plan)
        executor = self._make_executor()
        self.completion_order = []
        started = time.perf_counter()
        tasks: List["asyncio.Task[Any]"] = []
        try:
            for index, seed in enumerate(seeds):
                if (
                    duration_s is not None
                    and time.perf_counter() - started >= duration_s
                ):
                    break
                tasks.append(
                    loop.create_task(
                        self._session(index, seed, allocator, executor)
                    )
                )
                if len(tasks) % self.admission_chunk == 0:
                    # Yield so admitted sessions start interleaving
                    # while the rest are still being created.
                    await asyncio.sleep(0)
            results = list(await asyncio.gather(*tasks)) if tasks else []
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            if executor is not None:
                executor.shutdown(wait=True)
        online_spend = None
        if plan is not None and results:
            online_spend = _ledger_host_spend(plan, results)
        return HostReport(
            backend=self._backend.name,
            executor=self.config.executor,
            wall_time_s=time.perf_counter() - started,
            results=results,
            completion_order=list(self.completion_order),
            online_spend=online_spend,
        )

    def run(
        self, seeds: Iterable[Any], duration_s: Optional[float] = None
    ) -> HostReport:
        """Synchronous entry point: own a fresh loop, :meth:`serve`, close it.

        Raises:
            RuntimeError: called from inside a running event loop —
                ``await host.serve(...)`` instead.
        """
        try:
            asyncio.get_running_loop()
        except RuntimeError:  # repro: allow[RPR005] no loop == happy path
            pass
        else:
            raise RuntimeError(
                "AsyncSessionHost.run() called inside a running event loop; "
                "await host.serve(...) instead"
            )
        loop = asyncio.new_event_loop()
        try:
            return loop.run_until_complete(self.serve(seeds, duration_s))
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                loop.close()


def _ledger_host_spend(plan: Any, results: Sequence[Any]) -> Dict[str, int]:
    """Sum per-session spend records and ledger them (host counterpart of
    ``SessionPool._aggregate_online``; same advisory never-fail contract)."""
    import warnings

    from repro.runtime.pool import SessionPool

    totals, nonce_reach, feldman_reach = SessionPool._spend_totals(results)
    try:
        from repro.runtime.material import MaterialStore

        MaterialStore().record_spend(
            plan.fingerprint,
            nonces=totals["nonces_spent"],
            feldman=totals["feldman_spent"],
            nonce_high=nonce_reach,
            feldman_high=feldman_reach,
            material_seed=plan.material_seed,
        )
    except OSError as exc:
        warnings.warn(
            f"could not record host session spend in the material ledger "
            f"({exc}); the next consume-forward run may re-spend these "
            "pool slices",
            RuntimeWarning,
            stacklevel=2,
        )
    return totals
