"""Preprocessing store: ship offline crypto material to the worker fleet.

The offline phase (:mod:`repro.crypto.preprocessing`) turns warm-up work
into bytes; this module owns where those bytes live and how workers get
them:

* :class:`MaterialStore` — a versioned on-disk cache
  (``~/.cache/repro-material/<group-fingerprint>.v1`` by default,
  ``REPRO_MATERIAL_DIR`` overrides), written atomically and validated by
  the blob's integrity hash on every read;
* :data:`MATERIAL_SOURCES` — the three ways a worker can obtain its
  material: ``compute`` (rebuild locally, the pre-store behavior),
  ``disk`` (read the store file), ``shared`` (attach a
  ``multiprocessing.shared_memory`` segment published by the parent,
  falling back to an mmap of the store file);
* :func:`publish_material` / :func:`warm_with_material` — the parent
  publishes before forking, each worker attaches in its initializer.

Every failure path degrades to ``compute`` with a :class:`RuntimeWarning`
— a corrupt cache file or a torn shared-memory segment slows a worker
down, it never crashes one — and attached tables are shape- and
spot-checked, so the degradation can never silently change results
(trace digests are identical across all three sources by construction).
"""

from __future__ import annotations

import mmap
import os
import pathlib
import tempfile
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.crypto.groups import GROUP_2048, TEST_GROUP, SchnorrGroup, warm_groups
from repro.crypto.preprocessing import (
    CryptoMaterial,
    MaterialError,
    MaterialIntegrityError,
    build_material,
    deserialize_material,
    group_fingerprint,
    serialize_material,
)

__all__ = [
    "MATERIAL_COMPUTE",
    "MATERIAL_DISK",
    "MATERIAL_SHARED",
    "MATERIAL_SOURCES",
    "MaterialHandle",
    "MaterialRef",
    "MaterialStore",
    "default_groups",
    "default_material_dir",
    "publish_material",
    "resolve_material_source",
    "warm_with_material",
]

#: Rebuild caches locally in every worker (the pre-store behavior).
MATERIAL_COMPUTE = "compute"
#: Read the serialized material from the on-disk store.
MATERIAL_DISK = "disk"
#: Attach a shared-memory segment published by the parent (mmap fallback).
MATERIAL_SHARED = "shared"

MATERIAL_SOURCES = (MATERIAL_COMPUTE, MATERIAL_DISK, MATERIAL_SHARED)

#: Environment variable overriding the store directory.
MATERIAL_DIR_ENV = "REPRO_MATERIAL_DIR"


def resolve_material_source(source: Optional[str]) -> str:
    """Validate a material source name (``None`` means ``compute``)."""
    if source is None:
        return MATERIAL_COMPUTE
    if source not in MATERIAL_SOURCES:
        known = ", ".join(MATERIAL_SOURCES)
        raise ValueError(f"material source must be one of {known}, got {source!r}")
    return source


def default_material_dir() -> pathlib.Path:
    """The store root: ``$REPRO_MATERIAL_DIR`` or ``~/.cache/repro-material``."""
    override = os.environ.get(MATERIAL_DIR_ENV)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro-material"


def default_groups() -> Tuple[SchnorrGroup, ...]:
    """The parameter sets the store covers by default.

    These are the module singletons protocol stacks resolve at build
    time, so attaching material to them warms every session in the
    worker.
    """
    return (TEST_GROUP, GROUP_2048)


class MaterialStore:
    """Versioned on-disk cache of serialized preprocessing material."""

    SUFFIX = ".v1"

    def __init__(self, root: Union[str, pathlib.Path, None] = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_material_dir()

    def path_for(self, group: SchnorrGroup) -> pathlib.Path:
        return self.root / f"{group_fingerprint(group)}{self.SUFFIX}"

    def save(self, material: CryptoMaterial) -> pathlib.Path:
        """Atomically persist one material blob (write-temp-then-rename)."""
        return self._write_blob(material.fingerprint, serialize_material(material))

    def _write_blob(self, fingerprint: str, blob: bytes) -> pathlib.Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"{fingerprint}{self.SUFFIX}"
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=fingerprint, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def load_blob(self, group: SchnorrGroup) -> bytes:
        """Raw serialized blob for ``group`` (validated by the caller).

        Raises:
            FileNotFoundError: no material cached for this fingerprint.
        """
        return self.path_for(group).read_bytes()

    def load(self, group: SchnorrGroup) -> CryptoMaterial:
        """Deserialize and validate the cached material for ``group``.

        Raises:
            FileNotFoundError: no material cached for this fingerprint.
            MaterialError: the file exists but is corrupt or mismatched.
        """
        material = deserialize_material(self.load_blob(group))
        if not material.matches(group):
            raise MaterialIntegrityError(
                f"store file {self.path_for(group).name} holds material for "
                "different group parameters"
            )
        return material

    def ensure(self, group: SchnorrGroup, **build_kwargs: Any) -> CryptoMaterial:
        """Load the cached material, building (and persisting) on a miss.

        A corrupt cache file is the offline phase's job to repair: it
        warns, rebuilds from scratch and overwrites the bad file — the
        fallback-to-compute contract at the store level.
        """
        return deserialize_material(self.ensure_blob(group, **build_kwargs))

    def ensure_blob(self, group: SchnorrGroup, **build_kwargs: Any) -> bytes:
        """Like :meth:`ensure`, but returns the validated raw blob.

        The publish path ships bytes (into shared memory), so this reads
        and validates the file exactly once instead of a deserialize in
        ``ensure`` followed by a second read of the same file.
        """
        try:
            blob = self.load_blob(group)
            if not deserialize_material(blob).matches(group):
                raise MaterialIntegrityError(
                    f"store file {self.path_for(group).name} holds material "
                    "for different group parameters"
                )
            return blob
        except FileNotFoundError:
            pass
        except MaterialError as exc:
            warnings.warn(
                f"preprocessing store file {self.path_for(group).name} is "
                f"unusable ({exc}); rebuilding from scratch",
                RuntimeWarning,
                stacklevel=2,
            )
        material = build_material(group, **build_kwargs)
        blob = serialize_material(material)
        self._write_blob(material.fingerprint, blob)
        return blob

    def build(
        self, groups: Optional[Sequence[SchnorrGroup]] = None, **build_kwargs: Any
    ) -> List[CryptoMaterial]:
        """Offline phase over every parameter set; persists each blob."""
        built = []
        for group in groups if groups is not None else default_groups():
            material = build_material(group, **build_kwargs)
            self.save(material)
            built.append(material)
        return built

    def inspect(self) -> List[Dict[str, Any]]:
        """One record per store file: pool sizes, footprint, integrity."""
        records: List[Dict[str, Any]] = []
        if not self.root.is_dir():
            return records
        for path in sorted(self.root.glob(f"*{self.SUFFIX}")):
            record: Dict[str, Any] = {
                "file": path.name,
                "file_bytes": path.stat().st_size,
            }
            try:
                material = deserialize_material(path.read_bytes())
            except MaterialError as exc:
                record.update({"ok": False, "error": str(exc)})
            else:
                record.update({"ok": True, **material.summary()})
            records.append(record)
        return records

    def clear(self) -> int:
        """Delete every store file; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob(f"*{self.SUFFIX}"):
            path.unlink()
            removed += 1
        return removed


# ---------------------------------------------------------------------------
# Publish (parent) / attach (worker)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MaterialRef:
    """Picklable pointer to one group's serialized material."""

    fingerprint: str
    nbytes: int
    shm_name: Optional[str] = None
    path: Optional[str] = None


@dataclass(frozen=True)
class MaterialHandle:
    """What a worker initializer needs to attach preprocessed material."""

    source: str
    refs: Tuple[MaterialRef, ...] = ()


def _unregister_shm(name: str) -> None:
    """Detach an attached segment from a *spawned* worker's tracker.

    On 3.11 ``SharedMemory(name=...)`` (attach, not create) still
    registers with the resource tracker (bpo-39959; fixed by
    ``track=False`` in 3.13).  Under ``spawn`` each worker runs its own
    tracker, which would unlink the parent's live segment when the
    worker exits — so the attach must be unregistered there.  Under
    ``fork`` parent and workers share one tracker whose registry is a
    set, so the attach was a no-op and unregistering here would instead
    erase the parent's own entry.
    """
    try:
        import multiprocessing

        if multiprocessing.get_start_method(allow_none=True) != "spawn":
            return
        from multiprocessing import resource_tracker

        resource_tracker.unregister(name, "shared_memory")
    except Exception:
        pass


def publish_material(
    source: str,
    groups: Optional[Sequence[SchnorrGroup]] = None,
    store: Optional[MaterialStore] = None,
) -> Tuple[Optional[MaterialHandle], Callable[[], None]]:
    """Parent half of the online phase: stage material for the workers.

    Returns ``(handle, release)``; the handle ships to every worker via
    the pool initializer and ``release()`` must run once the pool is done
    (it unlinks any shared-memory segments).  ``compute`` (or a failed
    publish) yields ``(None, noop)`` — workers then warm up locally.
    """
    source = resolve_material_source(source)
    if groups is None:
        groups = (TEST_GROUP,)
    if source == MATERIAL_COMPUTE:
        return None, lambda: None
    store = store or MaterialStore()
    refs: List[MaterialRef] = []
    segments: List[Any] = []

    def release() -> None:
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass

    try:
        for group in groups:
            # Lazy offline phase: load-and-validate, or build-and-save.
            blob = store.ensure_blob(group)
            fingerprint = group_fingerprint(group)
            ref = MaterialRef(
                fingerprint=fingerprint,
                nbytes=len(blob),
                path=str(store.path_for(group)),
            )
            if source == MATERIAL_SHARED:
                from multiprocessing import shared_memory

                # Keep the name (with its leading slash) within macOS's
                # 31-char POSIX shm limit: "/rm-" + 12-hex fingerprint
                # prefix + 8-hex random = 25 chars.
                segment = shared_memory.SharedMemory(
                    name=f"rm-{fingerprint[:12]}-{os.urandom(4).hex()}",
                    create=True,
                    size=len(blob),
                )
                segment.buf[: len(blob)] = blob
                segments.append(segment)
                ref = MaterialRef(
                    fingerprint=fingerprint,
                    nbytes=len(blob),
                    shm_name=segment.name,
                    path=ref.path,
                )
            refs.append(ref)
    except Exception as exc:
        release()
        warnings.warn(
            f"could not publish {source} preprocessing material ({exc}); "
            "workers will fall back to computing their own caches",
            RuntimeWarning,
            stacklevel=2,
        )
        return None, lambda: None
    return MaterialHandle(source=source, refs=tuple(refs)), release


def _read_ref(ref: MaterialRef) -> bytes:
    """Fetch one ref's blob: shared memory first, then an mmap of the file."""
    if ref.shm_name is not None:
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(name=ref.shm_name)
        except FileNotFoundError:
            pass  # segment gone (e.g. parent released early): mmap fallback
        else:
            try:
                return bytes(segment.buf[: ref.nbytes])
            finally:
                segment.close()
                _unregister_shm(ref.shm_name)
    if ref.path is None:
        raise MaterialError(f"no byte source for material ref {ref.fingerprint}")
    with open(ref.path, "rb") as handle:
        with mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ) as view:
            return bytes(view)


def _attach_handle(handle: MaterialHandle) -> None:
    """Worker half: install every published blob into its group singleton.

    Any per-ref failure warns and leaves that group to the compute
    fallback — the initializer must never raise (a raising initializer
    kills pool workers in a loop instead of running the sweep).
    """
    targets = {group_fingerprint(group): group for group in default_groups()}
    for ref in handle.refs:
        group = targets.get(ref.fingerprint)
        if group is None:
            warnings.warn(
                f"published material {ref.fingerprint} matches no known "
                "group; ignoring it",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        try:
            deserialize_material(_read_ref(ref)).attach(group)
        except Exception as exc:
            warnings.warn(
                f"could not attach preprocessed material {ref.fingerprint} "
                f"({exc}); falling back to computing caches in this worker",
                RuntimeWarning,
                stacklevel=2,
            )


def warm_with_material(
    material: Union[MaterialHandle, str, None] = None,
    store: Optional[MaterialStore] = None,
    groups: Optional[Sequence[SchnorrGroup]] = None,
) -> None:
    """Warm this process's crypto caches from the given material source.

    Accepts a :class:`MaterialHandle` (process workers), a source name
    (inline/thread executors and direct callers), or ``None``/"compute".
    Always finishes with :func:`~repro.crypto.groups.warm_groups`, which
    is a cheap no-op for every cache an attach already installed — so
    whatever happened above, the process ends up warm.
    """
    if isinstance(material, MaterialHandle):
        _attach_handle(material)
    else:
        source = resolve_material_source(material)
        if source != MATERIAL_COMPUTE:
            # Local attach: read the store directly; ``shared`` has no
            # parent segment to attach to here, so it uses the mmap path.
            handle, release = publish_material(
                MATERIAL_DISK, groups=groups, store=store
            )
            try:
                if handle is not None:
                    _attach_handle(handle)
            finally:
                release()
    warm_groups()
