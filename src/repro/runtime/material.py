"""Preprocessing store: ship offline crypto material to the worker fleet.

The offline phase (:mod:`repro.crypto.preprocessing`) turns warm-up work
into bytes; this module owns where those bytes live and how workers get
them:

* :class:`MaterialStore` — a versioned on-disk cache
  (``~/.cache/repro-material/<group-fingerprint>.v1`` by default,
  ``REPRO_MATERIAL_DIR`` overrides), written atomically and validated by
  the blob's integrity hash on every read;
* :data:`MATERIAL_SOURCES` — the three ways a worker can obtain its
  material: ``compute`` (rebuild locally, the pre-store behavior),
  ``disk`` (read the store file), ``shared`` (attach a
  ``multiprocessing.shared_memory`` segment published by the parent,
  falling back to an mmap of the store file);
* :func:`publish_material` / :func:`warm_with_material` — the parent
  publishes before forking, each worker attaches in its initializer.

Every failure path degrades to ``compute`` with a :class:`RuntimeWarning`
— a corrupt cache file or a torn shared-memory segment slows a worker
down, it never crashes one — and attached tables are shape- and
spot-checked, so the degradation can never silently change results
(trace digests are identical across all three sources by construction).

The **online mode** lives here too: :class:`MaterialCursor` implements
the :class:`~repro.crypto.randomness.RandomnessSource` seam over a
reserved slice of one material's nonce/Feldman pools, and
:class:`OnlinePlan` partitions those pools across a sweep's tasks —
each task gets the slice at ``slot * per_task``, so process fan-out can
never double-spend an entry and an inline replay of the same plan spends
exactly the same entries (seed-for-seed digest equality, ``--verify``).
Exhausted or unavailable slices fall back to sampling with a counted
warning; the consumed ranges land in the execution trace, which pins
pool-consuming digests separately from sample-per-call runs.
"""

from __future__ import annotations

import json
import mmap
import os
import pathlib
import tempfile
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.crypto.groups import GROUP_2048, TEST_GROUP, SchnorrGroup, warm_groups
from repro.crypto.preprocessing import (
    CryptoMaterial,
    MaterialError,
    MaterialIntegrityError,
    build_material,
    deserialize_material,
    group_fingerprint,
    serialize_material,
)
from repro.crypto.randomness import RandomnessSource, SampleSource

__all__ = [
    "DEFAULT_FELDMAN_PER_TASK",
    "DEFAULT_NONCES_PER_TASK",
    "MATERIAL_COMPUTE",
    "MATERIAL_DISK",
    "MATERIAL_SHARED",
    "MATERIAL_SOURCES",
    "MaterialCursor",
    "MaterialHandle",
    "MaterialRef",
    "MaterialStore",
    "OnlinePlan",
    "attached_material",
    "default_groups",
    "default_material_dir",
    "online_pool_requirement",
    "publish_material",
    "register_attached",
    "resolve_material_source",
    "warm_with_material",
]

#: Rebuild caches locally in every worker (the pre-store behavior).
MATERIAL_COMPUTE = "compute"
#: Read the serialized material from the on-disk store.
MATERIAL_DISK = "disk"
#: Attach a shared-memory segment published by the parent (mmap fallback).
MATERIAL_SHARED = "shared"

MATERIAL_SOURCES = (MATERIAL_COMPUTE, MATERIAL_DISK, MATERIAL_SHARED)

#: Environment variable overriding the store directory.
MATERIAL_DIR_ENV = "REPRO_MATERIAL_DIR"


def resolve_material_source(source: Optional[str]) -> str:
    """Validate a material source name (``None`` means ``compute``)."""
    if source is None:
        return MATERIAL_COMPUTE
    if source not in MATERIAL_SOURCES:
        known = ", ".join(MATERIAL_SOURCES)
        raise ValueError(f"material source must be one of {known}, got {source!r}")
    return source


def default_material_dir() -> pathlib.Path:
    """The store root: ``$REPRO_MATERIAL_DIR`` or ``~/.cache/repro-material``."""
    override = os.environ.get(MATERIAL_DIR_ENV)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro-material"


def default_groups() -> Tuple[SchnorrGroup, ...]:
    """The parameter sets the store covers by default.

    These are the module singletons protocol stacks resolve at build
    time, so attaching material to them warms every session in the
    worker.
    """
    return (TEST_GROUP, GROUP_2048)


class MaterialStore:
    """Versioned on-disk cache of serialized preprocessing material."""

    SUFFIX = ".v1"

    def __init__(self, root: Union[str, pathlib.Path, None] = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_material_dir()

    def path_for(self, group: SchnorrGroup) -> pathlib.Path:
        return self.root / f"{group_fingerprint(group)}{self.SUFFIX}"

    def save(self, material: CryptoMaterial) -> pathlib.Path:
        """Atomically persist one material blob (write-temp-then-rename)."""
        return self._write_blob(material.fingerprint, serialize_material(material))

    def _write_blob(self, fingerprint: str, blob: bytes) -> pathlib.Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"{fingerprint}{self.SUFFIX}"
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=fingerprint, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def load_blob(self, group: SchnorrGroup) -> bytes:
        """Raw serialized blob for ``group`` (validated by the caller).

        Raises:
            FileNotFoundError: no material cached for this fingerprint.
        """
        return self.path_for(group).read_bytes()

    def load(self, group: SchnorrGroup) -> CryptoMaterial:
        """Deserialize and validate the cached material for ``group``.

        Raises:
            FileNotFoundError: no material cached for this fingerprint.
            MaterialError: the file exists but is corrupt or mismatched.
        """
        material = deserialize_material(self.load_blob(group))
        if not material.matches(group):
            raise MaterialIntegrityError(
                f"store file {self.path_for(group).name} holds material for "
                "different group parameters"
            )
        return material

    def load_fingerprint(self, fingerprint: str) -> CryptoMaterial:
        """Load the store file named by a bare fingerprint.

        The online phase resolves pools by fingerprint (that is all an
        :class:`OnlinePlan` carries across the process boundary), so this
        is the lookup path when the in-process attach registry misses.

        Raises:
            FileNotFoundError: no material cached for this fingerprint.
            MaterialError: corrupt file, or a file whose embedded
                parameters do not hash to its name.
        """
        path = self.root / f"{fingerprint}{self.SUFFIX}"
        material = deserialize_material(path.read_bytes())
        if material.fingerprint != fingerprint:
            raise MaterialIntegrityError(
                f"store file {path.name} holds material fingerprinted "
                f"{material.fingerprint} (renamed or cross-copied file)"
            )
        return material

    def ensure(self, group: SchnorrGroup, **build_kwargs: Any) -> CryptoMaterial:
        """Load the cached material, building (and persisting) on a miss.

        A corrupt cache file is the offline phase's job to repair: it
        warns, rebuilds from scratch and overwrites the bad file — the
        fallback-to-compute contract at the store level.
        """
        return deserialize_material(self.ensure_blob(group, **build_kwargs))

    def ensure_blob(self, group: SchnorrGroup, **build_kwargs: Any) -> bytes:
        """Like :meth:`ensure`, but returns the validated raw blob.

        The publish path ships bytes (into shared memory), so this reads
        and validates the file exactly once instead of a deserialize in
        ``ensure`` followed by a second read of the same file.
        """
        try:
            blob = self.load_blob(group)
            if not deserialize_material(blob).matches(group):
                raise MaterialIntegrityError(
                    f"store file {self.path_for(group).name} holds material "
                    "for different group parameters"
                )
            return blob
        except FileNotFoundError:
            pass
        except MaterialError as exc:
            warnings.warn(
                f"preprocessing store file {self.path_for(group).name} is "
                f"unusable ({exc}); rebuilding from scratch",
                RuntimeWarning,
                stacklevel=2,
            )
        material = build_material(group, **build_kwargs)
        blob = serialize_material(material)
        self._write_blob(material.fingerprint, blob)
        return blob

    def build(
        self, groups: Optional[Sequence[SchnorrGroup]] = None, **build_kwargs: Any
    ) -> List[CryptoMaterial]:
        """Offline phase over every parameter set; persists each blob."""
        built = []
        for group in groups if groups is not None else default_groups():
            material = build_material(group, **build_kwargs)
            self.save(material)
            built.append(material)
        return built

    def _spent_path(self, fingerprint: str) -> pathlib.Path:
        return self.root / f"{fingerprint}{self.SUFFIX}.spent"

    def spent(self, fingerprint: str) -> Dict[str, int]:
        """Cumulative online consumption recorded against one material.

        Advisory bookkeeping for operators (when to rebuild bigger
        pools), not a security mechanism: repeated sweeps re-spend from
        slot 0 so replays stay reproducible, and the ledger simply sums
        what every online sweep reported consuming.
        """
        try:
            record = json.loads(self._spent_path(fingerprint).read_text())
            return {
                "nonces_spent": int(record.get("nonces_spent", 0)),
                "feldman_spent": int(record.get("feldman_spent", 0)),
            }
        except (OSError, ValueError):
            return {"nonces_spent": 0, "feldman_spent": 0}

    def record_spend(
        self, fingerprint: str, nonces: int = 0, feldman: int = 0
    ) -> Dict[str, int]:
        """Add one sweep's pool consumption to the ledger sidecar."""
        totals = self.spent(fingerprint)
        totals["nonces_spent"] += max(0, int(nonces))
        totals["feldman_spent"] += max(0, int(feldman))
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._spent_path(fingerprint)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(totals, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return totals

    def inspect(self) -> List[Dict[str, Any]]:
        """One record per store file: pool sizes, remaining capacity,
        footprint, integrity.

        ``nonces_remaining``/``feldman_remaining`` subtract the spend
        ledger from the built pool sizes — the number an operator needs
        to decide when ``material build`` is due again.  A file whose
        embedded parameters do not hash to its own name is flagged
        ``ok=False`` exactly like a payload-hash failure: it would
        silently serve the wrong pools.
        """
        records: List[Dict[str, Any]] = []
        if not self.root.is_dir():
            return records
        for path in sorted(self.root.glob(f"*{self.SUFFIX}")):
            record: Dict[str, Any] = {
                "file": path.name,
                "file_bytes": path.stat().st_size,
            }
            try:
                material = deserialize_material(path.read_bytes())
                named = path.name[: -len(self.SUFFIX)]
                if material.fingerprint != named:
                    raise MaterialIntegrityError(
                        f"file is named {named} but holds material "
                        f"fingerprinted {material.fingerprint}"
                    )
            except MaterialError as exc:
                record.update({"ok": False, "error": str(exc)})
            else:
                spent = self.spent(material.fingerprint)
                record.update({"ok": True, **material.summary()})
                record["nonces_remaining"] = max(
                    0, len(material.nonces) - spent["nonces_spent"]
                )
                record["feldman_remaining"] = max(
                    0, len(material.feldman) - spent["feldman_spent"]
                )
            records.append(record)
        return records

    def clear(self) -> int:
        """Delete every store file (and spend ledger); returns how many
        material files were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob(f"*{self.SUFFIX}.spent"):
            path.unlink()
        for path in self.root.glob(f"*{self.SUFFIX}"):
            path.unlink()
            removed += 1
        return removed


# ---------------------------------------------------------------------------
# Publish (parent) / attach (worker)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MaterialRef:
    """Picklable pointer to one group's serialized material."""

    fingerprint: str
    nbytes: int
    shm_name: Optional[str] = None
    path: Optional[str] = None


@dataclass(frozen=True)
class MaterialHandle:
    """What a worker initializer needs to attach preprocessed material."""

    source: str
    refs: Tuple[MaterialRef, ...] = ()


def _unregister_shm(name: str) -> None:
    """Detach an attached segment from a *spawned* worker's tracker.

    On 3.11 ``SharedMemory(name=...)`` (attach, not create) still
    registers with the resource tracker (bpo-39959; fixed by
    ``track=False`` in 3.13).  Under ``spawn`` each worker runs its own
    tracker, which would unlink the parent's live segment when the
    worker exits — so the attach must be unregistered there.  Under
    ``fork`` parent and workers share one tracker whose registry is a
    set, so the attach was a no-op and unregistering here would instead
    erase the parent's own entry.
    """
    try:
        import multiprocessing

        if multiprocessing.get_start_method(allow_none=True) != "spawn":
            return
        from multiprocessing import resource_tracker

        resource_tracker.unregister(name, "shared_memory")
    except Exception:
        pass


def publish_material(
    source: str,
    groups: Optional[Sequence[SchnorrGroup]] = None,
    store: Optional[MaterialStore] = None,
) -> Tuple[Optional[MaterialHandle], Callable[[], None]]:
    """Parent half of the online phase: stage material for the workers.

    Returns ``(handle, release)``; the handle ships to every worker via
    the pool initializer and ``release()`` must run once the pool is done
    (it unlinks any shared-memory segments).  ``compute`` (or a failed
    publish) yields ``(None, noop)`` — workers then warm up locally.
    """
    source = resolve_material_source(source)
    if groups is None:
        groups = (TEST_GROUP,)
    if source == MATERIAL_COMPUTE:
        return None, lambda: None
    store = store or MaterialStore()
    refs: List[MaterialRef] = []
    segments: List[Any] = []

    def release() -> None:
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass

    try:
        for group in groups:
            # Lazy offline phase: load-and-validate, or build-and-save.
            blob = store.ensure_blob(group)
            fingerprint = group_fingerprint(group)
            ref = MaterialRef(
                fingerprint=fingerprint,
                nbytes=len(blob),
                path=str(store.path_for(group)),
            )
            if source == MATERIAL_SHARED:
                from multiprocessing import shared_memory

                # Keep the name (with its leading slash) within macOS's
                # 31-char POSIX shm limit: "/rm-" + 12-hex fingerprint
                # prefix + 8-hex random = 25 chars.
                segment = shared_memory.SharedMemory(
                    name=f"rm-{fingerprint[:12]}-{os.urandom(4).hex()}",
                    create=True,
                    size=len(blob),
                )
                segment.buf[: len(blob)] = blob
                segments.append(segment)
                ref = MaterialRef(
                    fingerprint=fingerprint,
                    nbytes=len(blob),
                    shm_name=segment.name,
                    path=ref.path,
                )
            refs.append(ref)
    except Exception as exc:
        release()
        warnings.warn(
            f"could not publish {source} preprocessing material ({exc}); "
            "workers will fall back to computing their own caches",
            RuntimeWarning,
            stacklevel=2,
        )
        return None, lambda: None
    return MaterialHandle(source=source, refs=tuple(refs)), release


def _read_ref(ref: MaterialRef) -> bytes:
    """Fetch one ref's blob: shared memory first, then an mmap of the file."""
    if ref.shm_name is not None:
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(name=ref.shm_name)
        except FileNotFoundError:
            pass  # segment gone (e.g. parent released early): mmap fallback
        else:
            try:
                return bytes(segment.buf[: ref.nbytes])
            finally:
                segment.close()
                _unregister_shm(ref.shm_name)
    if ref.path is None:
        raise MaterialError(f"no byte source for material ref {ref.fingerprint}")
    with open(ref.path, "rb") as handle:
        with mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ) as view:
            return bytes(view)


def _attach_handle(handle: MaterialHandle) -> None:
    """Worker half: install every published blob into its group singleton.

    Any per-ref failure warns and leaves that group to the compute
    fallback — the initializer must never raise (a raising initializer
    kills pool workers in a loop instead of running the sweep).
    """
    targets = {group_fingerprint(group): group for group in default_groups()}
    for ref in handle.refs:
        group = targets.get(ref.fingerprint)
        if group is None:
            warnings.warn(
                f"published material {ref.fingerprint} matches no known "
                "group; ignoring it",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        try:
            material = deserialize_material(_read_ref(ref))
            material.attach(group)
            register_attached(material)
        except Exception as exc:
            warnings.warn(
                f"could not attach preprocessed material {ref.fingerprint} "
                f"({exc}); falling back to computing caches in this worker",
                RuntimeWarning,
                stacklevel=2,
            )


def warm_with_material(
    material: Union[MaterialHandle, str, None] = None,
    store: Optional[MaterialStore] = None,
    groups: Optional[Sequence[SchnorrGroup]] = None,
) -> None:
    """Warm this process's crypto caches from the given material source.

    Accepts a :class:`MaterialHandle` (process workers), a source name
    (inline/thread executors and direct callers), or ``None``/"compute".
    Always finishes with :func:`~repro.crypto.groups.warm_groups`, which
    is a cheap no-op for every cache an attach already installed — so
    whatever happened above, the process ends up warm.
    """
    if isinstance(material, MaterialHandle):
        _attach_handle(material)
    else:
        source = resolve_material_source(material)
        if source != MATERIAL_COMPUTE:
            # Local attach: read the store directly; ``shared`` has no
            # parent segment to attach to here, so it uses the mmap path.
            handle, release = publish_material(
                MATERIAL_DISK, groups=groups, store=store
            )
            try:
                if handle is not None:
                    _attach_handle(handle)
            finally:
                release()
    warm_groups()


# ---------------------------------------------------------------------------
# Online phase: spend the preprocessed pools
# ---------------------------------------------------------------------------

#: Nonce pairs reserved per sweep task in online mode.  A hybrid-mode SBC
#: trial signs nothing (Fcert is ideal there) while a composed-mode trial
#: signs once per Dolev–Strong relay; slices that run out fall back to
#: sampling with a counted warning, so the budget bounds pool footprint,
#: not correctness.
DEFAULT_NONCES_PER_TASK = 8

#: Feldman entries reserved per sweep task in online mode.
DEFAULT_FELDMAN_PER_TASK = 2

#: fingerprint -> material this process attached (worker initializer or
#: inline warm-up).  Cursors only read from it — per-trial positions live
#: in the cursor, so one worker's trials can share the object safely.
_ATTACHED: Dict[str, CryptoMaterial] = {}


def register_attached(material: CryptoMaterial) -> CryptoMaterial:
    """Remember an attached material so online cursors can spend it."""
    _ATTACHED[material.fingerprint] = material
    return material


def attached_material(fingerprint: str) -> Optional[CryptoMaterial]:
    """The material this process attached for ``fingerprint``, if any."""
    return _ATTACHED.get(fingerprint)


def online_pool_requirement(
    tasks: int,
    nonces_per_task: int = DEFAULT_NONCES_PER_TASK,
    feldman_per_task: int = DEFAULT_FELDMAN_PER_TASK,
) -> Dict[str, int]:
    """Pool sizes an online sweep of ``tasks`` tasks needs to never
    fall back to sampling (``repro material build --for-sweep``)."""
    if tasks < 0:
        raise ValueError(f"tasks must be >= 0, got {tasks}")
    return {
        "nonces": tasks * nonces_per_task,
        "feldman": tasks * feldman_per_task,
    }


class MaterialCursor(RandomnessSource):
    """Spend a reserved slice of one material's randomness pools.

    Implements the :class:`~repro.crypto.randomness.RandomnessSource`
    seam: Schnorr nonces come from ``material.nonces[start:stop]`` and
    Feldman polynomials from ``material.feldman[start:stop]``, in order.
    Draws past the reserved slice (or past the built pool, or for a
    group/threshold the entry was not built for) fall back to sampling
    from the caller's ``rng`` — counted, warned once per cursor, and
    recorded in :meth:`spend_summary` so the trace digest pins exactly
    what happened.

    One cursor serves one trial; cursors never mutate the shared
    material object, so every trial in a worker can hold its own cursor
    over the same attached blob.
    """

    name = "pool"

    def __init__(
        self,
        fingerprint: str,
        material: Optional[CryptoMaterial],
        nonce_range: Tuple[int, int] = (0, 0),
        feldman_range: Tuple[int, int] = (0, 0),
    ) -> None:
        self.fingerprint = fingerprint
        self.material = material
        self.nonce_range = (int(nonce_range[0]), int(nonce_range[1]))
        self.feldman_range = (int(feldman_range[0]), int(feldman_range[1]))
        self._nonce_next = self.nonce_range[0]
        self._feldman_next = self.feldman_range[0]
        self.nonces_spent = 0
        self.feldman_spent = 0
        self.nonces_sampled = 0
        self.feldman_sampled = 0
        self._sample = SampleSource()
        self._warned = False

    # -- draw paths ---------------------------------------------------------

    def _pool_limit(self, stop: int, pool_len: int) -> int:
        return min(stop, pool_len)

    def _warn_fallback(self, what: str) -> None:
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"online pool {self.fingerprint} ran out of {what} for this "
                "trial's reserved slice; falling back to sampling (counted "
                "in the trace; rebuild with 'repro material build "
                "--for-sweep' to size the pools)",
                RuntimeWarning,
                stacklevel=3,
            )

    def _next_nonce(self, group) -> Optional[Any]:
        material = self.material
        if material is None or (group.p, group.q, group.g) != (
            material.p, material.q, material.g
        ):
            return None
        limit = self._pool_limit(self.nonce_range[1], len(material.nonces))
        if self._nonce_next >= limit:
            return None
        pair = material.nonces[self._nonce_next]
        self._nonce_next += 1
        self.nonces_spent += 1
        return pair

    def schnorr_nonce(self, group, rng) -> Tuple[int, int]:
        pair = self._next_nonce(group)
        if pair is not None:
            return pair.k, pair.r
        self.nonces_sampled += 1
        self._warn_fallback("nonces")
        return self._sample.schnorr_nonce(group, rng)

    def nonce_scalar(self, group, rng) -> int:
        pair = self._next_nonce(group)
        if pair is not None:
            return pair.k
        self.nonces_sampled += 1
        self._warn_fallback("nonces")
        return self._sample.nonce_scalar(group, rng)

    def feldman_polynomial(self, group, secret, threshold, rng):
        material = self.material
        if material is not None and (group.p, group.q, group.g) == (
            material.p, material.q, material.g
        ):
            limit = self._pool_limit(self.feldman_range[1], len(material.feldman))
            if self._feldman_next < limit:
                entry = material.feldman[self._feldman_next]
                if entry.threshold == threshold:
                    self._feldman_next += 1
                    self.feldman_spent += 1
                    secret = secret % group.q
                    coefficients = [secret] + list(entry.coefficients[1:])
                    commitments = (group.power_of_g(secret),) + tuple(
                        entry.commitments[1:]
                    )
                    return coefficients, commitments
        self.feldman_sampled += 1
        self._warn_fallback("feldman entries")
        return self._sample.feldman_polynomial(group, secret, threshold, rng)

    # -- reporting ----------------------------------------------------------

    def spend_summary(self) -> Dict[str, Any]:
        """Canonical-detail-friendly record of what this cursor consumed.

        Recorded into the execution trace (so the digest pins the pool
        identity and the consumed ranges) and carried on the trial
        result (so sweeps can aggregate and ledger the consumption).
        """
        material = self.material
        return {
            "fingerprint": self.fingerprint,
            "source": self.name,
            "material_seed": material.built_with_seed if material else None,
            "pool_nonces": len(material.nonces) if material else 0,
            "pool_feldman": len(material.feldman) if material else 0,
            "nonce_range": self.nonce_range,
            "feldman_range": self.feldman_range,
            "nonces_spent": self.nonces_spent,
            "feldman_spent": self.feldman_spent,
            "nonces_sampled": self.nonces_sampled,
            "feldman_sampled": self.feldman_sampled,
        }


@dataclass(frozen=True)
class OnlinePlan:
    """How one sweep's tasks partition the preprocessed pools.

    Picklable and shipped to every worker via the runner's ``online=``
    keyword.  Each task maps to a *slot*; slot ``s`` owns the pool slice
    ``[s * per_task, (s + 1) * per_task)`` for both pools, so two tasks
    with different slots can never double-spend an entry — whichever
    worker runs them, in whatever order.  Slots default to the task's
    position in the sweep's task list; callers may assign explicit slots
    (the scenario matrix gives backend-variant cells of one execution
    the *same* slot, because those cells must replay identically for the
    cross-backend digest check).

    Attributes:
        fingerprint: Group fingerprint naming the material to spend.
        assignments: ``(task, slot)`` pairs covering every sweep task.
        nonces_per_task: Nonce pairs reserved per slot.
        feldman_per_task: Feldman entries reserved per slot.
        material_seed: Offline seed the pools were built with; cursors
            refuse a registry hit whose seed or pool sizes disagree (a
            stale attach from an earlier store generation) and fall back
            to the store file.
        pool_nonces: Built nonce-pool size, for the same staleness check.
        pool_feldman: Built Feldman-pool size.
    """

    fingerprint: str
    assignments: Tuple[Tuple[Any, int], ...]
    nonces_per_task: int = DEFAULT_NONCES_PER_TASK
    feldman_per_task: int = DEFAULT_FELDMAN_PER_TASK
    material_seed: int = 0
    pool_nonces: int = 0
    pool_feldman: int = 0

    @classmethod
    def for_tasks(
        cls,
        tasks: Sequence[Any],
        group: Optional[SchnorrGroup] = None,
        slots: Optional[Sequence[int]] = None,
        nonces_per_task: int = DEFAULT_NONCES_PER_TASK,
        feldman_per_task: int = DEFAULT_FELDMAN_PER_TASK,
        store: Optional[MaterialStore] = None,
    ) -> "OnlinePlan":
        """Plan a sweep over ``tasks``, ensuring the store holds pools.

        The store blob is built on a miss (the lazy offline phase, same
        as the publish path), and its recorded seed and pool sizes are
        embedded in the plan so every cursor can validate the material
        it resolves against what the parent planned with.
        """
        group = group if group is not None else TEST_GROUP
        store = store or MaterialStore()
        material = store.ensure(group)
        tasks = list(tasks)
        if slots is None:
            slots = range(len(tasks))
        else:
            slots = list(slots)
            if len(slots) != len(tasks):
                raise ValueError(
                    f"{len(slots)} slots assigned for {len(tasks)} tasks"
                )
        return cls(
            fingerprint=material.fingerprint,
            assignments=tuple(zip(tasks, slots)),
            nonces_per_task=nonces_per_task,
            feldman_per_task=feldman_per_task,
            material_seed=material.built_with_seed,
            pool_nonces=len(material.nonces),
            pool_feldman=len(material.feldman),
        )

    def slot_of(self, task: Any) -> int:
        """The pool slot reserved for ``task``.

        Raises:
            KeyError: the task was not part of this plan.
        """
        # Built lazily around the frozen dataclass; a linear scan over
        # assignments would make a sweep's slot lookups quadratic in its
        # task count.
        index = self.__dict__.get("_slot_index")
        if index is None:
            index = dict(self.assignments)
            object.__setattr__(self, "_slot_index", index)
        slot = index.get(task)
        if slot is None:
            raise KeyError(f"task {task!r} is not part of this online plan")
        return slot

    def ranges_for(self, slot: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """``(nonce_range, feldman_range)`` owned by ``slot``."""
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        return (
            (slot * self.nonces_per_task, (slot + 1) * self.nonces_per_task),
            (slot * self.feldman_per_task, (slot + 1) * self.feldman_per_task),
        )

    def _resolve_material(self) -> Optional[CryptoMaterial]:
        """This process's copy of the planned pools (registry, then store).

        A registry hit whose seed or pool sizes disagree with the plan is
        a stale attach from an earlier store generation; the store file
        is the tiebreaker.  ``None`` (everything failed) degrades every
        draw to counted sampling — the same never-crash contract the
        attach path holds.
        """
        def matches(material: CryptoMaterial) -> bool:
            return (
                material.built_with_seed == self.material_seed
                and len(material.nonces) == self.pool_nonces
                and len(material.feldman) == self.pool_feldman
            )

        material = attached_material(self.fingerprint)
        if material is not None and matches(material):
            return material
        try:
            material = MaterialStore().load_fingerprint(self.fingerprint)
        except (OSError, MaterialError):
            return None
        if not matches(material):
            return None
        return register_attached(material)

    def open(self, task: Any) -> MaterialCursor:
        """A cursor over ``task``'s reserved pool slices.

        Never raises for a missing/stale/mismatched material — the
        cursor just samples everything (counted), keeping the worker
        alive and the degradation visible in the trace.
        """
        try:
            slot = self.slot_of(task)
        except KeyError:
            warnings.warn(
                f"task {task!r} missing from the online plan; its trial "
                "will sample instead of spending pools",
                RuntimeWarning,
                stacklevel=2,
            )
            return MaterialCursor(self.fingerprint, None)
        nonce_range, feldman_range = self.ranges_for(slot)
        material = self._resolve_material()
        if material is None:
            warnings.warn(
                f"online material {self.fingerprint} unavailable or stale "
                "in this process; trial falls back to sampling",
                RuntimeWarning,
                stacklevel=2,
            )
        return MaterialCursor(
            self.fingerprint, material,
            nonce_range=nonce_range, feldman_range=feldman_range,
        )

    def required_pools(self) -> Dict[str, int]:
        """Pool sizes that would satisfy every slot without fallback."""
        top = 1 + max((slot for _task, slot in self.assignments), default=-1)
        return online_pool_requirement(
            top, self.nonces_per_task, self.feldman_per_task
        )
