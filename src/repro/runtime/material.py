"""Preprocessing store: ship offline crypto material to the worker fleet.

The offline phase (:mod:`repro.crypto.preprocessing`) turns warm-up work
into bytes; this module owns where those bytes live and how workers get
them:

* :class:`MaterialStore` — a versioned on-disk cache
  (``~/.cache/repro-material/<group-fingerprint>.v1`` by default,
  ``REPRO_MATERIAL_DIR`` overrides), written atomically and validated by
  the blob's integrity hash on every read;
* :data:`MATERIAL_SOURCES` — the three ways a worker can obtain its
  material: ``compute`` (rebuild locally, the pre-store behavior),
  ``disk`` (read the store file), ``shared`` (attach a
  ``multiprocessing.shared_memory`` segment published by the parent,
  falling back to an mmap of the store file);
* :func:`publish_material` / :func:`warm_with_material` — the parent
  publishes before forking, each worker attaches in its initializer.

Every failure path degrades to ``compute`` with a :class:`RuntimeWarning`
— a corrupt cache file or a torn shared-memory segment slows a worker
down, it never crashes one — and attached tables are shape- and
spot-checked, so the degradation can never silently change results
(trace digests are identical across all three sources by construction).

The **online mode** lives here too: :class:`MaterialCursor` implements
the :class:`~repro.crypto.randomness.RandomnessSource` seam over a
reserved slice of one material's nonce/Feldman pools, and
:class:`OnlinePlan` partitions those pools across a sweep's tasks —
each task gets the slice at ``slot * per_task``, so process fan-out can
never double-spend an entry and an inline replay of the same plan spends
exactly the same entries (seed-for-seed digest equality, ``--verify``).
Exhausted or unavailable slices fall back to sampling with a counted
warning; the consumed ranges land in the execution trace, which pins
pool-consuming digests separately from sample-per-call runs.
"""

from __future__ import annotations

import contextlib
import json
import math
import mmap
import os
import pathlib
import tempfile
import threading
import warnings

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts merge unlocked
    fcntl = None  # type: ignore[assignment]
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.crypto.groups import GROUP_2048, TEST_GROUP, SchnorrGroup, warm_groups
from repro.crypto.preprocessing import (
    CryptoMaterial,
    MaterialError,
    MaterialIntegrityError,
    build_material,
    deserialize_material,
    extend_material,
    group_fingerprint,
    serialize_material,
)
from repro.crypto.randomness import RandomnessSource, SampleSource

__all__ = [
    "DEFAULT_FELDMAN_PER_TASK",
    "DEFAULT_NONCES_PER_TASK",
    "MATERIAL_COMPUTE",
    "MATERIAL_DISK",
    "MATERIAL_SHARED",
    "MATERIAL_SOURCES",
    "REPLENISH_ALPHA",
    "REPLENISH_HEADROOM",
    "REPLENISH_HYSTERESIS",
    "REPLENISH_REBUILD_DEAD_FRACTION",
    "HostSlotAllocator",
    "MaterialCursor",
    "MaterialHandle",
    "MaterialRef",
    "MaterialStore",
    "OnlinePlan",
    "Replenisher",
    "SpendLedger",
    "attached_material",
    "default_groups",
    "default_material_dir",
    "ewma_burn_rate",
    "extend_or_rebuild",
    "online_pool_requirement",
    "publish_material",
    "register_attached",
    "replenish_amount",
    "replenish_decision",
    "resolve_material_source",
    "warm_with_material",
    "watermark_for",
]

#: Rebuild caches locally in every worker (the pre-store behavior).
MATERIAL_COMPUTE = "compute"
#: Read the serialized material from the on-disk store.
MATERIAL_DISK = "disk"
#: Attach a shared-memory segment published by the parent (mmap fallback).
MATERIAL_SHARED = "shared"

MATERIAL_SOURCES = (MATERIAL_COMPUTE, MATERIAL_DISK, MATERIAL_SHARED)

#: Environment variable overriding the store directory.
MATERIAL_DIR_ENV = "REPRO_MATERIAL_DIR"


def resolve_material_source(source: Optional[str]) -> str:
    """Validate a material source name (``None`` means ``compute``)."""
    if source is None:
        return MATERIAL_COMPUTE
    if source not in MATERIAL_SOURCES:
        known = ", ".join(MATERIAL_SOURCES)
        raise ValueError(f"material source must be one of {known}, got {source!r}")
    return source


def default_material_dir() -> pathlib.Path:
    """The store root: ``$REPRO_MATERIAL_DIR`` or ``~/.cache/repro-material``."""
    override = os.environ.get(MATERIAL_DIR_ENV)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro-material"


def default_groups() -> Tuple[SchnorrGroup, ...]:
    """The parameter sets the store covers by default.

    These are the module singletons protocol stacks resolve at build
    time, so attaching material to them warms every session in the
    worker.
    """
    return (TEST_GROUP, GROUP_2048)


@dataclass(frozen=True)
class SpendLedger:
    """Parsed state of one material's ``.spent`` sidecar.

    Two kinds of numbers live here.  The *sums* (``nonces_spent`` /
    ``feldman_spent``) add up everything online sweeps ever reported —
    including ``--verify`` replays, which deliberately re-spend the same
    entries — so they measure traffic, not capacity.  The *high-water
    marks* (``nonce_high`` / ``feldman_high``) track the largest pool
    index any plan ever reserved through; merging by ``max`` makes them
    idempotent under replay, which is what lets consume-forward planning
    and ``inspect``'s remaining-capacity numbers trust them.

    ``ok=False`` means the sidecar existed but could not be trusted
    (truncated, garbage, or recorded against a different build seed than
    the material on disk).  Consumers must then assume the *entire* pool
    may have been spent — the conservative re-spend-from-observed-max
    contract: a corrupt ledger costs sampling fallbacks, never a
    double-spend and never a crashed worker.
    """

    fingerprint: str
    nonces_spent: int = 0
    feldman_spent: int = 0
    nonce_high: int = 0
    feldman_high: int = 0
    #: Build seed the ledger was recorded against (``None`` until the
    #: first online sweep records one).  A rebuild changes the seed and
    #: resets the sidecar; a mismatch that survives anyway marks the
    #: ledger stale.
    material_seed: Optional[int] = None
    ok: bool = True
    note: str = ""

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "nonces_spent": self.nonces_spent,
            "feldman_spent": self.feldman_spent,
            "nonce_high": self.nonce_high,
            "feldman_high": self.feldman_high,
        }
        if self.material_seed is not None:
            record["material_seed"] = self.material_seed
        return record


class MaterialStore:
    """Versioned on-disk cache of serialized preprocessing material."""

    SUFFIX = ".v1"

    def __init__(self, root: Union[str, pathlib.Path, None] = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_material_dir()

    def path_for(self, group: SchnorrGroup) -> pathlib.Path:
        return self.root / f"{group_fingerprint(group)}{self.SUFFIX}"

    def save(self, material: CryptoMaterial) -> pathlib.Path:
        """Atomically persist one material blob (write-temp-then-rename).

        Saving also reconciles the spend ledger with the new blob: a
        *rebuild* (different ``built_with_seed`` than the ledger was
        recorded against) produces entirely fresh pools, so the old
        sidecar — which indexes into pools that no longer exist — is
        deleted; an *extension* (same seed, appended pools) keeps the
        ledger, because every index it names still points at the same
        entry.
        """
        path = self._write_blob(material.fingerprint, serialize_material(material))
        ledger = self.ledger(material.fingerprint)
        if (
            ledger.ok
            and ledger.material_seed is not None
            and ledger.material_seed != material.built_with_seed
        ):
            # A corrupt sidecar is *not* reset here: it may describe real
            # spends against these very pools, so it must keep forcing
            # the conservative path until a clean record replaces it.
            try:
                self._spent_path(material.fingerprint).unlink()
            except OSError as exc:
                # The stale sidecar will keep forcing the conservative
                # exhausted-pool path; the operator should know why.
                warnings.warn(
                    f"could not remove stale spend ledger for "
                    f"{material.fingerprint} ({exc}); consume-forward runs "
                    "will treat these pools as fully spent",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return path

    def _write_blob(self, fingerprint: str, blob: bytes) -> pathlib.Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"{fingerprint}{self.SUFFIX}"
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=fingerprint, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            # Best-effort temp-file cleanup on the re-raise path: the
            # original error propagates on the next line.
            except OSError:  # repro: allow[RPR005]
                pass
            raise
        return path

    def load_blob(self, group: SchnorrGroup) -> bytes:
        """Raw serialized blob for ``group`` (validated by the caller).

        Raises:
            FileNotFoundError: no material cached for this fingerprint.
        """
        return self.path_for(group).read_bytes()

    def load(self, group: SchnorrGroup) -> CryptoMaterial:
        """Deserialize and validate the cached material for ``group``.

        Raises:
            FileNotFoundError: no material cached for this fingerprint.
            MaterialError: the file exists but is corrupt or mismatched.
        """
        material = deserialize_material(self.load_blob(group))
        if not material.matches(group):
            raise MaterialIntegrityError(
                f"store file {self.path_for(group).name} holds material for "
                "different group parameters"
            )
        return material

    def load_fingerprint(self, fingerprint: str) -> CryptoMaterial:
        """Load the store file named by a bare fingerprint.

        The online phase resolves pools by fingerprint (that is all an
        :class:`OnlinePlan` carries across the process boundary), so this
        is the lookup path when the in-process attach registry misses.

        Raises:
            FileNotFoundError: no material cached for this fingerprint.
            MaterialError: corrupt file, or a file whose embedded
                parameters do not hash to its name.
        """
        path = self.root / f"{fingerprint}{self.SUFFIX}"
        material = deserialize_material(path.read_bytes())
        if material.fingerprint != fingerprint:
            raise MaterialIntegrityError(
                f"store file {path.name} holds material fingerprinted "
                f"{material.fingerprint} (renamed or cross-copied file)"
            )
        return material

    def ensure(self, group: SchnorrGroup, **build_kwargs: Any) -> CryptoMaterial:
        """Load the cached material, building (and persisting) on a miss.

        A corrupt cache file is the offline phase's job to repair: it
        warns, rebuilds from scratch and overwrites the bad file — the
        fallback-to-compute contract at the store level.
        """
        return deserialize_material(self.ensure_blob(group, **build_kwargs))

    def ensure_blob(self, group: SchnorrGroup, **build_kwargs: Any) -> bytes:
        """Like :meth:`ensure`, but returns the validated raw blob.

        The publish path ships bytes (into shared memory), so this reads
        and validates the file exactly once instead of a deserialize in
        ``ensure`` followed by a second read of the same file.
        """
        try:
            blob = self.load_blob(group)
            if not deserialize_material(blob).matches(group):
                raise MaterialIntegrityError(
                    f"store file {self.path_for(group).name} holds material "
                    "for different group parameters"
                )
            return blob
        # No store file yet is the normal first-run path, not a
        # degradation: build_material below is the point of ensure().
        except FileNotFoundError:  # repro: allow[RPR005]
            pass
        except MaterialError as exc:
            warnings.warn(
                f"preprocessing store file {self.path_for(group).name} is "
                f"unusable ({exc}); rebuilding from scratch",
                RuntimeWarning,
                stacklevel=2,
            )
        material = build_material(group, **build_kwargs)
        blob = serialize_material(material)
        self._write_blob(material.fingerprint, blob)
        return blob

    def build(
        self, groups: Optional[Sequence[SchnorrGroup]] = None, **build_kwargs: Any
    ) -> List[CryptoMaterial]:
        """Offline phase over every parameter set; persists each blob."""
        built = []
        for group in groups if groups is not None else default_groups():
            material = build_material(group, **build_kwargs)
            self.save(material)
            built.append(material)
        return built

    def _spent_path(self, fingerprint: str) -> pathlib.Path:
        return self.root / f"{fingerprint}{self.SUFFIX}.spent"

    @contextlib.contextmanager
    def _spent_lock(self, fingerprint: str):
        """Serialize read-merge-write cycles on one ledger sidecar.

        An advisory ``flock`` on a ``.spent.lock`` sibling makes the
        max-merge in :meth:`record_spend` atomic across every writer on
        this host — threads and sweep worker processes alike.  Readers
        stay lock-free: the ``os.replace`` publication already guarantees
        they see a complete old or new sidecar, never a torn one.  On
        hosts without ``fcntl`` merges fall back to last-writer-wins.
        """
        if fcntl is None:
            yield
            return
        lock_path = self.root / f"{fingerprint}{self.SUFFIX}.spent.lock"
        with open(lock_path, "a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def ledger(self, fingerprint: str) -> SpendLedger:
        """Parse one material's ``.spent`` sidecar into a :class:`SpendLedger`.

        A missing sidecar is a *clean* ledger (nothing recorded yet); a
        sidecar that exists but cannot be parsed — truncated write from a
        crashed process, garbage bytes, non-integer fields — comes back
        ``ok=False`` so consumers take the conservative
        everything-may-be-spent path instead of trusting zeros.
        """
        path = self._spent_path(fingerprint)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            return SpendLedger(fingerprint=fingerprint)
        except OSError as exc:
            return SpendLedger(
                fingerprint=fingerprint, ok=False, note=f"unreadable sidecar: {exc}"
            )
        try:
            record = json.loads(raw)
            if not isinstance(record, dict):
                raise ValueError(f"ledger is {type(record).__name__}, not an object")
            nonces_spent = int(record.get("nonces_spent", 0))
            feldman_spent = int(record.get("feldman_spent", 0))
            # Pre-consume-forward sidecars carry only the sums; treating
            # the sum as the observed high mark is exact for them (every
            # legacy sweep spent a contiguous prefix from slot 0).
            nonce_high = int(record.get("nonce_high", nonces_spent))
            feldman_high = int(record.get("feldman_high", feldman_spent))
            seed = record.get("material_seed")
            material_seed = int(seed) if seed is not None else None
            if min(nonces_spent, feldman_spent, nonce_high, feldman_high) < 0:
                raise ValueError("negative ledger counters")
        except (TypeError, ValueError) as exc:
            return SpendLedger(
                fingerprint=fingerprint, ok=False, note=f"corrupt sidecar: {exc}"
            )
        return SpendLedger(
            fingerprint=fingerprint,
            nonces_spent=nonces_spent,
            feldman_spent=feldman_spent,
            nonce_high=nonce_high,
            feldman_high=feldman_high,
            material_seed=material_seed,
        )

    def spent(self, fingerprint: str) -> Dict[str, int]:
        """Cumulative online consumption recorded against one material.

        The flat-dict view of :meth:`ledger` (sums plus high-water
        marks).  A corrupt sidecar reads as zeros here exactly like a
        missing one — callers that must distinguish (consume-forward
        planning, ``inspect``) use :meth:`ledger` and its ``ok`` flag.
        """
        ledger = self.ledger(fingerprint)
        if not ledger.ok:
            ledger = SpendLedger(fingerprint=fingerprint)
        return {
            "nonces_spent": ledger.nonces_spent,
            "feldman_spent": ledger.feldman_spent,
            "nonce_high": ledger.nonce_high,
            "feldman_high": ledger.feldman_high,
        }

    def record_spend(
        self,
        fingerprint: str,
        nonces: int = 0,
        feldman: int = 0,
        nonce_high: Optional[int] = None,
        feldman_high: Optional[int] = None,
        material_seed: Optional[int] = None,
    ) -> Dict[str, int]:
        """Merge one sweep's pool consumption into the ledger sidecar.

        Sums accumulate (they count traffic, replays included); high
        marks merge by ``max`` (idempotent, so a ``--verify`` replay of
        the same plan never advances them twice).  The whole
        read-merge-write cycle runs under an advisory file lock
        (:meth:`_spent_lock`), so concurrent writers on one host never
        lose each other's increments or marks.  The write itself is
        crash-safe: temp file, flush, ``fsync``, atomic rename — a
        process dying mid-record leaves either the old sidecar or the
        new one, never a torn file.  A sidecar that was corrupt (or
        recorded against a different build seed) is replaced wholesale
        by this record rather than merged — its numbers index into
        pools that cannot be trusted, and the caller's high marks
        already encode the conservative reservation that corruption
        forced on the plan.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        with self._spent_lock(fingerprint):
            ledger = self.ledger(fingerprint)
            if not ledger.ok or (
                ledger.material_seed is not None
                and material_seed is not None
                and ledger.material_seed != material_seed
            ):
                ledger = SpendLedger(fingerprint=fingerprint)
            merged = SpendLedger(
                fingerprint=fingerprint,
                nonces_spent=ledger.nonces_spent + max(0, int(nonces)),
                feldman_spent=ledger.feldman_spent + max(0, int(feldman)),
                nonce_high=max(ledger.nonce_high, int(nonce_high or 0)),
                feldman_high=max(ledger.feldman_high, int(feldman_high or 0)),
                material_seed=(
                    material_seed if material_seed is not None else ledger.material_seed
                ),
            )
            path = self._spent_path(fingerprint)
            fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(merged.as_dict(), handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                # Best-effort temp-file cleanup on the re-raise path: the
                # original error propagates on the next line.
                except OSError:  # repro: allow[RPR005]
                    pass
                raise
        return {
            "nonces_spent": merged.nonces_spent,
            "feldman_spent": merged.feldman_spent,
            "nonce_high": merged.nonce_high,
            "feldman_high": merged.feldman_high,
        }

    def inspect(self) -> List[Dict[str, Any]]:
        """One record per store file: pool sizes, remaining capacity,
        footprint, integrity.

        ``nonces_remaining``/``feldman_remaining`` subtract the spend
        ledger from the built pool sizes — the number an operator needs
        to decide when ``material build`` is due again.  A file whose
        embedded parameters do not hash to its own name is flagged
        ``ok=False`` exactly like a payload-hash failure: it would
        silently serve the wrong pools.
        """
        records: List[Dict[str, Any]] = []
        if not self.root.is_dir():
            return records
        for path in sorted(self.root.glob(f"*{self.SUFFIX}")):
            record: Dict[str, Any] = {
                "file": path.name,
                "file_bytes": path.stat().st_size,
            }
            try:
                material = deserialize_material(path.read_bytes())
                named = path.name[: -len(self.SUFFIX)]
                if material.fingerprint != named:
                    raise MaterialIntegrityError(
                        f"file is named {named} but holds material "
                        f"fingerprinted {material.fingerprint}"
                    )
            except MaterialError as exc:
                record.update({"ok": False, "error": str(exc)})
            else:
                ledger = self.ledger(material.fingerprint)
                record.update({"ok": True, **material.summary()})
                stale = ledger.ok and (
                    ledger.material_seed is not None
                    and ledger.material_seed != material.built_with_seed
                )
                if not ledger.ok or stale:
                    # Conservative: an untrustworthy ledger means any
                    # entry may already be spent, so report no capacity
                    # rather than promising entries a consume-forward
                    # sweep would then refuse to hand out.
                    record["ledger"] = "stale" if stale else "corrupt"
                    record["nonces_remaining"] = 0
                    record["feldman_remaining"] = 0
                else:
                    record["nonces_spent"] = ledger.nonces_spent
                    record["feldman_spent"] = ledger.feldman_spent
                    record["nonces_remaining"] = max(
                        0, len(material.nonces) - ledger.nonce_high
                    )
                    record["feldman_remaining"] = max(
                        0, len(material.feldman) - ledger.feldman_high
                    )
            records.append(record)
        return records

    def clear(self) -> int:
        """Delete every store file (and spend ledger); returns how many
        material files were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob(f"*{self.SUFFIX}.spent"):
            path.unlink()
        for path in self.root.glob(f"*{self.SUFFIX}.spent.lock"):
            path.unlink()
        for path in self.root.glob(f"*{self.SUFFIX}"):
            path.unlink()
            removed += 1
        return removed


# ---------------------------------------------------------------------------
# Publish (parent) / attach (worker)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MaterialRef:
    """Picklable pointer to one group's serialized material."""

    fingerprint: str
    nbytes: int
    shm_name: Optional[str] = None
    path: Optional[str] = None


@dataclass(frozen=True)
class MaterialHandle:
    """What a worker initializer needs to attach preprocessed material."""

    source: str
    refs: Tuple[MaterialRef, ...] = ()


def _unregister_shm(name: str) -> None:
    """Detach an attached segment from a *spawned* worker's tracker.

    On 3.11 ``SharedMemory(name=...)`` (attach, not create) still
    registers with the resource tracker (bpo-39959; fixed by
    ``track=False`` in 3.13).  Under ``spawn`` each worker runs its own
    tracker, which would unlink the parent's live segment when the
    worker exits — so the attach must be unregistered there.  Under
    ``fork`` parent and workers share one tracker whose registry is a
    set, so the attach was a no-op and unregistering here would instead
    erase the parent's own entry.
    """
    try:
        import multiprocessing

        if multiprocessing.get_start_method(allow_none=True) != "spawn":
            return
        from multiprocessing import resource_tracker

        resource_tracker.unregister(name, "shared_memory")
    # Unregistering is a cross-version resource_tracker workaround (the
    # API is semi-private and its failure modes vary by interpreter);
    # failing merely re-enables the default cleanup-twice warning, which
    # is noise, not degradation — warning here would be noisier.
    except Exception:  # repro: allow[RPR005]
        pass


def publish_material(
    source: str,
    groups: Optional[Sequence[SchnorrGroup]] = None,
    store: Optional[MaterialStore] = None,
) -> Tuple[Optional[MaterialHandle], Callable[[], None]]:
    """Parent half of the online phase: stage material for the workers.

    Returns ``(handle, release)``; the handle ships to every worker via
    the pool initializer and ``release()`` must run once the pool is done
    (it unlinks any shared-memory segments).  ``compute`` (or a failed
    publish) yields ``(None, noop)`` — workers then warm up locally.
    """
    source = resolve_material_source(source)
    if groups is None:
        groups = (TEST_GROUP,)
    if source == MATERIAL_COMPUTE:
        return None, lambda: None
    store = store or MaterialStore()
    refs: List[MaterialRef] = []
    segments: List[Any] = []

    def release() -> None:
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            # release() runs in teardown paths (including interpreter
            # exit); a double-unlink or already-gone segment must not
            # mask the error that triggered the teardown.
            except Exception:  # repro: allow[RPR005]
                pass

    try:
        for group in groups:
            # Lazy offline phase: load-and-validate, or build-and-save.
            blob = store.ensure_blob(group)
            fingerprint = group_fingerprint(group)
            ref = MaterialRef(
                fingerprint=fingerprint,
                nbytes=len(blob),
                path=str(store.path_for(group)),
            )
            if source == MATERIAL_SHARED:
                from multiprocessing import shared_memory

                # Keep the name (with its leading slash) within macOS's
                # 31-char POSIX shm limit: "/rm-" + 12-hex fingerprint
                # prefix + 8-hex random = 25 chars.
                segment = shared_memory.SharedMemory(
                    name=f"rm-{fingerprint[:12]}-{os.urandom(4).hex()}",
                    create=True,
                    size=len(blob),
                )
                segment.buf[: len(blob)] = blob
                segments.append(segment)
                ref = MaterialRef(
                    fingerprint=fingerprint,
                    nbytes=len(blob),
                    shm_name=segment.name,
                    path=ref.path,
                )
            refs.append(ref)
    except Exception as exc:
        release()
        warnings.warn(
            f"could not publish {source} preprocessing material ({exc}); "
            "workers will fall back to computing their own caches",
            RuntimeWarning,
            stacklevel=2,
        )
        return None, lambda: None
    return MaterialHandle(source=source, refs=tuple(refs)), release


def _read_ref(ref: MaterialRef) -> bytes:
    """Fetch one ref's blob: shared memory first, then an mmap of the file."""
    if ref.shm_name is not None:
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(name=ref.shm_name)
        # Segment gone (e.g. parent released early): the mmap fallback
        # below is the designed degradation, and attach_report records
        # which path served the blob — no warning needed for a
        # contract-covered fallback.
        except FileNotFoundError:  # repro: allow[RPR005]
            pass
        else:
            try:
                return bytes(segment.buf[: ref.nbytes])
            finally:
                segment.close()
                _unregister_shm(ref.shm_name)
    if ref.path is None:
        raise MaterialError(f"no byte source for material ref {ref.fingerprint}")
    with open(ref.path, "rb") as handle:
        with mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ) as view:
            return bytes(view)


def _attach_handle(handle: MaterialHandle) -> None:
    """Worker half: install every published blob into its group singleton.

    Any per-ref failure warns and leaves that group to the compute
    fallback — the initializer must never raise (a raising initializer
    kills pool workers in a loop instead of running the sweep).
    """
    targets = {group_fingerprint(group): group for group in default_groups()}
    for ref in handle.refs:
        group = targets.get(ref.fingerprint)
        if group is None:
            warnings.warn(
                f"published material {ref.fingerprint} matches no known "
                "group; ignoring it",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        try:
            material = deserialize_material(_read_ref(ref))
            material.attach(group)
            register_attached(material)
        except Exception as exc:
            warnings.warn(
                f"could not attach preprocessed material {ref.fingerprint} "
                f"({exc}); falling back to computing caches in this worker",
                RuntimeWarning,
                stacklevel=2,
            )


def warm_with_material(
    material: Union[MaterialHandle, str, None] = None,
    store: Optional[MaterialStore] = None,
    groups: Optional[Sequence[SchnorrGroup]] = None,
) -> None:
    """Warm this process's crypto caches from the given material source.

    Accepts a :class:`MaterialHandle` (process workers), a source name
    (inline/thread executors and direct callers), or ``None``/"compute".
    Always finishes with :func:`~repro.crypto.groups.warm_groups`, which
    is a cheap no-op for every cache an attach already installed — so
    whatever happened above, the process ends up warm.
    """
    if isinstance(material, MaterialHandle):
        _attach_handle(material)
    else:
        source = resolve_material_source(material)
        if source != MATERIAL_COMPUTE:
            # Local attach: read the store directly; ``shared`` has no
            # parent segment to attach to here, so it uses the mmap path.
            handle, release = publish_material(
                MATERIAL_DISK, groups=groups, store=store
            )
            try:
                if handle is not None:
                    _attach_handle(handle)
            finally:
                release()
    warm_groups()


# ---------------------------------------------------------------------------
# Online phase: spend the preprocessed pools
# ---------------------------------------------------------------------------

#: Nonce pairs reserved per sweep task in online mode.  A hybrid-mode SBC
#: trial signs nothing (Fcert is ideal there) while a composed-mode trial
#: signs once per Dolev–Strong relay; slices that run out fall back to
#: sampling with a counted warning, so the budget bounds pool footprint,
#: not correctness.
DEFAULT_NONCES_PER_TASK = 8

#: Feldman entries reserved per sweep task in online mode.
DEFAULT_FELDMAN_PER_TASK = 2

#: fingerprint -> material this process attached (worker initializer or
#: inline warm-up).  Cursors only read from it — per-trial positions live
#: in the cursor, so one worker's trials can share the object safely.
_ATTACHED: Dict[str, CryptoMaterial] = {}


def register_attached(material: CryptoMaterial) -> CryptoMaterial:
    """Remember an attached material so online cursors can spend it."""
    _ATTACHED[material.fingerprint] = material
    return material


def attached_material(fingerprint: str) -> Optional[CryptoMaterial]:
    """The material this process attached for ``fingerprint``, if any."""
    return _ATTACHED.get(fingerprint)


def online_pool_requirement(
    tasks: int,
    nonces_per_task: int = DEFAULT_NONCES_PER_TASK,
    feldman_per_task: int = DEFAULT_FELDMAN_PER_TASK,
) -> Dict[str, int]:
    """Pool sizes an online sweep of ``tasks`` tasks needs to never
    fall back to sampling (``repro material build --for-sweep``)."""
    if tasks < 0:
        raise ValueError(f"tasks must be >= 0, got {tasks}")
    return {
        "nonces": tasks * nonces_per_task,
        "feldman": tasks * feldman_per_task,
    }


class MaterialCursor(RandomnessSource):
    """Spend a reserved slice of one material's randomness pools.

    Implements the :class:`~repro.crypto.randomness.RandomnessSource`
    seam: Schnorr nonces come from ``material.nonces[start:stop]`` and
    Feldman polynomials from ``material.feldman[start:stop]``, in order.
    Draws past the reserved slice (or past the built pool, or for a
    group/threshold the entry was not built for) fall back to sampling
    from the caller's ``rng`` — counted, warned once per cursor, and
    recorded in :meth:`spend_summary` so the trace digest pins exactly
    what happened.

    One cursor serves one trial; cursors never mutate the shared
    material object, so every trial in a worker can hold its own cursor
    over the same attached blob.
    """

    name = "pool"

    def __init__(
        self,
        fingerprint: str,
        material: Optional[CryptoMaterial],
        nonce_range: Tuple[int, int] = (0, 0),
        feldman_range: Tuple[int, int] = (0, 0),
        pool_nonces: Optional[int] = None,
        pool_feldman: Optional[int] = None,
    ) -> None:
        self.fingerprint = fingerprint
        self.material = material
        self.nonce_range = (int(nonce_range[0]), int(nonce_range[1]))
        self.feldman_range = (int(feldman_range[0]), int(feldman_range[1]))
        # Pool sizes as *planned*, not as currently on disk: a background
        # replenisher may append entries mid-sweep, and a trial that
        # resolved the longer blob must still see exactly the pools the
        # plan (and therefore the recorded digest) was made with.  Direct
        # constructions without a plan cap at whatever is attached.
        self.pool_nonces = (
            int(pool_nonces)
            if pool_nonces is not None
            else (len(material.nonces) if material else 0)
        )
        self.pool_feldman = (
            int(pool_feldman)
            if pool_feldman is not None
            else (len(material.feldman) if material else 0)
        )
        self._nonce_next = self.nonce_range[0]
        self._feldman_next = self.feldman_range[0]
        self.nonces_spent = 0
        self.feldman_spent = 0
        self.nonces_sampled = 0
        self.feldman_sampled = 0
        self._sample = SampleSource()
        self._warned = False

    # -- draw paths ---------------------------------------------------------

    def _pool_limit(self, stop: int, pool_len: int, cap: int) -> int:
        return min(stop, pool_len, cap)

    def _warn_fallback(self, what: str) -> None:
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"online pool {self.fingerprint} ran out of {what} for this "
                "trial's reserved slice; falling back to sampling (counted "
                "in the trace; rebuild with 'repro material build "
                "--for-sweep' to size the pools)",
                RuntimeWarning,
                stacklevel=3,
            )

    def _next_nonce(self, group) -> Optional[Any]:
        material = self.material
        if material is None or (group.p, group.q, group.g) != (
            material.p, material.q, material.g
        ):
            return None
        limit = self._pool_limit(
            self.nonce_range[1], len(material.nonces), self.pool_nonces
        )
        if self._nonce_next >= limit:
            return None
        pair = material.nonces[self._nonce_next]
        self._nonce_next += 1
        self.nonces_spent += 1
        return pair

    def schnorr_nonce(self, group, rng) -> Tuple[int, int]:
        pair = self._next_nonce(group)
        if pair is not None:
            return pair.k, pair.r
        self.nonces_sampled += 1
        self._warn_fallback("nonces")
        return self._sample.schnorr_nonce(group, rng)

    def nonce_scalar(self, group, rng) -> int:
        pair = self._next_nonce(group)
        if pair is not None:
            return pair.k
        self.nonces_sampled += 1
        self._warn_fallback("nonces")
        return self._sample.nonce_scalar(group, rng)

    def feldman_polynomial(self, group, secret, threshold, rng):
        material = self.material
        if material is not None and (group.p, group.q, group.g) == (
            material.p, material.q, material.g
        ):
            limit = self._pool_limit(
                self.feldman_range[1], len(material.feldman), self.pool_feldman
            )
            if self._feldman_next < limit:
                entry = material.feldman[self._feldman_next]
                if entry.threshold == threshold:
                    self._feldman_next += 1
                    self.feldman_spent += 1
                    secret = secret % group.q
                    coefficients = [secret] + list(entry.coefficients[1:])
                    commitments = (group.power_of_g(secret),) + tuple(
                        entry.commitments[1:]
                    )
                    return coefficients, commitments
        self.feldman_sampled += 1
        self._warn_fallback("feldman entries")
        return self._sample.feldman_polynomial(group, secret, threshold, rng)

    # -- reporting ----------------------------------------------------------

    def spend_summary(self) -> Dict[str, Any]:
        """Canonical-detail-friendly record of what this cursor consumed.

        Recorded into the execution trace (so the digest pins the pool
        identity and the consumed ranges) and carried on the trial
        result (so sweeps can aggregate and ledger the consumption).
        """
        material = self.material
        return {
            "fingerprint": self.fingerprint,
            "source": self.name,
            "material_seed": material.built_with_seed if material else None,
            # Plan-capped sizes, not the attached blob's current length:
            # the digest must not depend on whether a replenisher had
            # already appended entries when this trial resolved the blob.
            "pool_nonces": min(len(material.nonces), self.pool_nonces)
            if material
            else 0,
            "pool_feldman": min(len(material.feldman), self.pool_feldman)
            if material
            else 0,
            "nonce_range": self.nonce_range,
            "feldman_range": self.feldman_range,
            "nonces_spent": self.nonces_spent,
            "feldman_spent": self.feldman_spent,
            "nonces_sampled": self.nonces_sampled,
            "feldman_sampled": self.feldman_sampled,
        }


@dataclass(frozen=True)
class OnlinePlan:
    """How one sweep's tasks partition the preprocessed pools.

    Picklable and shipped to every worker via the runner's ``online=``
    keyword.  Each task maps to a *slot*; slot ``s`` owns the pool slice
    ``[s * per_task, (s + 1) * per_task)`` for both pools, so two tasks
    with different slots can never double-spend an entry — whichever
    worker runs them, in whatever order.  Slots default to the task's
    position in the sweep's task list; callers may assign explicit slots
    (the scenario matrix gives backend-variant cells of one execution
    the *same* slot, because those cells must replay identically for the
    cross-backend digest check).

    Attributes:
        fingerprint: Group fingerprint naming the material to spend.
        assignments: ``(task, slot)`` pairs covering every sweep task.
        nonces_per_task: Nonce pairs reserved per slot.
        feldman_per_task: Feldman entries reserved per slot.
        material_seed: Offline seed the pools were built with; cursors
            refuse a registry hit whose seed or pool sizes disagree (a
            stale attach from an earlier store generation) and fall back
            to the store file.
        pool_nonces: Nonce-pool size the plan was made against; cursors
            cap their reads here, so a replenisher appending entries
            mid-sweep can never change what a planned trial spends.
        pool_feldman: Feldman-pool size at plan time (same cap).
        nonce_offset: Absolute pool index slot 0's nonce slice starts at.
            Zero for classic plans; consume-forward plans set it to the
            ledger's high-water mark, so successive sweeps spend disjoint
            slices.  Baked into the plan (not re-read at spend time), so
            a ``--verify`` replay of this plan consumes the same absolute
            entries the recorded run did.
        feldman_offset: Same, for the Feldman pool.
        consume_forward: Whether this plan was offset by the ledger (and
            reserved its range there at plan time).
    """

    fingerprint: str
    assignments: Tuple[Tuple[Any, int], ...]
    nonces_per_task: int = DEFAULT_NONCES_PER_TASK
    feldman_per_task: int = DEFAULT_FELDMAN_PER_TASK
    material_seed: int = 0
    pool_nonces: int = 0
    pool_feldman: int = 0
    nonce_offset: int = 0
    feldman_offset: int = 0
    consume_forward: bool = False

    @classmethod
    def for_tasks(
        cls,
        tasks: Sequence[Any],
        group: Optional[SchnorrGroup] = None,
        slots: Optional[Sequence[int]] = None,
        nonces_per_task: int = DEFAULT_NONCES_PER_TASK,
        feldman_per_task: int = DEFAULT_FELDMAN_PER_TASK,
        store: Optional[MaterialStore] = None,
        consume_forward: bool = False,
    ) -> "OnlinePlan":
        """Plan a sweep over ``tasks``, ensuring the store holds pools.

        The store blob is built on a miss (the lazy offline phase, same
        as the publish path), and its recorded seed and pool sizes are
        embedded in the plan so every cursor can validate the material
        it resolves against what the parent planned with.

        With ``consume_forward=True`` the slot partitioning starts at
        the ledger's high-water marks instead of index 0, and the plan's
        whole range is *reserved* in the ledger here, before any trial
        runs.  Reserving at plan time is the crash-safety story: a sweep
        that dies mid-flight leaves its range marked spent, so the next
        plan skips past entries that may have been half-consumed instead
        of re-spending them.  A corrupt or stale (rebuilt-under-it)
        ledger degrades conservatively — the plan starts past the entire
        built pool, every draw falls back to counted sampling, and a
        :class:`RuntimeWarning` says so; a worker is never crashed over
        bookkeeping.

        Without ``consume_forward``, a ledger that already shows spends
        triggers an advisory :class:`RuntimeWarning`: this plan is about
        to re-spend entries a previous sweep consumed (fine for replay
        and benchmarking, a footgun if the operator believed the slices
        were fresh).
        """
        group = group if group is not None else TEST_GROUP
        store = store or MaterialStore()
        material = store.ensure(group)
        tasks = list(tasks)
        if slots is None:
            slots = range(len(tasks))
        else:
            slots = list(slots)
            if len(slots) != len(tasks):
                raise ValueError(
                    f"{len(slots)} slots assigned for {len(tasks)} tasks"
                )
        nonce_offset = 0
        feldman_offset = 0
        ledger = store.ledger(material.fingerprint)
        stale = ledger.ok and (
            ledger.material_seed is not None
            and ledger.material_seed != material.built_with_seed
        )
        if consume_forward:
            if not ledger.ok or stale:
                warnings.warn(
                    f"spend ledger for {material.fingerprint} is "
                    f"{'stale (recorded against a different build seed)' if stale else f'unusable ({ledger.note})'}; "
                    "consume-forward conservatively treats the whole pool "
                    "as spent — this sweep will sample instead of "
                    "spending (rebuild with 'repro material build' or "
                    "clear the ledger to recover capacity)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                nonce_offset = len(material.nonces)
                feldman_offset = len(material.feldman)
            else:
                nonce_offset = ledger.nonce_high
                feldman_offset = ledger.feldman_high
        elif ledger.ok and not stale and (
            ledger.nonce_high > 0 or ledger.feldman_high > 0
        ):
            warnings.warn(
                f"spend ledger for {material.fingerprint} already records "
                f"{ledger.nonce_high} nonces and {ledger.feldman_high} "
                "feldman entries as spent; this plan re-spends from index "
                "0 (pass consume_forward / --consume-forward to take "
                "fresh slices instead)",
                RuntimeWarning,
                stacklevel=2,
            )
        plan = cls(
            fingerprint=material.fingerprint,
            assignments=tuple(zip(tasks, slots)),
            nonces_per_task=nonces_per_task,
            feldman_per_task=feldman_per_task,
            material_seed=material.built_with_seed,
            pool_nonces=len(material.nonces),
            pool_feldman=len(material.feldman),
            nonce_offset=nonce_offset,
            feldman_offset=feldman_offset,
            consume_forward=consume_forward,
        )
        if consume_forward:
            plan.reserve(store)
        return plan

    def reserve(self, store: Optional[MaterialStore] = None) -> None:
        """Mark this plan's whole range spent in the ledger, up front.

        Idempotent (high marks merge by ``max``), and failure is
        downgraded to a warning: losing the reservation risks a later
        sweep re-spending — worth telling the operator — but must not
        kill a sweep that is otherwise able to run.
        """
        store = store or MaterialStore()
        required = self.required_pools()
        # Clamp to the built pools: slices past the end sample rather
        # than spend, and cursors cap at the plan's pool sizes — so
        # entries a later extension appends there were never touched and
        # must stay claimable by the next plan.
        try:
            store.record_spend(
                self.fingerprint,
                nonce_high=min(
                    self.nonce_offset + required["nonces"], self.pool_nonces
                ),
                feldman_high=min(
                    self.feldman_offset + required["feldman"], self.pool_feldman
                ),
                material_seed=self.material_seed,
            )
        except OSError as exc:
            warnings.warn(
                f"could not reserve consume-forward range in the spend "
                f"ledger for {self.fingerprint} ({exc}); a concurrent or "
                "later sweep may re-spend this plan's slices",
                RuntimeWarning,
                stacklevel=2,
            )

    def slot_of(self, task: Any) -> int:
        """The pool slot reserved for ``task``.

        Raises:
            KeyError: the task was not part of this plan.
        """
        # Built lazily around the frozen dataclass; a linear scan over
        # assignments would make a sweep's slot lookups quadratic in its
        # task count.
        index = self.__dict__.get("_slot_index")
        if index is None:
            index = dict(self.assignments)
            object.__setattr__(self, "_slot_index", index)
        slot = index.get(task)
        if slot is None:
            raise KeyError(f"task {task!r} is not part of this online plan")
        return slot

    def ranges_for(self, slot: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """``(nonce_range, feldman_range)`` owned by ``slot``.

        Absolute pool indices: the plan's consume-forward offset (zero
        for classic plans) plus the slot's positional slice.
        """
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        return (
            (
                self.nonce_offset + slot * self.nonces_per_task,
                self.nonce_offset + (slot + 1) * self.nonces_per_task,
            ),
            (
                self.feldman_offset + slot * self.feldman_per_task,
                self.feldman_offset + (slot + 1) * self.feldman_per_task,
            ),
        )

    def _resolve_material(self) -> Optional[CryptoMaterial]:
        """This process's copy of the planned pools (registry, then store).

        A registry hit whose seed or pool sizes disagree with the plan is
        a stale attach from an earlier store generation; the store file
        is the tiebreaker.  ``None`` (everything failed) degrades every
        draw to counted sampling — the same never-crash contract the
        attach path holds.

        Pools *longer* than the plan recorded still match: extension is
        append-only and deterministic, so the planned prefix is intact —
        this is what lets a replenisher extend the blob while a sweep is
        in flight.  Cursors cap their reads at the planned sizes, so the
        extra entries are invisible to this plan either way.
        """
        def matches(material: CryptoMaterial) -> bool:
            return (
                material.built_with_seed == self.material_seed
                and len(material.nonces) >= self.pool_nonces
                and len(material.feldman) >= self.pool_feldman
            )

        material = attached_material(self.fingerprint)
        if material is not None and matches(material):
            return material
        try:
            material = MaterialStore().load_fingerprint(self.fingerprint)
        except (OSError, MaterialError):
            return None
        if not matches(material):
            return None
        return register_attached(material)

    def open(self, task: Any) -> MaterialCursor:
        """A cursor over ``task``'s reserved pool slices.

        Never raises for a missing/stale/mismatched material — the
        cursor just samples everything (counted), keeping the worker
        alive and the degradation visible in the trace.
        """
        try:
            slot = self.slot_of(task)
        except KeyError:
            warnings.warn(
                f"task {task!r} missing from the online plan; its trial "
                "will sample instead of spending pools",
                RuntimeWarning,
                stacklevel=2,
            )
            return MaterialCursor(self.fingerprint, None)
        nonce_range, feldman_range = self.ranges_for(slot)
        material = self._resolve_material()
        if material is None:
            warnings.warn(
                f"online material {self.fingerprint} unavailable or stale "
                "in this process; trial falls back to sampling",
                RuntimeWarning,
                stacklevel=2,
            )
        return MaterialCursor(
            self.fingerprint, material,
            nonce_range=nonce_range, feldman_range=feldman_range,
            pool_nonces=self.pool_nonces, pool_feldman=self.pool_feldman,
        )

    def required_pools(self) -> Dict[str, int]:
        """Pool sizes that would satisfy every slot without fallback."""
        top = 1 + max((slot for _task, slot in self.assignments), default=-1)
        return online_pool_requirement(
            top, self.nonces_per_task, self.feldman_per_task
        )


class HostSlotAllocator:
    """Lease per-session pool slots from one plan, for long-lived hosts.

    A sweep knows its whole task list up front, so
    :meth:`OnlinePlan.for_tasks` assigns slots positionally and is done.
    A *service host* (:class:`~repro.runtime.aio.AsyncSessionHost`)
    admits sessions over time, possibly beyond what was planned; this
    allocator sits between the two models:

    * a key the plan already covers gets its planned slot;
    * a previously-unseen key gets the next monotonically increasing
      slot past the plan's top — slots are **never reused or released**,
      because a reused slot is a double-spend by construction;
    * the same key leases the same slot again (replay semantics,
      matching :meth:`OnlinePlan.slot_of`);
    * a slot whose slice extends past the built pools degrades that
      session to counted sampling (the cursor's standing never-crash
      contract) — the allocator warns once when leases first spill past
      capacity, and never hands out an overlapping slice.

    Each lease is a single-assignment *view* of the plan (same
    fingerprint, offsets, per-task sizes and pool caps), so the
    session's ordinary ``online.open(key)`` call works unchanged.
    Thread-safe: hosts lease from the event-loop thread, but nothing
    stops an executor-offloaded caller from leasing too.
    """

    def __init__(self, plan: OnlinePlan) -> None:
        self.plan = plan
        self._slots: Dict[Any, int] = {}
        self._lock = threading.Lock()
        self._next_slot = 1 + max(
            (slot for _task, slot in plan.assignments), default=-1
        )
        self._warned_capacity = False

    @property
    def capacity(self) -> int:
        """Slots whose slices fit entirely inside the built pools."""
        per_nonce = (
            (self.plan.pool_nonces - self.plan.nonce_offset)
            // self.plan.nonces_per_task
            if self.plan.nonces_per_task
            else 0
        )
        per_feldman = (
            (self.plan.pool_feldman - self.plan.feldman_offset)
            // self.plan.feldman_per_task
            if self.plan.feldman_per_task
            else 0
        )
        return max(0, min(per_nonce, per_feldman))

    @property
    def leased(self) -> int:
        """Distinct keys leased so far."""
        return len(self._slots)

    def lease(self, key: Any) -> OnlinePlan:
        """A single-assignment plan view giving ``key`` its own slot."""
        with self._lock:
            slot = self._slots.get(key)
            if slot is None:
                try:
                    slot = self.plan.slot_of(key)
                except KeyError:
                    slot = self._next_slot
                    self._next_slot += 1
                self._slots[key] = slot
                if not self._warned_capacity and slot >= self.capacity:
                    warnings.warn(
                        f"host session slot {slot} exceeds the planned pool "
                        f"capacity ({self.capacity} slots for "
                        f"{self.plan.fingerprint}); sessions past capacity "
                        "fall back to counted sampling — pool slices are "
                        "never reused",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    self._warned_capacity = True
        return replace(self.plan, assignments=((key, slot),))


# ---------------------------------------------------------------------------
# Replenisher: watermark-triggered pool growth
# ---------------------------------------------------------------------------

#: EWMA smoothing factor for the observed per-sweep pool demand.
REPLENISH_ALPHA = 0.5

#: Watermark = burn rate x this many sweeps of headroom: replenishment
#: fires while there is still enough capacity to absorb the sweeps that
#: arrive before the new entries land.
REPLENISH_HEADROOM = 2.0

#: Re-arm threshold as a multiple of the watermark.  After firing, the
#: trigger stays disarmed until remaining capacity clears
#: ``watermark * hysteresis`` — capacity hovering right at the watermark
#: therefore causes one replenishment, not one per poll.
REPLENISH_HYSTERESIS = 1.25

#: When the spent prefix would make up at least this fraction of the
#: extended pool, rebuild (compact to fresh pools under a new seed)
#: instead of extending: the dead prefix is pure (de)serialize-and-attach
#: weight that every worker pays on every sweep.
REPLENISH_REBUILD_DEAD_FRACTION = 0.75


def ewma_burn_rate(
    previous: Optional[float], observed: float, alpha: float = REPLENISH_ALPHA
) -> float:
    """Fold one sweep's observed pool demand into the EWMA burn rate.

    ``previous=None`` seeds the average with the first observation
    (instead of biasing early estimates toward zero).
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    observed = max(0.0, float(observed))
    if previous is None:
        return observed
    return alpha * observed + (1.0 - alpha) * max(0.0, float(previous))


def watermark_for(
    burn_rate: Optional[float],
    headroom: float = REPLENISH_HEADROOM,
    floor: int = 0,
) -> int:
    """Capacity threshold below which replenishment should fire.

    ``burn_rate=None`` (no demand observed yet) yields the floor — a
    fresh replenisher never fires off nothing but its configuration.
    """
    if headroom < 0:
        raise ValueError(f"headroom must be >= 0, got {headroom}")
    if floor < 0:
        raise ValueError(f"floor must be >= 0, got {floor}")
    rate = max(0.0, float(burn_rate)) if burn_rate is not None else 0.0
    return max(int(floor), math.ceil(rate * headroom))


def replenish_decision(
    remaining: int,
    watermark: int,
    armed: bool,
    hysteresis: float = REPLENISH_HYSTERESIS,
) -> Tuple[bool, bool]:
    """``(fire, armed_after)`` for one pool's capacity check.

    Fires only while armed and strictly below the watermark; firing
    disarms.  A disarmed trigger re-arms once remaining capacity clears
    ``ceil(watermark * hysteresis)`` — the gap between the two
    thresholds is what stops a pool hovering at the watermark from
    firing on every poll.  A zero watermark (no observed demand, no
    floor) never fires and leaves the trigger armed.
    """
    if hysteresis < 1.0:
        raise ValueError(f"hysteresis must be >= 1, got {hysteresis}")
    if remaining < 0:
        raise ValueError(f"remaining must be >= 0, got {remaining}")
    if watermark <= 0:
        return False, armed or remaining >= 0
    if armed:
        if remaining < watermark:
            return True, False
        return False, True
    if remaining >= math.ceil(watermark * hysteresis):
        return False, True
    return False, False


def replenish_amount(
    remaining: int,
    burn_rate: Optional[float],
    watermark: int,
    hysteresis: float = REPLENISH_HYSTERESIS,
) -> int:
    """Entries to add so capacity clears the re-arm threshold plus one
    more sweep of burn (otherwise the very next sweep could dip straight
    back under the watermark)."""
    if hysteresis < 1.0:
        raise ValueError(f"hysteresis must be >= 1, got {hysteresis}")
    rate = max(0.0, float(burn_rate)) if burn_rate is not None else 0.0
    target = math.ceil(max(0, watermark) * hysteresis) + math.ceil(rate)
    return max(0, target - max(0, remaining))


def extend_or_rebuild(
    pool_len: int,
    spent_high: int,
    add: int,
    dead_fraction: float = REPLENISH_REBUILD_DEAD_FRACTION,
) -> str:
    """``"extend"`` (append, keep lineage) or ``"rebuild"`` (compact).

    Extension is the default: it is cheap, keeps the ledger valid, and
    in-flight plans keep verifying against the unchanged prefix.  The
    pool is rebuilt only when its spent prefix would dominate the
    extended blob — dead entries every attach pays to ship.
    """
    if not 0.0 < dead_fraction <= 1.0:
        raise ValueError(f"dead_fraction must be in (0, 1], got {dead_fraction}")
    if add < 0:
        raise ValueError(f"add must be >= 0, got {add}")
    extended = max(0, pool_len) + add
    if extended <= 0:
        return "extend"
    dead = min(max(0, spent_high), max(0, pool_len))
    return "rebuild" if dead >= dead_fraction * extended else "extend"


@dataclass
class ReplenishWatch:
    """Handle on a background replenisher thread (see :meth:`Replenisher.watch`)."""

    replenisher: "Replenisher"
    _stop: threading.Event
    _thread: threading.Thread

    def stop(self, timeout: Optional[float] = 5.0) -> bool:
        """Stop the watcher; returns True if the thread leaked.

        The final poll is what catches a sweep whose ledger write landed
        after the last timed tick — ``repro sweep --replenish`` relies
        on it so a watermark crossed *by* the sweep is acted on before
        the process exits.

        ``join(timeout)`` returns regardless of whether the thread
        actually exited, so liveness is re-checked afterwards: a thread
        stuck in a poll (e.g. a hung filesystem) is reported with a
        :class:`RuntimeWarning` and by the ``True`` return value, and
        the final poll is *skipped* — the stuck thread may be holding
        the replenisher mid-operation, and a second concurrent poll
        would race it.
        """
        self._stop.set()
        self._thread.join(timeout)
        if self._thread.is_alive():
            warnings.warn(
                f"replenisher watch thread did not stop within {timeout}s; "
                "leaking the daemon thread (a poll may be stuck on ledger "
                "or store I/O) and skipping the final poll",
                RuntimeWarning,
                stacklevel=2,
            )
            return True
        self.replenisher.poll()
        return False

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()


class Replenisher:
    """Keep one material's pools above a burn-rate-sized watermark.

    Tracks an EWMA of per-sweep pool demand (spent *plus* sampled — a
    draw that fell back to sampling is demand the pool failed to meet),
    sizes a watermark from it, and when remaining capacity (built pool
    minus the ledger's high-water mark) drops below the watermark,
    grows the pools: usually by :func:`~repro.crypto.preprocessing.extend_material`
    (append-only, same fingerprint lineage, in-flight plans unaffected),
    or by a compacting rebuild under a fresh seed once the spent prefix
    dominates the blob.

    Three ways to run it:

    * **inline** — call :meth:`observe` with each sweep's aggregate
      online record, then :meth:`maybe_replenish`;
    * **background** — :meth:`watch` starts a daemon thread that polls
      the ledger sidecar during a sweep and replenishes mid-flight
      (safe: extension is append-only and cursors cap at plan sizes);
    * **one-shot** — :meth:`replenish` with explicit amounts
      (``repro material replenish``).

    Hysteresis keeps it from thrashing: after firing, the trigger stays
    disarmed until capacity clears ``watermark * hysteresis``, so one
    watermark crossing produces exactly one replenishment however often
    the state is polled.
    """

    def __init__(
        self,
        group: Optional[SchnorrGroup] = None,
        store: Optional[MaterialStore] = None,
        alpha: float = REPLENISH_ALPHA,
        headroom: float = REPLENISH_HEADROOM,
        hysteresis: float = REPLENISH_HYSTERESIS,
        watermark_floor: int = 0,
        dead_fraction: float = REPLENISH_REBUILD_DEAD_FRACTION,
    ) -> None:
        self.group = group if group is not None else TEST_GROUP
        self.store = store if store is not None else MaterialStore()
        self.alpha = alpha
        self.headroom = headroom
        self.hysteresis = hysteresis
        self.watermark_floor = watermark_floor
        self.dead_fraction = dead_fraction
        self.burn_nonces: Optional[float] = None
        self.burn_feldman: Optional[float] = None
        self.armed = True
        #: One record per replenishment this instance performed.
        self.replenishments: List[Dict[str, Any]] = []
        self._lock = threading.RLock()
        self._seen_sums: Optional[Tuple[int, int]] = None

    # -- burn tracking ------------------------------------------------------

    def observe(self, spend: Optional[Dict[str, Any]]) -> None:
        """Fold one sweep's aggregate online record into the burn EWMA."""
        if not spend:
            return
        nonce_demand = int(spend.get("nonces_spent", 0)) + int(
            spend.get("nonces_sampled", 0)
        )
        feldman_demand = int(spend.get("feldman_spent", 0)) + int(
            spend.get("feldman_sampled", 0)
        )
        with self._lock:
            self.burn_nonces = ewma_burn_rate(
                self.burn_nonces, nonce_demand, self.alpha
            )
            self.burn_feldman = ewma_burn_rate(
                self.burn_feldman, feldman_demand, self.alpha
            )

    def _observe_ledger(self, ledger: SpendLedger) -> None:
        """Burn tracking for the watcher: diff the ledger's sums between
        polls (the sidecar is the only signal a background thread has)."""
        if not ledger.ok:
            return
        sums = (ledger.nonces_spent, ledger.feldman_spent)
        with self._lock:
            seen = self._seen_sums
            self._seen_sums = sums
            if seen is None or sums == seen:
                return
        self.observe(
            {
                "nonces_spent": max(0, sums[0] - seen[0]),
                "feldman_spent": max(0, sums[1] - seen[1]),
            }
        )

    # -- capacity -----------------------------------------------------------

    def _capacity(self) -> Optional[Dict[str, Any]]:
        """Material + ledger + conservative remaining counts, or ``None``
        when the store holds no (usable) blob for the group."""
        try:
            material = self.store.load(self.group)
        except (OSError, MaterialError):
            return None
        ledger = self.store.ledger(material.fingerprint)
        stale = ledger.ok and (
            ledger.material_seed is not None
            and ledger.material_seed != material.built_with_seed
        )
        trusted = ledger.ok and not stale
        return {
            "material": material,
            "ledger": ledger,
            "ledger_trusted": trusted,
            "nonces_remaining": (
                max(0, len(material.nonces) - ledger.nonce_high) if trusted else 0
            ),
            "feldman_remaining": (
                max(0, len(material.feldman) - ledger.feldman_high) if trusted else 0
            ),
        }

    def status(self) -> Dict[str, Any]:
        """Operator view: burn rates, watermarks, remaining capacity."""
        with self._lock:
            state = self._capacity()
            record: Dict[str, Any] = {
                "group": group_fingerprint(self.group),
                "armed": self.armed,
                "burn_nonces": self.burn_nonces,
                "burn_feldman": self.burn_feldman,
                "watermark_nonces": watermark_for(
                    self.burn_nonces, self.headroom, self.watermark_floor
                ),
                "watermark_feldman": watermark_for(
                    self.burn_feldman, self.headroom, self.watermark_floor
                ),
                "replenishments": len(self.replenishments),
            }
            if state is None:
                record["material"] = None
            else:
                record["material"] = state["material"].fingerprint
                record["ledger_trusted"] = state["ledger_trusted"]
                record["nonces_remaining"] = state["nonces_remaining"]
                record["feldman_remaining"] = state["feldman_remaining"]
            return record

    # -- replenishment ------------------------------------------------------

    def maybe_replenish(self) -> Optional[Dict[str, Any]]:
        """Replenish if any pool is below its watermark; else ``None``."""
        with self._lock:
            state = self._capacity()
            if state is None:
                return None
            watermark_n = watermark_for(
                self.burn_nonces, self.headroom, self.watermark_floor
            )
            watermark_f = watermark_for(
                self.burn_feldman, self.headroom, self.watermark_floor
            )
            fire_n, armed_n = replenish_decision(
                state["nonces_remaining"], watermark_n, self.armed, self.hysteresis
            )
            fire_f, armed_f = replenish_decision(
                state["feldman_remaining"], watermark_f, self.armed, self.hysteresis
            )
            if not (fire_n or fire_f):
                self.armed = armed_n and armed_f
                return None
            self.armed = False
            add_n = replenish_amount(
                state["nonces_remaining"],
                self.burn_nonces,
                watermark_n,
                self.hysteresis,
            )
            add_f = replenish_amount(
                state["feldman_remaining"],
                self.burn_feldman,
                watermark_f,
                self.hysteresis,
            )
            return self._replenish_locked(state, add_n, add_f)

    def replenish(self, nonces: int = 0, feldman: int = 0) -> Optional[Dict[str, Any]]:
        """One-shot replenishment with explicit amounts (the CLI path).

        Returns the replenishment record, or ``None`` when the store has
        no blob for the group (nothing to grow — ``repro material build``
        is the tool for that).
        """
        if nonces < 0 or feldman < 0:
            raise ValueError("replenish amounts must be >= 0")
        with self._lock:
            state = self._capacity()
            if state is None:
                return None
            return self._replenish_locked(state, nonces, feldman)

    def _replenish_locked(
        self, state: Dict[str, Any], add_nonces: int, add_feldman: int
    ) -> Dict[str, Any]:
        material: CryptoMaterial = state["material"]
        ledger: SpendLedger = state["ledger"]
        # An untrusted ledger means the whole pool counts as dead weight.
        high_n = (
            min(ledger.nonce_high, len(material.nonces))
            if state["ledger_trusted"]
            else len(material.nonces)
        )
        high_f = (
            min(ledger.feldman_high, len(material.feldman))
            if state["ledger_trusted"]
            else len(material.feldman)
        )
        mode_n = extend_or_rebuild(
            len(material.nonces), high_n, add_nonces, self.dead_fraction
        )
        mode_f = extend_or_rebuild(
            len(material.feldman), high_f, add_feldman, self.dead_fraction
        )
        mode = "rebuild" if "rebuild" in (mode_n, mode_f) else "extend"
        if mode == "extend":
            grown = extend_material(material, nonces=add_nonces, feldman=add_feldman)
        else:
            # Fresh pools under a stepped seed; save() resets the
            # now-stale ledger (seed mismatch), so the new pools start
            # unspent.  Each pool is floored at its previous built size:
            # a replenisher may only grow capacity, and a mostly-dead
            # sibling pool (e.g. feldman fully reserved while nonces
            # triggered the rebuild) must not collapse to zero entries.
            threshold = material.feldman[0].threshold if material.feldman else 2
            grown = build_material(
                self.group,
                nonces=max(
                    len(material.nonces),
                    state["nonces_remaining"] + add_nonces,
                ),
                feldman=max(
                    len(material.feldman),
                    state["feldman_remaining"] + add_feldman,
                ),
                feldman_threshold=threshold,
                seed=material.built_with_seed + 1,
            )
        self.store.save(grown)
        record = {
            "fingerprint": material.fingerprint,
            "mode": mode,
            "nonces_added": add_nonces,
            "feldman_added": add_feldman,
            "pool_nonces": len(grown.nonces),
            "pool_feldman": len(grown.feldman),
            "material_seed": grown.built_with_seed,
        }
        self.replenishments.append(record)
        return record

    # -- background mode ----------------------------------------------------

    def poll(self) -> Optional[Dict[str, Any]]:
        """One watcher tick: fold ledger activity into the burn rate,
        then replenish if a watermark is crossed."""
        try:
            fingerprint = group_fingerprint(self.group)
            self._observe_ledger(self.store.ledger(fingerprint))
            return self.maybe_replenish()
        except Exception as exc:
            # The watcher must never take a sweep down over bookkeeping.
            warnings.warn(
                f"replenisher poll failed ({exc}); will retry on the next tick",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def watch(self, interval_s: float = 0.25) -> ReplenishWatch:
        """Start a daemon thread polling the ledger every ``interval_s``.

        Mid-sweep replenishment is safe by construction: extension only
        appends (atomic file replace, unchanged prefix) and cursors cap
        reads at their plan's recorded pool sizes, so running trials
        never observe the growth.  Call :meth:`ReplenishWatch.stop` when
        the sweep finishes; it runs one final poll.
        """
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        # Pin the burn-tracking baseline *now*, synchronously: a sweep
        # that finishes inside the first tick interval would otherwise
        # meet a final poll whose only job is setting the baseline —
        # the sweep's whole ledger delta would go unobserved and a
        # crossed watermark would never fire.
        self.poll()
        stop = threading.Event()

        def _loop() -> None:
            while not stop.wait(interval_s):
                self.poll()

        thread = threading.Thread(
            target=_loop, name="repro-replenisher", daemon=True
        )
        thread.start()
        return ReplenishWatch(replenisher=self, _stop=stop, _thread=thread)
