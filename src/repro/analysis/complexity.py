"""Cost reports from a session's metrics: the paper's units, summarized.

A :class:`CostReport` snapshots the quantities the paper argues about —
rounds elapsed, broadcast/point-to-point messages, wrapped-oracle batches
and total hash points, signatures — so benchmarks and examples can print
a one-call cost breakdown of any execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


@dataclass(frozen=True)
class CostReport:
    """Aggregated execution costs in the paper's units."""

    rounds: int
    messages_total: int
    messages_p2p: int
    ro_batches: int
    ro_points: int
    signatures: int
    verifications: int
    corruptions: int

    def as_row(self) -> Dict[str, int]:
        """Dict form, ready for :func:`repro.analysis.tables.format_table`."""
        return {
            "rounds": self.rounds,
            "messages": self.messages_total,
            "p2p": self.messages_p2p,
            "ro_batches": self.ro_batches,
            "ro_points": self.ro_points,
            "sig": self.signatures,
            "verify": self.verifications,
            "corruptions": self.corruptions,
        }


def cost_report(session: "Session") -> CostReport:
    """Snapshot the session's accumulated costs."""
    metrics = session.metrics
    return CostReport(
        rounds=session.clock.time,
        messages_total=metrics.get("messages.total"),
        messages_p2p=metrics.get("messages.p2p"),
        ro_batches=metrics.get("ro.batches"),
        ro_points=metrics.get("ro.points"),
        signatures=metrics.get("sig.sign"),
        verifications=metrics.get("sig.verify"),
        corruptions=metrics.get("corruptions"),
    )


def per_party_oracle_use(session: "Session") -> Dict[str, int]:
    """Oracle queries attributed per entity (``ro.by.*`` counters)."""
    prefix = "ro.by."
    return {
        key[len(prefix):]: value
        for key, value in session.metrics.counters.items()
        if key.startswith(prefix)
    }
