"""Result analysis: tables, attack statistics, cost reports."""

from repro.analysis.complexity import CostReport, cost_report, per_party_oracle_use
from repro.analysis.tables import format_table
from repro.analysis.stats import bit_bias, proportion, uniformity_pvalue

__all__ = [
    "CostReport",
    "bit_bias",
    "cost_report",
    "format_table",
    "per_party_oracle_use",
    "proportion",
    "uniformity_pvalue",
]
