"""Result analysis: tables, attack statistics, cost reports, lint.

Re-exports are lazy (PEP 562): :mod:`repro.analysis.complexity` reaches
into the protocol stack, and the ``repro lint`` path must be importable
on a minimal install without touching it.
"""

__all__ = [
    "CostReport",
    "bit_bias",
    "cost_report",
    "format_table",
    "per_party_oracle_use",
    "proportion",
    "uniformity_pvalue",
]

_LAZY = {
    "CostReport": "repro.analysis.complexity",
    "cost_report": "repro.analysis.complexity",
    "per_party_oracle_use": "repro.analysis.complexity",
    "format_table": "repro.analysis.tables",
    "bit_bias": "repro.analysis.stats",
    "proportion": "repro.analysis.stats",
    "uniformity_pvalue": "repro.analysis.stats",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
