"""Plain-text table formatting for benchmark output.

Benchmarks print the rows the paper's claims predict; keeping the
formatter here avoids every benchmark re-inventing column alignment.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return title or "(no rows)"
    columns = list(columns) if columns else list(rows[0])
    widths = {column: len(column) for column in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            text = _cell(row.get(column))
            widths[column] = max(widths[column], len(text))
            cells.append(text)
        rendered.append(cells)
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[column] for column in columns))
    for cells in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[column]) for cell, column in zip(cells, columns))
        )
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if value is None:
        return "-"
    return str(value)
