"""The shipped rules: RPR001–RPR007, each grounded in a past bug.

Every rule documents the invariant it encodes and the incident that
motivated it; ARCHITECTURE.md cross-references them.  Rules are
registered on import via :func:`~repro.analysis.lint.engine.register_rule`
and scoped with fnmatch patterns over relative posix paths (see the
engine docstring for how roots are resolved).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.engine import LintContext, Rule, path_matches, register_rule

__all__ = [
    "ArithNormalizationRule",
    "DigestNondeterminismRule",
    "LockDisciplineRule",
    "PickleSafetyRule",
    "RandomnessSeamRule",
    "WorkerDegradationRule",
    "WorkerSupervisionRule",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    return dotted_name(call.func)


def is_self_attr(node: ast.AST, attrs: Set[str]) -> Optional[str]:
    """The attribute name when ``node`` is ``self.<attr in attrs>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in attrs
    ):
        return node.attr
    return None


@register_rule
class DigestNondeterminismRule(Rule):
    """RPR001 — event details and digest paths must be deterministic.

    Motivated by the PR 3 repr-order-sensitive tally digest and the PR 5
    ``canonical_detail`` retrofit: a recorded detail is hashed via
    ``trace_digest``, so pre-rendering it with ``repr``/``str`` (dict and
    set order leaks ``PYTHONHASHSEED``) or embedding wall-clock/entropy
    values makes byte-identical executions digest differently across
    processes.  Record the structure itself; ``canonical_detail`` renders
    it stably at hash time.
    """

    id = "RPR001"
    name = "digest-nondeterminism"
    invariant = (
        "event details and digest-bearing code must not pre-render "
        "structures with repr/str or draw time/entropy/id values"
    )
    paths = None  # every file: .record() call sites live across the tree

    NONDET = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "os.urandom",
        "uuid.uuid4",
        "id",
        "hash",
    }

    def check(self, ctx: LintContext) -> Iterator:
        for node in ast.walk(ctx.tree):
            # (a) repr(x).encode() anywhere: rendering an arbitrary object
            # to bytes; dict/set reprs are not cross-process-stable.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "encode"
                and isinstance(node.func.value, ast.Call)
                and isinstance(node.func.value.func, ast.Name)
                and node.func.value.func.id == "repr"
            ):
                yield ctx.finding(
                    self,
                    node,
                    "repr(...).encode() renders an object to bytes; use "
                    "canonical_detail(...) for a cross-process-stable rendering",
                )
            # (b) nondeterminism and pre-rendering inside .record(detail=...)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "record":
                    detail = self._detail_arg(node)
                    if detail is not None:
                        yield from self._scan_detail(ctx, detail)
            # (c) digest-bearing functions must not consult clocks/entropy
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_digest_fn(node):
                    yield from self._scan_digest_fn(ctx, node)

    @staticmethod
    def _detail_arg(call: ast.Call) -> Optional[ast.AST]:
        for keyword in call.keywords:
            if keyword.arg == "detail":
                return keyword.value
        # EventLog.record(time, kind, source, detail): 4th positional.
        if len(call.args) >= 4:
            return call.args[3]
        return None

    def _scan_detail(self, ctx: LintContext, detail: ast.AST) -> Iterator:
        for sub in ast.walk(detail):
            if not isinstance(sub, ast.Call):
                continue
            name = call_name(sub)
            if name in self.NONDET:
                yield ctx.finding(
                    self,
                    sub,
                    f"non-deterministic {name}(...) in a recorded event detail; "
                    "details are hashed by trace_digest and must be replayable",
                )
            elif (
                isinstance(sub.func, ast.Name)
                and sub.func.id in ("repr", "str", "format")
                and sub.args
                and not isinstance(sub.args[0], ast.Constant)
            ):
                yield ctx.finding(
                    self,
                    sub,
                    f"pre-rendered event detail ({sub.func.id}(...)); record the "
                    "structure itself — canonical_detail renders it stably at "
                    "digest time",
                )

    @staticmethod
    def _is_digest_fn(fn: ast.AST) -> bool:
        if "digest" in fn.name:
            return True
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Call):
                name = call_name(sub)
                if name is not None and name.startswith("hashlib."):
                    return True
        return False

    def _scan_digest_fn(self, ctx: LintContext, fn: ast.AST) -> Iterator:
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Call) and call_name(sub) in self.NONDET:
                yield ctx.finding(
                    self,
                    sub,
                    f"non-deterministic {call_name(sub)}(...) inside digest-bearing "
                    f"function {fn.name}(); digests must be replayable",
                )


@register_rule
class RandomnessSeamRule(Rule):
    """RPR002 — crypto code draws randomness through the seam.

    The online protocol mode (PR 5/7) swaps preprocessed pool entries in
    for fresh randomness by installing a ``RandomnessSource``; any crypto
    code that calls ``rng.randrange``/``random.*`` directly bypasses the
    seam and silently falls out of pool-spend accounting.  The seam's own
    machinery is exempt by path: ``crypto/randomness.py`` (the seam and
    ``SampleSource``) and ``crypto/preprocessing.py`` (the offline phase
    is where pooled randomness legitimately originates).
    """

    id = "RPR002"
    name = "randomness-seam"
    invariant = (
        "crypto modules draw randomness via current_source(), not "
        "rng.*/random.* directly"
    )
    paths = ("crypto/*.py",)

    EXEMPT_FILES = ("crypto/randomness.py", "crypto/preprocessing.py")
    RNG_METHODS = {
        "random",
        "randrange",
        "randint",
        "getrandbits",
        "randbytes",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
    }

    def check(self, ctx: LintContext) -> Iterator:
        if any(ctx.relpath.endswith(exempt) for exempt in self.EXEMPT_FILES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            direct_rng = (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "rng"
                and node.func.attr in self.RNG_METHODS
            )
            module_random = name.startswith(("random.", "secrets."))
            bare_random = name in ("Random", "SystemRandom")
            if direct_rng or module_random or bare_random:
                yield ctx.finding(
                    self,
                    node,
                    f"direct randomness draw {name}(...) in crypto code; route "
                    "through the RandomnessSource seam (current_source()) so "
                    "online mode can substitute preprocessed pool entries",
                )


@register_rule
class ArithNormalizationRule(Rule):
    """RPR003 — native arithmetic stays behind int() at crypto boundaries.

    PR 6's native tier computes on gmpy2 ``mpz`` inside tight loops (via
    ``ArithBackend.to_native``); an ``mpz`` escaping a public return
    changes pickles, JSON blobs and reprs between arithmetic tiers.  Any
    function that localizes natives must normalize what it returns with
    ``int(...)``.
    """

    id = "RPR003"
    name = "arith-normalization"
    invariant = (
        "crypto functions that compute on ArithBackend natives return "
        "int(...)-normalized values"
    )
    paths = ("crypto/*.py",)

    def check(self, ctx: LintContext) -> Iterator:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "to_native":
                continue  # the conversion seam itself returns natives
            if not self._uses_natives(node):
                continue
            tainted = self._tainted_names(node)
            for ret in ast.walk(node):
                if not isinstance(ret, ast.Return) or ret.value is None:
                    continue
                for culprit in self._unnormalized(ret.value, tainted):
                    yield ctx.finding(
                        self,
                        ret,
                        f"{node.name}() computes on ArithBackend natives but "
                        f"returns {culprit} without int(...) normalization — "
                        "a gmpy2 mpz would leak into pickles/blobs/digests",
                    )

    @staticmethod
    def _uses_natives(fn: ast.AST) -> bool:
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                if sub.func.attr == "to_native":
                    return True
        return False

    @staticmethod
    def _tainted_names(fn: ast.AST) -> Set[str]:
        """Names assigned from arithmetic/to_native results, propagated."""
        tainted: Set[str] = set()
        for sub in ast.walk(fn):
            value = None
            targets: List[ast.AST] = []
            if isinstance(sub, ast.Assign):
                value, targets = sub.value, sub.targets
            elif isinstance(sub, ast.AugAssign):
                value, targets = sub.value, [sub.target]
            if value is None:
                continue
            from_binop = isinstance(value, ast.BinOp)
            from_native = (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "to_native"
            )
            from_tainted = isinstance(value, ast.Name) and value.id in tainted
            if isinstance(sub, ast.AugAssign):
                from_binop = True  # x %= p is arithmetic regardless of value
            if from_binop or from_native or from_tainted:
                for target in targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
        return tainted

    def _unnormalized(self, value: ast.AST, tainted: Set[str]) -> Iterator[str]:
        if isinstance(value, ast.Tuple):
            for element in value.elts:
                yield from self._unnormalized(element, tainted)
            return
        if isinstance(value, ast.BinOp):
            yield "an arithmetic expression"
        elif isinstance(value, ast.Name) and value.id in tainted:
            yield f"native-tainted name {value.id!r}"


@register_rule
class LockDisciplineRule(Rule):
    """RPR004 — registered guarded attributes mutate only under their lock.

    ``SchnorrGroup`` shares one instance across pool threads; its lazy
    fixed-base/encoding caches are guarded by ``_accel_lock`` (PR 6), and
    the ``Replenisher``'s arming state by ``_lock`` (PR 7).  A mutation
    outside the lock is a data race that presents as a once-a-month torn
    cache.  Constructors and unpickling hooks are exempt (no concurrent
    aliases exist yet).
    """

    id = "RPR004"
    name = "lock-discipline"
    invariant = (
        "registered guarded attributes (SchnorrGroup caches, Replenisher "
        "arming state) mutate only inside their lock's with-block"
    )
    paths = None

    #: class name -> (guarded attributes, lock attribute)
    GUARDED: Dict[str, Tuple[Set[str], str]] = {
        "SchnorrGroup": ({"_fb_state", "_encoding_cache", "_fb_calls"}, "_accel_lock"),
        "Replenisher": ({"armed", "burn_nonces", "burn_feldman", "_seen_sums"}, "_lock"),
    }
    EXEMPT_METHODS = {"__init__", "__post_init__", "__setstate__", "__new__"}
    MUTATORS = {"append", "add", "clear", "update", "pop", "popitem", "setdefault", "extend", "remove"}

    def check(self, ctx: LintContext) -> Iterator:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name in self.GUARDED:
                attrs, lock = self.GUARDED[node.name]
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if item.name in self.EXEMPT_METHODS:
                            continue
                        yield from self._scan(ctx, item, attrs, lock, under=False)

    def _scan(self, ctx, node, attrs: Set[str], lock: str, under: bool) -> Iterator:
        for child in ast.iter_child_nodes(node):
            child_under = under
            if isinstance(child, ast.With):
                if any(self._is_lock(item.context_expr, lock) for item in child.items):
                    child_under = True
            if not child_under:
                yield from self._flag(ctx, child, attrs, lock)
            yield from self._scan(ctx, child, attrs, lock, child_under)

    @staticmethod
    def _is_lock(expr: ast.AST, lock: str) -> bool:
        if isinstance(expr, ast.Name) and expr.id == lock:
            return True
        return is_self_attr(expr, {lock}) is not None

    def _flag(self, ctx, node, attrs: Set[str], lock: str) -> Iterator:
        hit: Optional[str] = None
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    target = target.value
                hit = hit or is_self_attr(target, attrs)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            if call_name(call) == "object.__setattr__" and len(call.args) >= 2:
                key = call.args[1]
                if (
                    isinstance(call.args[0], ast.Name)
                    and call.args[0].id == "self"
                    and isinstance(key, ast.Constant)
                    and key.value in attrs
                ):
                    hit = key.value
            elif isinstance(call.func, ast.Attribute) and call.func.attr in self.MUTATORS:
                hit = is_self_attr(call.func.value, attrs)
        if hit:
            yield ctx.finding(
                self,
                node,
                f"guarded attribute {hit!r} mutated outside `with self.{lock}:`; "
                "concurrent pool threads share this object",
            )


@register_rule
class WorkerDegradationRule(Rule):
    """RPR005 — degradation paths warn; nothing swallows blindly.

    The runtime's contract (PR 4/5/7): every worker/attach/replenish
    failure degrades to a safe fallback *and says so* with a
    ``RuntimeWarning`` — a silent ``except: pass`` turns a mis-deployed
    material store into an unexplained 10x slowdown.  Bare ``except:``
    is flagged everywhere in ``src/`` (it catches ``KeyboardInterrupt``
    and masks worker shutdown).
    """

    id = "RPR005"
    name = "worker-degradation"
    invariant = (
        "runtime/ except-handlers never silently swallow (warn or re-raise); "
        "no bare except anywhere"
    )
    paths = None

    RUNTIME = ("runtime/*.py",)

    def check(self, ctx: LintContext) -> Iterator:
        in_runtime = any(path_matches(ctx.relpath, pat) for pat in self.RUNTIME)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare `except:` catches KeyboardInterrupt/SystemExit and masks "
                    "worker shutdown; name the exceptions",
                )
                continue
            if in_runtime and self._swallows(node):
                caught = dotted_name(node.type) or "exception"
                yield ctx.finding(
                    self,
                    node,
                    f"handler swallows {caught} silently; degradation paths must "
                    "warnings.warn(..., RuntimeWarning) (or re-raise/narrow)",
                )

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring / ellipsis
            return False
        return True


@register_rule
class PickleSafetyRule(Rule):
    """RPR006 — multiprocessing submissions receive picklable callables.

    Process executors pickle the callable; a lambda or locally-defined
    function raises ``PicklingError`` only once a process pool is
    actually selected — i.e. in CI's process-smoke job, not in the inline
    default a dev box runs.  Submission sites in the runtime must pass
    module-level functions or ``functools.partial`` over them.
    """

    id = "RPR006"
    name = "pickle-safety"
    invariant = (
        "multiprocessing submission sites (map/submit/apply_async/"
        "initializer=) receive module-level callables, never lambdas or "
        "local defs"
    )
    paths = ("runtime/*.py",)

    SUBMIT_METHODS = {"map", "imap", "imap_unordered", "map_async", "starmap", "apply_async", "submit"}
    CALLABLE_KWARGS = {"initializer", "target"}

    def check(self, ctx: LintContext) -> Iterator:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_defs = {
                sub.name
                for sub in ast.walk(node)
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not node
            }
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                yield from self._check_call(ctx, call, local_defs)

    def _check_call(self, ctx, call: ast.Call, local_defs: Set[str]) -> Iterator:
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in self.SUBMIT_METHODS
            and call.args
        ):
            yield from self._flag_callable(ctx, call.args[0], f".{call.func.attr}(...)", local_defs)
        name = call_name(call)
        if name in ("functools.partial", "partial") and call.args:
            yield from self._flag_callable(ctx, call.args[0], "functools.partial(...)", local_defs)
        for keyword in call.keywords:
            if keyword.arg == "initializer" or (
                # target= only crosses a pickle boundary for Process;
                # threading.Thread targets run in-process and may close
                # over anything.
                keyword.arg == "target"
                and name is not None
                and name.split(".")[-1] == "Process"
            ):
                yield from self._flag_callable(
                    ctx, keyword.value, f"{keyword.arg}= of {name or 'a call'}", local_defs
                )

    def _flag_callable(self, ctx, arg: ast.AST, where: str, local_defs: Set[str]) -> Iterator:
        if isinstance(arg, ast.Lambda):
            yield ctx.finding(
                self,
                arg,
                f"lambda passed to {where}; lambdas do not pickle — use a "
                "module-level function or functools.partial over one",
            )
        elif isinstance(arg, ast.Name) and arg.id in local_defs:
            yield ctx.finding(
                self,
                arg,
                f"locally-defined function {arg.id!r} passed to {where}; local "
                "defs do not pickle — hoist it to module level",
            )


@register_rule
class WorkerSupervisionRule(Rule):
    """RPR007 — no unbounded blocking waits on worker machinery.

    Motivated by this PR's tentpole: the old ``pool.map`` fan-out had no
    per-task timeout, so one SIGKILL-ed or hung worker stalled the whole
    sweep forever and discarded every finished result.  In ``runtime/``,
    waiting on pools, executors, workers or async results must be
    bounded (``.get(timeout=...)``, ``.join(timeout)``) or go through
    the :class:`~repro.runtime.supervisor.Supervisor`; the few sites
    where an unbounded wait is provably safe (thread executors,
    post-``terminate()`` reaping) carry ``# repro: allow[RPR007]``.

    The asyncio engine extends the same invariant to coroutines: every
    ``asyncio.wait_for``/``asyncio.wait`` must carry a concrete (non-
    ``None``) timeout, and an awaited zero-arg queue ``.get()`` counts
    as bounded only when it is the wrapped first argument of such a
    bounded ``wait_for`` — the pattern ``runtime/aio.py`` uses for every
    mailbox and conductor wait.
    """

    id = "RPR007"
    name = "worker-supervision"
    invariant = (
        "runtime/ never blocks unboundedly on worker machinery: pool/"
        "executor .map goes through the Supervisor, .get()/.join() carry "
        "a timeout, asyncio waits carry a concrete timeout"
    )
    paths = ("runtime/*.py",)

    #: Blocking fan-out methods on a pool/executor receiver — these hold
    #: the caller until *every* task returns, with no timeout parameter
    #: at all, so a single lost worker is unrecoverable.
    BLOCKING_MAPS = {"map", "imap", "imap_unordered", "starmap", "map_async"}
    #: Receiver name fragments that identify worker machinery (matched
    #: case-insensitively against the dotted receiver name) — scoping to
    #: these keeps dict-like ``.map``-free objects out of scope.
    WORKER_RECEIVERS = ("pool", "executor", "worker", "process", "thread", "result")
    #: asyncio wait primitives whose ``timeout`` defaults to ``None`` —
    #: in runtime/ they must be called with an explicit bound.
    ASYNC_WAITS = ("wait_for", "wait")

    def check(self, ctx: LintContext) -> Iterator:
        bounded_gets = self._bounded_wait_for_args(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            wait_name = self._async_wait_name(node)
            if wait_name is not None:
                if not self._async_wait_bounded(node, wait_name):
                    yield ctx.finding(
                        self,
                        node,
                        f"asyncio.{wait_name}() without a concrete timeout "
                        "suspends forever on a coroutine that may never "
                        "resolve; pass timeout= (the async driver bounds "
                        "every await with STEP_TIMEOUT_S)",
                    )
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            has_timeout = any(kw.arg == "timeout" for kw in node.keywords)
            if method in self.BLOCKING_MAPS and self._worker_receiver(node.func.value):
                yield ctx.finding(
                    self,
                    node,
                    f".{method}() blocks until every task returns — one dead "
                    "worker stalls the sweep forever; dispatch chunks through "
                    "the Supervisor (apply_async + bounded get) instead",
                )
            elif (
                method == "get"
                and not node.args
                and not node.keywords
                and node not in bounded_gets
            ):
                # dict/env .get always takes a key argument, so a zero-arg
                # .get() is an AsyncResult/queue wait — and unbounded,
                # unless a bounded asyncio.wait_for wraps it.
                yield ctx.finding(
                    self,
                    node,
                    ".get() without a timeout waits forever on a result a dead "
                    "worker will never deliver; pass timeout= (or wrap it in "
                    "a bounded asyncio.wait_for)",
                )
            elif (
                method == "join"
                and not node.args
                and not has_timeout
                and self._worker_receiver(node.func.value)
            ):
                # str.join takes its iterable argument, so a zero-arg
                # .join() on worker machinery is a blocking reap.
                yield ctx.finding(
                    self,
                    node,
                    ".join() without a timeout can hang on a wedged worker; "
                    "pass a timeout (and check is_alive() after) or "
                    "terminate() first",
                )

    def _worker_receiver(self, node: ast.AST) -> bool:
        name = dotted_name(node)
        if name is None:
            return False
        lowered = name.lower()
        return any(fragment in lowered for fragment in self.WORKER_RECEIVERS)

    def _async_wait_name(self, node: ast.Call) -> Optional[str]:
        """``wait_for``/``wait`` if this call is an asyncio wait primitive.

        Matches the qualified form (``asyncio.wait_for``) and the bare
        import (``from asyncio import wait_for``); a bare ``wait`` name
        also counts — in runtime/ an unbounded ``wait()`` is suspect no
        matter which module it came from.
        """
        name = dotted_name(node.func)
        if name is None:
            return None
        head, _, tail = name.rpartition(".")
        if tail not in self.ASYNC_WAITS:
            return None
        if head and head.split(".")[-1] != "asyncio":
            return None
        return tail

    @staticmethod
    def _is_none(node: ast.AST) -> bool:
        return isinstance(node, ast.Constant) and node.value is None

    def _async_wait_bounded(self, node: ast.Call, wait_name: str) -> bool:
        for keyword in node.keywords:
            if keyword.arg == "timeout":
                return not self._is_none(keyword.value)
        if wait_name == "wait_for" and len(node.args) >= 2:
            # wait_for(aw, timeout) — the bound may be positional.
            return not self._is_none(node.args[1])
        return False

    def _bounded_wait_for_args(self, tree: ast.AST) -> Set[ast.AST]:
        """First arguments of every *bounded* ``asyncio.wait_for`` call.

        A zero-arg queue ``.get()`` appearing there is the event-driven
        idiom for a supervised wait (``runtime/aio.py``'s mailbox and
        conductor waits) and must not trip the unbounded-``.get()`` arm.
        """
        wrapped: Set[ast.AST] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if self._async_wait_name(node) != "wait_for":
                continue
            if node.args and self._async_wait_bounded(node, "wait_for"):
                wrapped.add(node.args[0])
        return wrapped
