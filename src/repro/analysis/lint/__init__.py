"""``repro lint`` — AST invariant linter for the repro codebase.

Seven PRs of growth accumulated load-bearing conventions that used to
live only in prose and regression tests: canonical trace digests, the
``RandomnessSource`` seam, int-normalized arithmetic boundaries,
lock-guarded lazy caches, warn-and-degrade worker paths, picklable
multiprocessing submissions.  This package turns them into
machine-checked rules (``RPR001``–``RPR006``) over the source AST.

The lint path deliberately imports nothing outside the standard library
(no ``repro.crypto``, no ``repro.runtime``), so ``repro lint`` runs on a
minimal install without gmpy2 or hypothesis.

Public surface:

* :func:`~repro.analysis.lint.engine.lint_paths` /
  :func:`~repro.analysis.lint.engine.lint_source` — run rules, get a
  :class:`~repro.analysis.lint.engine.LintReport`;
* :class:`~repro.analysis.lint.engine.Rule` +
  :func:`~repro.analysis.lint.engine.register_rule` — add a rule;
* :mod:`repro.analysis.lint.cli` — the ``repro lint`` front end.

Suppression syntax — same line or a comment line directly above::

    self._fb_calls += 1  # repro: allow[RPR004] benign racy counter

    # repro: allow[RPR002] baseline Shamir is not pool-backed
    coeffs = [rng.randrange(modulus) for _ in range(t)]
"""

from repro.analysis.lint import rules as _rules  # noqa: F401  (registers RPR001-RPR006)
from repro.analysis.lint.engine import (
    Finding,
    LintReport,
    Rule,
    Suppression,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    parse_suppressions,
    register_rule,
)

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "Suppression",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "register_rule",
]
