"""Lint engine: rule registry, suppression parsing, file walking, report.

Standard-library only by design — the ``repro lint`` CI job runs on a
minimal install (no gmpy2, no hypothesis), and the engine must never
drag the crypto/runtime stack into the interpreter just to parse ASTs.

Path scoping
------------

Rules scope themselves with fnmatch patterns over each file's *relative*
posix path (``crypto/groups.py``, ``runtime/pool.py``).  The relative
root is:

* the directory argument itself when a directory is linted (so linting
  ``src/repro`` yields ``crypto/...`` paths, and a fixture tree
  ``tmp/crypto/bad.py`` linted at ``tmp`` triggers crypto-scoped rules);
* for a bare file argument, the topmost enclosing package (walking up
  while ``__init__.py`` exists), so single-file runs see the same rule
  scoping as whole-tree runs.

A pattern matches either the whole relpath or any suffix at a directory
boundary (``crypto/*.py`` matches both ``crypto/x.py`` and
``repro/crypto/x.py``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintContext",
    "LintReport",
    "Rule",
    "Suppression",
    "all_rules",
    "default_root",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "path_matches",
    "register_rule",
]

#: ``# repro: allow[RPR004]`` / ``# repro: allow[RPR001, RPR005]``
SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\-,\s]+)\]")

#: Rule id for files the engine cannot parse (not a registered rule:
#: it cannot be deselected — an unparsable file is never clean).
PARSE_ERROR = "RPR000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A finding that an inline ``repro: allow`` comment waived."""

    rule: str
    path: str
    line: int
    message: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class LintContext:
    """Everything a rule sees for one file."""

    def __init__(self, relpath: str, source: str, tree: ast.Module) -> None:
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.id,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` (``RPRnnn``), :attr:`name` (kebab-case),
    :attr:`invariant` (the one-line contract the rule enforces) and
    :attr:`paths` (fnmatch scoping patterns, ``None`` for every file),
    and implement :meth:`check` yielding :class:`Finding` objects —
    usually via :meth:`LintContext.finding`.
    """

    id: str = ""
    name: str = ""
    invariant: str = ""
    #: fnmatch patterns over the relative posix path; ``None`` = all files.
    paths: Optional[Tuple[str, ...]] = None

    def applies_to(self, relpath: str) -> bool:
        if self.paths is None:
            return True
        return any(path_matches(relpath, pattern) for pattern in self.paths)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "name": self.name,
            "invariant": self.invariant,
            "paths": list(self.paths) if self.paths else ["**"],
        }


def path_matches(relpath: str, pattern: str) -> bool:
    """fnmatch against the relpath or any directory-boundary suffix."""
    return fnmatch(relpath, pattern) or fnmatch(relpath, "*/" + pattern)


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none registered"
        raise ValueError(f"unknown rule id {rule_id!r} (known: {known})") from None


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids allowed there.

    A ``# repro: allow[IDS]`` trailing a code line suppresses findings on
    that line; on a comment-only line it suppresses the next line (so a
    suppression can sit above a long statement).  IDS is comma-separated.
    """
    allowed: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        target = lineno + 1 if text.lstrip().startswith("#") else lineno
        allowed.setdefault(target, set()).update(ids)
    return allowed


@dataclass
class LintReport:
    """The outcome of one lint run (one or many files)."""

    root: str
    files: int
    rules: List[str]
    findings: List[Finding]
    suppressions: List[Suppression]

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "root": self.root,
            "files": self.files,
            "rules": self.rules,
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressions": [record.as_dict() for record in self.suppressions],
            "clean": self.clean,
        }


def lint_source(
    source: str,
    relpath: str,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], List[Suppression]]:
    """Lint one in-memory source blob under its scoping relpath."""
    active = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            rule=PARSE_ERROR,
            path=relpath,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"file does not parse: {exc.msg}",
        )
        return [finding], []
    ctx = LintContext(relpath=relpath, source=source, tree=tree)
    allowed = parse_suppressions(source)
    findings: List[Finding] = []
    suppressed: List[Suppression] = []
    for rule in active:
        if not rule.applies_to(relpath):
            continue
        for finding in rule.check(ctx):
            if finding.rule in allowed.get(finding.line, ()):
                suppressed.append(
                    Suppression(
                        rule=finding.rule,
                        path=finding.path,
                        line=finding.line,
                        message=finding.message,
                    )
                )
            else:
                findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    suppressed.sort(key=lambda s: (s.path, s.line, s.rule))
    return findings, suppressed


def default_root() -> Path:
    """The installed ``repro`` package directory (what ``repro lint`` checks)."""
    return Path(__file__).resolve().parents[2]


def package_root(path: Path) -> Path:
    """Topmost package dir for a file: walk up while ``__init__.py`` exists."""
    root = path.parent
    while (root.parent / "__init__.py").is_file():
        root = root.parent
    return root


def iter_python_files(root: Path) -> Iterator[Path]:
    """Every ``*.py`` under ``root``, sorted, skipping caches/hidden dirs."""
    for candidate in sorted(root.rglob("*.py")):
        parts = candidate.relative_to(root).parts
        if any(part == "__pycache__" or part.startswith(".") for part in parts):
            continue
        yield candidate


def lint_paths(
    paths: Optional[Iterable[Path]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint files/directories and aggregate a :class:`LintReport`.

    With no ``paths``, lints the installed ``repro`` package tree.
    """
    targets = [Path(p) for p in paths] if paths else [default_root()]
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    suppressions: List[Suppression] = []
    files = 0
    for target in targets:
        if target.is_dir():
            pairs = [(f, f.relative_to(target).as_posix()) for f in iter_python_files(target)]
        elif target.is_file():
            root = package_root(target)
            pairs = [(target, target.relative_to(root).as_posix())]
        else:
            raise FileNotFoundError(f"no such file or directory: {target}")
        for filepath, relpath in pairs:
            files += 1
            source = filepath.read_text(encoding="utf-8")
            file_findings, file_suppressed = lint_source(source, relpath, active)
            findings.extend(file_findings)
            suppressions.extend(file_suppressed)
    findings.sort(key=lambda f: f.sort_key)
    suppressions.sort(key=lambda s: (s.path, s.line, s.rule))
    return LintReport(
        root=", ".join(str(t) for t in targets),
        files=files,
        rules=[rule.id for rule in active],
        findings=findings,
        suppressions=suppressions,
    )
