"""The ``repro lint`` front end.

Dispatched from :func:`repro.cli.main` *before* the main parser is
built, so this path never imports the crypto/runtime stack — the CI
lint job runs it on a minimal install (no gmpy2, no hypothesis).

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.lint.engine import all_rules, get_rule, lint_paths

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST invariant linter for the repro codebase: determinism "
            "(RPR001), randomness seam (RPR002), arith normalization "
            "(RPR003), lock discipline (RPR004), worker degradation "
            "(RPR005), pickle safety (RPR006).  Suppress a finding with "
            "`# repro: allow[RPR00X] <reason>` on (or above) the line."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the full report (findings, suppressions, rules) as JSON",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (e.g. RPR001,RPR004)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and their invariants, then exit",
    )
    return parser


def resolve_rules(args: argparse.Namespace) -> List:
    """The active rule set for this invocation; raises ValueError on bad ids."""
    selected = None
    if args.rule or args.select:
        ids: List[str] = list(args.rule or [])
        if args.select:
            ids.extend(part.strip() for part in args.select.split(",") if part.strip())
        selected = [get_rule(rule_id) for rule_id in dict.fromkeys(ids)]
    rules = selected if selected is not None else all_rules()
    if args.ignore:
        dropped = {part.strip() for part in args.ignore.split(",") if part.strip()}
        for rule_id in dropped:
            get_rule(rule_id)  # validate
        rules = [rule for rule in rules if rule.id not in dropped]
    return rules


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.paths) if rule.paths else "all files"
            print(f"{rule.id}  {rule.name}  [{scope}]")
            print(f"        {rule.invariant}")
        return 0
    try:
        rules = resolve_rules(args)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    try:
        report = lint_paths(args.paths or None, rules)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        noun = "finding" if len(report.findings) == 1 else "findings"
        print(
            f"{len(report.findings)} {noun} "
            f"({len(report.suppressions)} suppressed) in {report.files} files"
        )
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
