"""Small statistics helpers for the security benchmarks.

Used to quantify attack success rates (proportions over trials) and the
uniformity of beacon outputs (E10).
"""

from __future__ import annotations

import math
from typing import Sequence


def proportion(successes: int, trials: int) -> float:
    """Success rate; 0.0 for zero trials."""
    return successes / trials if trials else 0.0


def bit_bias(values: Sequence[bytes], bit: int = 0) -> float:
    """Empirical P[selected bit == 1] over byte-string samples.

    ``bit`` counts from the most significant bit of byte 0.
    """
    if not values:
        return 0.0
    byte_index, bit_index = divmod(bit, 8)
    ones = sum(
        1 for value in values if (value[byte_index] >> (7 - bit_index)) & 1
    )
    return ones / len(values)


def uniformity_pvalue(values: Sequence[bytes], bit: int = 0) -> float:
    """Two-sided binomial-normal p-value that the selected bit is fair.

    A tiny p-value indicates bias.  Uses the normal approximation, which
    is adequate for the trial counts the benchmarks run.
    """
    n = len(values)
    if n == 0:
        return 1.0
    p_hat = bit_bias(values, bit)
    z = abs(p_hat - 0.5) / math.sqrt(0.25 / n)
    # Two-sided tail of the standard normal via erfc.
    return math.erfc(z / math.sqrt(2))
