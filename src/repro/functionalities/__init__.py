"""Ideal (hybrid) functionalities from the paper's figures.

Each module implements one figure, with the paper's command interfaces as
methods.  Honest-party interfaces take the :class:`~repro.uc.entity.Party`
machine; adversarial interfaces are prefixed ``adv_`` and enforce that the
party acted for is actually corrupted.

========================  ==============================================
Module                    Paper object
========================  ==============================================
``random_oracle``         ``FRO`` (Figure 3), programmable
``wrapper``               ``Wq(·)`` resource wrapper (Figure 5)
``certification``         ``Fcert`` (Figure 4)
``rbc``                   ``FRBC`` relaxed broadcast (Figure 6)
``ubc``                   ``FUBC`` unfair broadcast (Figure 8)
``fbc``                   ``F∆,α_FBC`` fair broadcast (Figure 10)
``tle``                   ``F leak,delay_TLE`` (Figure 7)
``sbc``                   ``FΦ,∆,α_SBC`` (Figure 13)
``durs``                  ``F∆,α_DURS`` (Figure 15)
``voting``                ``FΦ,∆,α_VS`` (Figure 17)
``keygen``                ``FPKG`` / ``FSKG`` (Section 6.2 setup)
``dummy``                 Dummy parties for ideal-world executions
========================  ==============================================
"""

from repro.functionalities.certification import Certification, RealCertification
from repro.functionalities.durs import DelayedURS
from repro.functionalities.fbc import FairBroadcast
from repro.functionalities.keygen import AuthorityKeyGen, VoterKeyGen
from repro.functionalities.random_oracle import RandomOracle
from repro.functionalities.rbc import RelaxedBroadcast
from repro.functionalities.sbc import SimultaneousBroadcast
from repro.functionalities.tle import TimeLockEncryption
from repro.functionalities.ubc import UnfairBroadcast
from repro.functionalities.voting import VotingSystem
from repro.functionalities.wrapper import QueryWrapper

__all__ = [
    "AuthorityKeyGen",
    "Certification",
    "DelayedURS",
    "FairBroadcast",
    "QueryWrapper",
    "RandomOracle",
    "RealCertification",
    "RelaxedBroadcast",
    "SimultaneousBroadcast",
    "TimeLockEncryption",
    "UnfairBroadcast",
    "VoterKeyGen",
    "VotingSystem",
]
