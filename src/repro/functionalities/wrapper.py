"""The resource-restriction wrapper ``Wq`` (paper Figure 5).

``Wq(F*RO)`` lets each party evaluate the wrapped oracle at most ``q``
times per clock round; *all corrupted parties share a single budget* (the
figure keeps one list ``Lcorr`` for the whole corrupted coalition).  This
is the resource-restricted-cryptography model of [GKO+20]: it is what
makes a difficulty-``τ`` time-lock puzzle take ``τ`` rounds to open, for
the adversary as much as for honest parties.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.uc.entity import Functionality
from repro.uc.errors import ResourceExhausted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.functionalities.random_oracle import RandomOracle
    from repro.uc.session import Session

#: Budget key used for the shared corrupted-coalition budget.
CORRUPTED_POOL = "__corrupted__"


class QueryWrapper(Functionality):
    """``Wq``: per-round metering of oracle evaluations.

    Args:
        session: Owning session.
        oracle: The wrapped random oracle (the paper's ``F*RO``).
        q: Queries allowed per party per round.
        fid: Functionality id.
    """

    def __init__(
        self,
        session: "Session",
        oracle: "RandomOracle",
        q: int,
        fid: str = "Wq",
    ) -> None:
        if q <= 0:
            raise ValueError("q must be positive")
        super().__init__(session, fid)
        self.oracle = oracle
        self.q = q
        # (budget key, round) -> queries used
        self._used: Dict[Tuple[str, int], int] = {}

    def _budget_key(self, entity_id: str) -> str:
        if self.session.is_corrupted(entity_id) or entity_id == CORRUPTED_POOL:
            return CORRUPTED_POOL
        return entity_id

    def used(self, entity_id: str) -> int:
        """Queries already used by ``entity_id``'s budget this round."""
        return self._used.get((self._budget_key(entity_id), self.time), 0)

    def remaining(self, entity_id: str) -> int:
        """Queries left in ``entity_id``'s budget this round."""
        return self.q - self.used(entity_id)

    def evaluate(self, entity_id: str, inputs: Sequence[bytes]) -> List[bytes]:
        """Evaluate the oracle on ``inputs`` — one batch = ONE query.

        Per Figure 5, a single ``Evaluate`` message may carry arbitrarily
        many points and counts once against the ``q``-per-round budget:
        the wrapper bounds the *sequential depth* of oracle use per round,
        not its parallel width.  This is exactly why building a hash-chain
        puzzle (all points independent) is one-round work while unwinding
        a ``q·τ``-link chain (each point depends on the previous response)
        takes ``τ`` rounds.

        Raises:
            ResourceExhausted: if the round's ``q`` batches are spent.
        """
        inputs = list(inputs)
        key = (self._budget_key(entity_id), self.time)
        used = self._used.get(key, 0)
        if used + 1 > self.q:
            raise ResourceExhausted(
                f"{entity_id}: batch {used + 1} > q={self.q} in round {self.time}"
            )
        self._used[key] = used + 1
        self.session.metrics.inc("ro.batches")
        self.session.metrics.inc("ro.points", len(inputs))
        return [self.oracle.query(x, querier=entity_id) for x in inputs]

    def evaluate_one(self, entity_id: str, x: bytes) -> bytes:
        """Single-query convenience wrapper around :meth:`evaluate`."""
        return self.evaluate(entity_id, [x])[0]

    def hash_fn(self, entity_id: str):
        """A metered ``bytes -> bytes`` closure for ``entity_id``."""
        return lambda x: self.evaluate_one(entity_id, x)
