"""Key-generation setup functionalities for the voting application.

The STVS protocol (paper Figure 18) assumes two setup functionalities:

* ``FPKG`` — voter key generation (eligibility): every voter gets an
  encryption key pair, with the public keys in a registry so authorities
  can address encrypted exponent shares to voters.
* ``FSKG`` — authority key generation: establishes the election's group,
  the public base ``w`` for verification keys, and a signing key per
  authority.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.crypto.elgamal import elgamal_keygen
from repro.crypto.groups import TEST_GROUP, SchnorrGroup
from repro.uc.entity import Functionality

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


class VoterKeyGen(Functionality):
    """``FPKG``: per-voter ElGamal key pairs with a public registry."""

    def __init__(
        self, session: "Session", group: SchnorrGroup = TEST_GROUP, fid: str = "FPKG"
    ) -> None:
        super().__init__(session, fid)
        self.group = group
        self._secret: Dict[str, int] = {}
        self._public: Dict[str, int] = {}

    def keygen(self, pid: str) -> Tuple[int, int]:
        """Generate (once) the key pair for ``pid``; returns (secret, public).

        The secret is returned only to its owner; other entities use
        :meth:`public_key`.  A corrupted voter's secret is part of its
        exposed state (the adversary calls this with the corrupted pid).
        """
        if pid not in self._secret:
            secret, public = elgamal_keygen(self.session.rng, self.group)
            self._secret[pid] = secret
            self._public[pid] = public
            self.record("keygen", pid)
        return self._secret[pid], self._public[pid]

    def public_key(self, pid: str) -> Optional[int]:
        """Public key of ``pid``, or ``None`` if not yet generated."""
        return self._public.get(pid)

    def registry(self) -> Dict[str, int]:
        """The full public-key registry (pid -> public key)."""
        return dict(self._public)


class AuthorityKeyGen(Functionality):
    """``FSKG``: election-wide parameters and authority keys.

    Publishes the group and a random base ``w`` used for voter
    verification keys ``w_i = w^{x_i}`` (paper Figure 18).
    """

    def __init__(
        self, session: "Session", group: SchnorrGroup = TEST_GROUP, fid: str = "FSKG"
    ) -> None:
        super().__init__(session, fid)
        self.group = group
        self.w: int = group.random_element(session.rng)
        self.record("setup", ("w", self.w % 1000))

    def parameters(self) -> Tuple[SchnorrGroup, int]:
        """The public election parameters ``(group, w)``."""
        return self.group, self.w
