"""The delayed uniform random string functionality ``F∆,α_DURS`` (Figure 15).

A single uniform λ-bit string, released to each requesting party ``∆``
rounds after the first request, and to the adversary ``α`` rounds earlier.
The CRS analogue with an explicit delay — the ideal object a distributed
randomness beacon realizes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session

URS_LEN = 32  # λ bits = 256


class DelayedURS(Functionality):
    """``FDURS``: one uniform string, delayed delivery.

    Args:
        session: Owning session.
        delta: Delay ∆ from the first request to delivery.
        alpha: Simulator advantage α, ``0 ≤ α ≤ ∆``.
    """

    def __init__(
        self, session: "Session", delta: int, alpha: int, fid: str = "FDURS"
    ) -> None:
        if not 0 <= alpha <= delta:
            raise ValueError("need 0 <= alpha <= delta")
        super().__init__(session, fid)
        self.delta = delta
        self.alpha = alpha
        self.urs: Optional[bytes] = None
        self.t_start: Optional[int] = None
        self._waiting: Set[str] = set()
        self._served: Set[str] = set()

    def _ensure_sampled(self) -> None:
        if self.urs is None:
            self.urs = self.session.random_bytes(URS_LEN)

    # -- requests -----------------------------------------------------------

    def request(self, party: Party) -> Optional[bytes]:
        """``URS`` request from an honest party.

        Returns the string immediately if ``∆`` rounds have already
        elapsed since the first request, otherwise registers the party to
        receive it at ``tstart + ∆``.
        """
        if party.corrupted:
            raise ValueError("honest interface used by corrupted party")
        self._ensure_sampled()
        now = self.time
        self._waiting.add(party.pid)
        if self.t_start is None:
            self.t_start = now
            self.leak(("Start", party.pid))
        if now >= self.t_start + self.delta:
            self._served.add(party.pid)
            return self.urs
        return None

    def adv_request(self) -> Optional[bytes]:
        """``URS`` request from the adversary (advantage α)."""
        self._ensure_sampled()
        now = self.time
        if self.t_start is None:
            self.t_start = now
            self.leak(("Start", "S"))
        if now >= self.t_start + self.delta - self.alpha:
            return self.urs
        return None

    # -- clock ---------------------------------------------------------------

    def on_party_tick(self, party: Party) -> None:
        """Deliver to waiting parties ticking in round ``tstart + ∆``."""
        if self.t_start is None:
            return
        if (
            self.time == self.t_start + self.delta
            and party.pid in self._waiting
            and party.pid not in self._served
        ):
            self._served.add(party.pid)
            self.deliver(party, ("URS", self.urs))
