"""The relaxed broadcast functionality ``FRBC`` (paper Figure 6).

One instance carries a *single* message.  Agreement is guaranteed; validity
only if the sender stays honest through its round ("weak validity" of
[GKKZ11]).  The adversary may:

* broadcast on behalf of an initially-corrupted sender (immediate delivery);
* replace the message of a sender corrupted *after* it requested the
  broadcast, via ``Allow`` — the unfairness that distinguishes this layer
  from fair broadcast.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


class RelaxedBroadcast(Functionality):
    """``FRBC``: single-shot relaxed broadcast.

    Attributes:
        output: The recorded message (``None`` until a broadcast request).
        sender: The recorded sender pid.
        halted: Whether delivery has happened (the instance is spent).
    """

    def __init__(
        self, session: "Session", fid: str, via: Optional[Functionality] = None
    ) -> None:
        super().__init__(session, fid)
        self.output: Optional[Any] = None
        self.sender: Optional[str] = None
        self.halted = False
        self.delivered: Optional[Any] = None
        #: When part of a larger protocol (ΠUBC), deliveries are attributed
        #: to the enclosing adapter so receivers can route by layer.
        self.via = via

    # -- honest interface -------------------------------------------------

    def broadcast(self, party: Party, message: Any) -> None:
        """``(sid, Broadcast, M)`` from an honest sender.

        Records the output/sender pair and leaks the message to the
        adversary.  Delivery happens on the sender's ``Advance_Clock``.
        """
        if party.corrupted or self.halted or self.sender is not None:
            return
        self.output = message
        self.sender = party.pid
        self.leak(("Broadcast", message, party.pid))

    # -- adversarial interface -----------------------------------------------

    def adv_broadcast(self, pid: str, message: Any) -> None:
        """Broadcast from an initially-corrupted sender: immediate delivery."""
        self.require_corrupted(pid)
        if self.halted or self.sender is not None:
            return
        self.sender = pid
        self._finish(message)

    def adv_allow(self, message: Any) -> None:
        """``(sid, Allow, M~)``: replace and deliver, if sender is corrupted.

        Ignored while the sender is honest (the figure's last clause).
        """
        if self.halted or self.sender is None:
            return
        if not self.session.is_corrupted(self.sender):
            return
        self._finish(message)

    # -- clock ---------------------------------------------------------------

    def on_party_tick(self, party: Party) -> None:
        """Sender completing its round forces delivery of the recorded value."""
        if self.halted or party.pid != self.sender:
            return
        self._finish(self.output)

    # -- internals -------------------------------------------------------------

    def _finish(self, message: Any) -> None:
        self.halted = True
        self.delivered = message
        payload = ("Broadcast", message, self.sender)
        self.leak(payload)
        (self.via or self).deliver_all(payload)
