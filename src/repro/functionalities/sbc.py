"""The simultaneous broadcast functionality ``FΦ,∆,α_SBC`` (paper Figure 13).

The first ``Broadcast`` request opens a broadcast period of ``Φ`` rounds;
requests outside it are discarded.  Honest senders' requests leak only
``0^{|M|}`` — *simultaneity*: the adversary commits its own messages
without information about honest ones.  At the period's end honest pending
messages are finalized (flag 1) and the batch is sorted; the adversary sees
the batch at ``tend + ∆ − α`` and each party receives it on its tick at
``tend + ∆`` — *liveness*: termination does not require full participation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.uc.encoding import encode, sort_key
from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


@dataclass
class _SBCRecord:
    tag: bytes
    message: Any
    sender: str
    requested_at: int
    final: bool  # the figure's 5th coordinate (0 = replaceable, 1 = final)


class SimultaneousBroadcast(Functionality):
    """``FSBC``: broadcast period Φ, delivery delay ∆, simulator advantage α.

    Args:
        session: Owning session.
        phi: Broadcast period length Φ (rounds).
        delta: Delivery delay ∆ after the period ends.
        alpha: Simulator advantage α, ``0 ≤ α ≤ ∆``.
    """

    def __init__(
        self, session: "Session", phi: int, delta: int, alpha: int, fid: str = "FSBC"
    ) -> None:
        if phi <= 0:
            raise ValueError("phi must be positive")
        if not 0 <= alpha <= delta:
            raise ValueError("need 0 <= alpha <= delta")
        super().__init__(session, fid)
        self.phi = phi
        self.delta = delta
        self.alpha = alpha
        self.t_start: Optional[int] = None
        self.t_end: Optional[int] = None
        self._records: List[_SBCRecord] = []
        self._finalized = False
        self._adv_informed = False
        self._rounds_seen = set()
        self._delivered_to = set()

    # -- broadcast requests ----------------------------------------------------

    def broadcast(self, party: Party, message: Any) -> Optional[bytes]:
        """Honest broadcast request; leaks only the message *length*."""
        if party.corrupted:
            raise ValueError("honest interface used by corrupted party")
        return self._record_request(message, party.pid, honest=True)

    def adv_broadcast(self, pid: str, message: Any) -> Optional[bytes]:
        """Broadcast request on behalf of corrupted ``pid`` (leaks M to S)."""
        self.require_corrupted(pid)
        return self._record_request(message, pid, honest=False)

    def _record_request(self, message: Any, sender: str, honest: bool) -> Optional[bytes]:
        now = self.time
        if self.t_start is None:
            self.t_start = now
            self.t_end = now + self.phi
            self.record("period", (self.t_start, self.t_end))
        if not (self.t_start <= now < self.t_end):
            # Outside the broadcast period: discarded.
            return None
        tag = self.session.fresh_tag()
        self._records.append(
            _SBCRecord(
                tag=tag,
                message=message,
                sender=sender,
                requested_at=now,
                final=not honest,
            )
        )
        if honest:
            self.leak(("Sender", tag, ("len", len(encode(message))), sender))
        else:
            self.leak(("Sender", tag, message, sender))
        return tag

    # -- adversarial interface --------------------------------------------------

    def adv_corruption_request(self) -> List[Tuple[bytes, Any, str, int]]:
        """Pending (flag-0) records of corrupted senders."""
        return [
            (r.tag, r.message, r.sender, r.requested_at)
            for r in self._records
            if self.session.is_corrupted(r.sender) and not r.final
        ]

    def adv_allow(self, tag: bytes, message: Any, pid: str) -> bool:
        """Replace a corrupted sender's non-final message, within the period."""
        now = self.time
        if self.t_start is None or not (self.t_start <= now < self.t_end):
            return False
        for record in self._records:
            if record.tag == tag and record.sender == pid and not record.final:
                if not self.session.is_corrupted(pid):
                    return False
                record.message = message
                record.final = True
                self.record("allow", (tag, pid))
                return True
        return False

    # -- clock --------------------------------------------------------------------

    def on_party_tick(self, party: Party) -> None:
        """Period finalization, adversary preview, and per-party delivery."""
        now = self.time
        if self.t_end is None:
            return
        if now not in self._rounds_seen:
            self._rounds_seen.add(now)
            if now == self.t_end and not self._finalized:
                self._finalize()
            if now == self.t_end + self.delta - self.alpha and not self._adv_informed:
                self._adv_informed = True
                batch = [
                    (record.tag, record.message)
                    for record in self._records
                    if record.final
                ]
                self.leak(("Broadcast", batch))
        if now == self.t_end + self.delta and party.pid not in self._delivered_to:
            self._delivered_to.add(party.pid)
            messages = [record.message for record in self._records if record.final]
            self.deliver(party, ("Broadcast", messages))

    def _finalize(self) -> None:
        self._finalized = True
        for record in self._records:
            # Messages of senders still honest at tend are guaranteed out.
            if not self.session.is_corrupted(record.sender):
                record.final = True
        self._records.sort(key=lambda record: sort_key(record.message))
        self.record("finalized", sum(1 for r in self._records if r.final))
