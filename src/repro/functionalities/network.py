"""Synchronous authenticated point-to-point channels.

The paper's base communication model (Section 2.1): synchronous
point-to-point communication, messages sent in round ``r`` are delivered
at the start of round ``r+1``.  The adversary is *rushing*: it observes
every send immediately (leak) and may, for corrupted senders, inject
messages of its own.  Channels are authenticated — the recipient learns
the true sender identity — which is the standard PKI-backed assumption
Dolev–Strong builds on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


class SyncNetwork(Functionality):
    """Round-synchronous authenticated channels with next-round delivery.

    Queued messages live in the session's
    :class:`~repro.runtime.scheduler.BatchScheduler` under this
    functionality's fid; the round-advance hook drains them as one batch
    (global FIFO under the default backend, grouped per recipient under
    the ``batched`` backend).
    """

    def __init__(self, session: "Session", fid: str = "Net") -> None:
        super().__init__(session, fid)

    # -- sending -----------------------------------------------------------

    def send(self, party: Party, recipient: str, payload: Any) -> None:
        """Send ``payload`` to ``recipient``, delivered next round."""
        self._enqueue(party.pid, recipient, payload)

    def send_all(self, party: Party, payload: Any) -> None:
        """Send ``payload`` to every party (including self, for uniformity)."""
        for pid in self.session.parties:
            self._enqueue(party.pid, pid, payload)

    def adv_send(self, pid: str, recipient: str, payload: Any) -> None:
        """Inject a message from corrupted sender ``pid``."""
        self.require_corrupted(pid)
        self._enqueue(pid, recipient, payload)

    def _enqueue(self, sender: str, recipient: str, payload: Any) -> None:
        self.session.scheduler.enqueue(self.fid, recipient, (sender, payload))
        self.session.metrics.count_message("p2p")
        # Rushing adversary: sees traffic *metadata* the moment it is sent.
        # Channels are secure (authenticated + private): content reaches
        # the adversary only for corrupted recipients, via delivery.
        self.leak(("Sent", sender, recipient))

    # -- queries ------------------------------------------------------------

    def pending(self) -> int:
        """Messages queued for delivery at the next round advance."""
        return self.session.scheduler.pending(self.fid)

    # -- delivery ------------------------------------------------------------

    def on_round_advanced(self, new_time: int) -> None:
        """Deliver last round's queue in one batch (FIFO per recipient)."""
        parties = self.session.parties
        for recipient, (sender, payload) in self.session.scheduler.drain(self.fid):
            party = parties.get(recipient)
            if party is None:
                continue
            self.deliver(party, ("P2P", payload, sender))
