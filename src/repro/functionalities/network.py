"""Synchronous authenticated point-to-point channels.

The paper's base communication model (Section 2.1): synchronous
point-to-point communication, messages sent in round ``r`` are delivered
at the start of round ``r+1``.  The adversary is *rushing*: it observes
every send immediately (leak) and may, for corrupted senders, inject
messages of its own.  Channels are authenticated — the recipient learns
the true sender identity — which is the standard PKI-backed assumption
Dolev–Strong builds on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Tuple

from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


class SyncNetwork(Functionality):
    """Round-synchronous authenticated channels with next-round delivery."""

    def __init__(self, session: "Session", fid: str = "Net") -> None:
        super().__init__(session, fid)
        # messages queued for delivery when the round advances
        self._queue: List[Tuple[str, str, Any]] = []  # (sender, recipient, payload)

    # -- sending -----------------------------------------------------------

    def send(self, party: Party, recipient: str, payload: Any) -> None:
        """Send ``payload`` to ``recipient``, delivered next round."""
        self._enqueue(party.pid, recipient, payload)

    def send_all(self, party: Party, payload: Any) -> None:
        """Send ``payload`` to every party (including self, for uniformity)."""
        for pid in self.session.parties:
            self._enqueue(party.pid, pid, payload)

    def adv_send(self, pid: str, recipient: str, payload: Any) -> None:
        """Inject a message from corrupted sender ``pid``."""
        self.require_corrupted(pid)
        self._enqueue(pid, recipient, payload)

    def _enqueue(self, sender: str, recipient: str, payload: Any) -> None:
        self._queue.append((sender, recipient, payload))
        self.session.metrics.count_message("p2p")
        # Rushing adversary: sees traffic *metadata* the moment it is sent.
        # Channels are secure (authenticated + private): content reaches
        # the adversary only for corrupted recipients, via delivery.
        self.leak(("Sent", sender, recipient))

    # -- delivery ------------------------------------------------------------

    def on_round_advanced(self, new_time: int) -> None:
        """Deliver last round's queue (FIFO per recipient)."""
        queue, self._queue = self._queue, []
        for sender, recipient, payload in queue:
            party = self.session.parties.get(recipient)
            if party is None:
                continue
            self.deliver(party, ("P2P", payload, sender))
