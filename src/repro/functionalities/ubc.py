"""The unfair broadcast functionality ``FUBC`` (paper Figure 8).

Multiple senders, many messages per round.  *Unfair* because the adversary
(a) sees each honest sender's message before delivery, and (b) if it
manages to corrupt the sender before the sender's ``Advance_Clock``, it may
replace the message via ``Allow``.  Agreement still holds: whatever is
delivered is delivered to everyone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


class UnfairBroadcast(Functionality):
    """``FUBC``: concurrent multi-sender unfair broadcast."""

    def __init__(self, session: "Session", fid: str = "FUBC") -> None:
        super().__init__(session, fid)
        # tag -> (message, sender pid), insertion-ordered
        self._pending: Dict[bytes, Tuple[Any, str]] = {}

    # -- honest interface ----------------------------------------------------

    def broadcast(self, party: Party, message: Any) -> bytes:
        """``Broadcast`` request from honest ``party``; returns the tag.

        The full message is leaked to the adversary immediately — this is
        the defining unfairness of the layer.
        """
        if party.corrupted:
            raise ValueError("honest interface used by corrupted party")
        tag = self.session.fresh_tag()
        self._pending[tag] = (message, party.pid)
        self.leak(("Broadcast", tag, message, party.pid))
        return tag

    # -- adversarial interface ---------------------------------------------------

    def adv_broadcast(self, pid: str, message: Any) -> None:
        """Broadcast on behalf of corrupted ``pid``: immediate delivery."""
        self.require_corrupted(pid)
        self._deliver(message, pid)

    def adv_allow(self, tag: bytes, message: Any) -> None:
        """Replace the pending message under ``tag`` (sender now corrupted).

        Silently ignored unless the tag is pending *and* its sender is
        corrupted — the functionality never lets the adversary touch a
        still-honest sender's pending message.
        """
        entry = self._pending.get(tag)
        if entry is None:
            return
        _, sender = entry
        if not self.session.is_corrupted(sender):
            return
        del self._pending[tag]
        self._deliver(message, sender)

    # -- clock ----------------------------------------------------------------

    def on_party_tick(self, party: Party) -> None:
        """Flush the ticking party's pending messages to everyone."""
        flush = [
            (tag, message)
            for tag, (message, sender) in self._pending.items()
            if sender == party.pid
        ]
        for tag, message in flush:
            del self._pending[tag]
            self._deliver(message, party.pid)

    # -- queries ----------------------------------------------------------------

    def pending_of(self, pid: str) -> List[Any]:
        """Messages currently pending for sender ``pid`` (test helper)."""
        return [m for m, sender in self._pending.values() if sender == pid]

    # -- internals -----------------------------------------------------------------

    def _deliver(self, message: Any, sender: str) -> None:
        self.record("ubc_deliver", (sender, message))
        self.leak(("Delivered", message, sender))
        self.deliver_all(("Broadcast", message, sender))
