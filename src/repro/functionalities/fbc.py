"""The fair broadcast functionality ``F∆,α_FBC`` (paper Figure 10).

Fairness: the adversary learns only a handle (tag + sender) when an honest
party requests a broadcast.  After ``∆ − α`` rounds it may obtain the value
(``Output_Request``) — but at that instant the value becomes *locked*:
corrupting the sender no longer permits replacement.  Replacement via
``Allow`` is possible only for corrupted senders whose value is not yet
locked.  Parties receive each message exactly ``∆`` rounds after the
request, sorted lexicographically within the delivery batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.uc.encoding import sort_key
from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


@dataclass
class _Record:
    tag: bytes
    message: Any
    sender: str
    requested_at: int
    locked: bool = False
    delivered_to: set = field(default_factory=set)


class FairBroadcast(Functionality):
    """``F∆,α_FBC``: multi-shot fair broadcast with delay ∆ and advantage α.

    Args:
        session: Owning session.
        delta: Delivery delay ∆ (rounds from request to party delivery).
        alpha: Simulator advantage α (adversary may read the value
            ``∆ − α`` rounds after the request). Requires ``0 ≤ α ≤ ∆``.
    """

    def __init__(
        self, session: "Session", delta: int, alpha: int, fid: str = "FFBC"
    ) -> None:
        if not 0 <= alpha <= delta:
            raise ValueError("need 0 <= alpha <= delta")
        super().__init__(session, fid)
        self.delta = delta
        self.alpha = alpha
        self._records: Dict[bytes, _Record] = {}

    # -- broadcast requests ---------------------------------------------------

    def broadcast(self, party: Party, message: Any) -> bytes:
        """Broadcast request from an honest party; leaks only (tag, sender)."""
        if party.corrupted:
            raise ValueError("honest interface used by corrupted party")
        return self._record_request(message, party.pid)

    def adv_broadcast(self, pid: str, message: Any) -> bytes:
        """Broadcast request on behalf of a corrupted party."""
        self.require_corrupted(pid)
        return self._record_request(message, pid)

    def _record_request(self, message: Any, sender: str) -> bytes:
        tag = self.session.fresh_tag()
        self._records[tag] = _Record(
            tag=tag, message=message, sender=sender, requested_at=self.time
        )
        self.leak(("Broadcast", tag, sender))
        return tag

    # -- adversarial interface ------------------------------------------------------

    def adv_output_request(self, tag: bytes) -> Optional[Any]:
        """``Output_Request``: reveal-and-lock, only at time ``∆ − α``.

        Returns the (now locked) message, or ``None`` if the tag is
        unknown, already locked, or the timing condition fails.
        """
        record = self._records.get(tag)
        if record is None or record.locked:
            return None
        if self.time - record.requested_at != self.delta - self.alpha:
            return None
        record.locked = True
        self.record("lock", (tag, record.sender))
        return (tag, record.message, record.sender, record.requested_at)

    def adv_corruption_request(self) -> List[Any]:
        """Pending (unlocked) records of corrupted senders."""
        return [
            (r.tag, r.message, r.sender, r.requested_at)
            for r in self._records.values()
            if self.session.is_corrupted(r.sender) and not r.locked
        ]

    def adv_allow(self, tag: bytes, message: Any, pid: str) -> bool:
        """Replace an *unlocked* pending message of corrupted sender ``pid``.

        Returns True on success (``Allow_OK``).  Locked messages and honest
        senders' messages are untouchable — this is the fairness guarantee.
        """
        record = self._records.get(tag)
        if record is None or record.sender != pid:
            return False
        if not self.session.is_corrupted(pid):
            return False
        if record.locked:
            return False
        record.message = message
        record.locked = True
        self.record("allow", (tag, pid))
        return True

    # -- clock -------------------------------------------------------------------

    def on_party_tick(self, party: Party) -> None:
        """Deliver every record aged exactly ``∆`` to the ticking party."""
        due = [
            record
            for record in self._records.values()
            if self.time - record.requested_at == self.delta
            and party.pid not in record.delivered_to
        ]
        due.sort(key=lambda record: sort_key(record.message))
        for record in due:
            record.delivered_to.add(party.pid)
            self.deliver(party, ("Broadcast", record.message))
