"""Dummy parties for ideal-world executions.

In the ideal world, parties are dummies: they forward inputs to the ideal
functionality and forward its outputs to the environment.  One dummy class
per functionality family keeps the input interfaces named like the paper's
commands, so environment scripts read identically against the ideal world
and the real protocol machines (which deliberately share method names).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.functionalities.durs import DelayedURS
    from repro.functionalities.fbc import FairBroadcast
    from repro.functionalities.sbc import SimultaneousBroadcast
    from repro.functionalities.tle import TimeLockEncryption
    from repro.functionalities.ubc import UnfairBroadcast
    from repro.functionalities.voting import VotingSystem
    from repro.uc.session import Session


class DummyParty(Party):
    """Base dummy: forwards every delivery straight to Z."""

    def __init__(self, session: "Session", pid: str, functionality: Functionality) -> None:
        super().__init__(session, pid)
        self.functionality = functionality
        self.clock_recipients = [functionality]

    def on_deliver(self, message: Any, source: Functionality) -> None:
        if source.fid == self.functionality.fid:
            self.output(message)
        else:
            # Deliveries from lower layers belong to the protocol adapters
            # wired through the routing table.
            super().on_deliver(message, source)


class DummyBroadcastParty(DummyParty):
    """Dummy for FUBC / FFBC / FSBC: ``broadcast(M)`` input."""

    def broadcast(self, message: Any) -> Optional[bytes]:
        """Forward a ``Broadcast`` input to the ideal functionality."""
        return self.functionality.broadcast(self, message)


class DummyTLEParty(DummyParty):
    """Dummy for FTLE: Enc / Retrieve / Dec inputs."""

    def enc(self, message: Any, tau: int) -> str:
        """Forward an ``Enc`` input."""
        return self.functionality.enc(self, message, tau)

    def retrieve(self):
        """Forward a ``Retrieve`` input; the response goes to Z."""
        result = self.functionality.retrieve(self)
        self.output(("Encrypted", result))
        return result

    def dec(self, ciphertext: Any, tau: int) -> Any:
        """Forward a ``Dec`` input; the response goes to Z."""
        result = self.functionality.dec(self, ciphertext, tau)
        self.output(("Dec", ciphertext, tau, result))
        return result


class DummyURSParty(DummyParty):
    """Dummy for FDURS: ``urs_request()`` input."""

    def __init__(self, session: "Session", pid: str, functionality: Functionality) -> None:
        super().__init__(session, pid, functionality)
        self.waiting = False

    def urs_request(self) -> Optional[bytes]:
        """Forward a ``URS`` request; immediate responses go to Z too."""
        self.waiting = True
        result = self.functionality.request(self)
        if result is not None:
            self.output(("URS", result))
        return result


class DummyVoterParty(DummyParty):
    """Dummy for FVS: ``vote(v)`` input."""

    def vote(self, value: Any) -> Optional[bytes]:
        """Forward a ``Vote`` input."""
        return self.functionality.vote(self, value)
