"""The voting system functionality ``FΦ,∆,α_VS`` (paper Figure 17).

Szepieniec–Preneel's functionality adapted to the global-clock model and
adaptive corruption.  It differs from ``FSBC`` only in that the cast
ballots are not forwarded — the *tally* is.  Fairness is structural: no
result exists before ``ttally − α``, and only the adversary sees it that
early.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


def plurality_tally(votes: Sequence[Any]) -> dict:
    """Default tallying function: vote counts per candidate."""
    return dict(Counter(votes))


@dataclass
class _CastRecord:
    tag: bytes
    vote: Any
    voter: str
    cast_at: int
    final: bool


class VotingSystem(Functionality):
    """``FVS``: casting period Φ, tally delay ∆, simulator advantage α.

    Args:
        session: Owning session.
        phi: Casting-period length Φ.
        delta: Delay ∆ from the period's end to the tally release.
        alpha: Simulator advantage α, ``0 ≤ α ≤ ∆``.
        valid_votes: Allowed vote values (validity check).
        tally_fn: Tallying function over the final vote list.
        quota: Votes counted per voter (most recent kept), default 1.
    """

    def __init__(
        self,
        session: "Session",
        phi: int,
        delta: int,
        alpha: int,
        valid_votes: Sequence[Any] = (0, 1),
        tally_fn: Callable[[Sequence[Any]], Any] = plurality_tally,
        quota: int = 1,
        fid: str = "FVS",
    ) -> None:
        if phi <= 0 or quota <= 0:
            raise ValueError("phi and quota must be positive")
        if not 0 <= alpha <= delta:
            raise ValueError("need 0 <= alpha <= delta")
        super().__init__(session, fid)
        self.phi = phi
        self.delta = delta
        self.alpha = alpha
        self.valid_votes = list(valid_votes)
        self.tally_fn = tally_fn
        self.quota = quota
        self.t_start_cast: Optional[int] = None
        self.t_end_cast: Optional[int] = None
        self.t_tally: Optional[int] = None
        self.result: Optional[Any] = None
        self._cast: List[_CastRecord] = []
        self._delivered_to = set()

    # -- election lifecycle --------------------------------------------------

    def init(self) -> None:
        """``Init`` from the (last) authority: open the casting period."""
        if self.t_start_cast is not None:
            return
        self.t_start_cast = self.time
        self.t_end_cast = self.t_start_cast + self.phi
        self.t_tally = self.t_end_cast + self.delta
        self.record("init", (self.t_start_cast, self.t_end_cast, self.t_tally))

    # -- voting -----------------------------------------------------------------

    def vote(self, party: Party, vote: Any) -> Optional[bytes]:
        """Honest vote; leaks only (tag, voter), never the vote value."""
        if party.corrupted:
            raise ValueError("honest interface used by corrupted party")
        return self._record_vote(vote, party.pid, honest=True)

    def adv_vote(self, pid: str, vote: Any) -> Optional[bytes]:
        """Vote on behalf of a corrupted voter."""
        self.require_corrupted(pid)
        return self._record_vote(vote, pid, honest=False)

    def _record_vote(self, vote: Any, voter: str, honest: bool) -> Optional[bytes]:
        now = self.time
        if self.t_start_cast is None or not (self.t_start_cast <= now < self.t_end_cast):
            return None
        if vote not in self.valid_votes:
            return None
        tag = self.session.fresh_tag()
        self._cast.append(
            _CastRecord(tag=tag, vote=vote, voter=voter, cast_at=now, final=not honest)
        )
        if honest:
            self.leak(("Vote", tag, voter))
        else:
            self.leak(("Vote", tag, vote, voter))
        return tag

    # -- adversarial interface ------------------------------------------------------

    def adv_corruption_request(self) -> List[Any]:
        """Pending (non-final) votes of corrupted voters."""
        return [
            (r.tag, r.vote, r.voter, r.cast_at)
            for r in self._cast
            if self.session.is_corrupted(r.voter) and not r.final
        ]

    def adv_allow(self, tag: bytes, vote: Any, pid: str) -> bool:
        """Replace a corrupted voter's non-final vote (validity-checked)."""
        now = self.time
        if self.t_start_cast is None or not (self.t_start_cast <= now < self.t_end_cast):
            return False
        if vote not in self.valid_votes:
            return False
        for record in self._cast:
            if record.tag == tag and record.voter == pid and not record.final:
                if not self.session.is_corrupted(pid):
                    return False
                record.vote = vote
                record.final = True
                return True
        return False

    # -- clock ------------------------------------------------------------------------

    def on_party_tick(self, party: Party) -> None:
        """Compute the tally at ``ttally − α``; release it at ``ttally``."""
        if self.t_tally is None:
            return
        now = self.time
        if now == self.t_tally - self.alpha and self.result is None:
            for record in self._cast:
                if not self.session.is_corrupted(record.voter):
                    record.final = True
            self.result = self.tally_fn(self._final_votes())
            self.leak(("Result", self.result))
        if now >= self.t_tally and self.result is not None:
            if party.pid not in self._delivered_to:
                self._delivered_to.add(party.pid)
                self.deliver(party, ("Result", self.result))

    def _final_votes(self) -> List[Any]:
        per_voter: dict = {}
        for record in self._cast:
            if record.final:
                per_voter.setdefault(record.voter, []).append(record)
        votes: List[Any] = []
        for records in per_voter.values():
            records.sort(key=lambda r: r.cast_at)
            votes.extend(record.vote for record in records[-self.quota :])
        return votes
