"""Bridging real signatures into the per-signer ``Fcert`` interface.

Dolev–Strong machines talk to one certification object per signer
(``sign``/``verify``).  :class:`SignerCert` exposes that interface backed
by a shared :class:`~repro.functionalities.certification.
RealCertification` (Schnorr signatures + CA registry), so the broadcast
layer can run over *computational* signatures instead of the ideal box —
the last substitution between the paper's model and a deployable stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.functionalities.certification import RealCertification
from repro.uc.entity import Functionality
from repro.uc.errors import CorruptionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crypto.batch import BatchItem
    from repro.uc.session import Session


class SignerCert(Functionality):
    """Per-signer facade over a shared :class:`RealCertification`.

    Implements the same ``sign(pid, message)`` / ``verify(message,
    signature)`` surface as the ideal
    :class:`~repro.functionalities.certification.Certification`, with
    signatures encoded as byte strings so they slot into existing
    signature-chain code unchanged.
    """

    def __init__(self, session: "Session", authority: RealCertification, signer: str) -> None:
        super().__init__(session, f"{authority.fid}:{signer}")
        self.authority = authority
        self.signer = signer
        authority.ensure_key(signer)

    @staticmethod
    def _encode(signature: Tuple[int, int]) -> bytes:
        r, s = signature
        return r.to_bytes(64, "big") + s.to_bytes(64, "big")

    @staticmethod
    def _decode(raw: bytes) -> Tuple[int, int]:
        return int.from_bytes(raw[:64], "big"), int.from_bytes(raw[64:], "big")

    def sign(self, pid: str, message: bytes) -> bytes:
        """Sign as the designated signer.

        Raises:
            CorruptionError: if someone else's pid is supplied.
        """
        if pid != self.signer:
            raise CorruptionError(f"{pid} is not the signer of {self.fid}")
        return self._encode(self.authority.sign(self.signer, message))

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify against the signer's certified Schnorr key."""
        if len(signature) != 128:
            return False
        return self.authority.verify(self.signer, message, self._decode(signature))

    def batch_verify_item(self, message: bytes, signature: bytes) -> "BatchItem":
        """This certificate check as a :class:`~repro.crypto.batch.BatchItem`.

        Lets a round collect many certificate checks (possibly mixed with
        ballot-proof items) into one
        :func:`~repro.crypto.batch.verify_batch` call.  Counts the same
        ``verify`` metric as :meth:`verify` so batched rounds report
        identical signature counters, and yields the same verdict:
        malformed encodings resolve to an immediate False, everything
        else carries the Schnorr equation against the signer's key.
        """
        from repro.crypto.batch import BatchItem
        from repro.crypto.schnorr import SchnorrSignature, schnorr_batch_item

        self.session.metrics.count_signature("verify")
        if len(signature) != 128:
            return BatchItem(bases=(), equations=(), check=lambda: False)
        r, s = self._decode(signature)
        keypair = self.authority.ensure_key(self.signer)
        return schnorr_batch_item(
            keypair.group, keypair.public, message, SchnorrSignature(r=r, s=s)
        )


def real_cert_suite(
    session: "Session", pids, fid: str = "RealCert"
) -> Dict[str, SignerCert]:
    """One shared CA, one :class:`SignerCert` per party."""
    authority = RealCertification(session, fid=fid)
    return {pid: SignerCert(session, authority, pid) for pid in pids}
