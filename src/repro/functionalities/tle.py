"""The time-lock encryption functionality ``F leak,delay_TLE`` (paper Figure 7).

Parameterized by a leakage function ``leak(Cl)`` — the adversary can read
every plaintext whose decryption time is at most ``leak(Cl)`` (its timing
advantage) — and a ``delay`` for ciphertext generation.

With a passive adversary the functionality plays both roles: if the
simulator never supplies ciphertexts via ``Update``, ``Retrieve`` assigns
fresh random strings as ciphertexts, exactly as the figure's step 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from repro.uc.entity import Functionality, Party

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session

#: Sentinel responses of the Dec interface (paper Figure 7).
MORE_TIME = "More_Time"
INVALID_TIME = "Invalid_Time"
BOTTOM = "Bottom"

#: Byte length of the random strings standing in for ciphertexts (p'(λ)).
CIPHERTEXT_LEN = 48


@dataclass
class _TLERecord:
    message: Any
    ciphertext: Optional[bytes]
    tau: int
    tag: Optional[bytes]
    recorded_at: int
    owner: Optional[str]


class TimeLockEncryption(Functionality):
    """``FTLE``: ideal time-lock encryption.

    Args:
        session: Owning session.
        leak: The leakage function over clock values; default
            ``Cl + 1`` (the instantiation of Fact 2).
        delay: Ciphertext-generation delay in rounds.
    """

    def __init__(
        self,
        session: "Session",
        leak: Optional[Callable[[int], int]] = None,
        delay: int = 1,
        fid: str = "FTLE",
    ) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        super().__init__(session, fid)
        self.leak_fn = leak if leak is not None else (lambda cl: cl + 1)
        self.delay = delay
        self._records: List[_TLERecord] = []

    # -- honest interface ------------------------------------------------------

    def enc(self, party: Party, message: Any, tau: int) -> str:
        """``Enc`` request: record and acknowledge (ciphertext comes later).

        Returns ``"Encrypting"`` on success, :data:`BOTTOM` for ``tau < 0``.
        """
        if party.corrupted:
            raise ValueError("honest interface used by corrupted party")
        if tau < 0:
            return BOTTOM
        tag = self.session.fresh_tag()
        self._records.append(
            _TLERecord(
                message=message,
                ciphertext=None,
                tau=tau,
                tag=tag,
                recorded_at=self.time,
                owner=party.pid,
            )
        )
        self.leak(("Enc", tau, tag, self.time, ("len", _size_of(message)), party.pid))
        return "Encrypting"

    def retrieve(self, party: Party) -> List[Tuple[Any, bytes, int]]:
        """``Retrieve``: the party's matured (message, ciphertext, τ) triples.

        Ciphertexts not supplied by the adversary are sampled uniformly —
        an ideal TLE ciphertext carries no information.
        """
        now = self.time
        ready: List[Tuple[Any, bytes, int]] = []
        for record in self._records:
            if record.owner != party.pid:
                continue
            if now - record.recorded_at < self.delay:
                continue
            if record.ciphertext is None:
                record.ciphertext = self.session.random_bytes(CIPHERTEXT_LEN)
            ready.append((record.message, record.ciphertext, record.tau))
        return ready

    def dec(self, party: Party, ciphertext: Any, tau: int) -> Any:
        """``Dec`` request, following Figure 7's decision tree.

        Returns the message, or one of :data:`MORE_TIME`,
        :data:`INVALID_TIME`, :data:`BOTTOM`.
        """
        if party.corrupted:
            raise ValueError("honest interface used by corrupted party")
        if ciphertext is None:
            return BOTTOM
        if tau < 0:
            return BOTTOM
        now = self.time
        if now < tau:
            return MORE_TIME
        matches = [
            record
            for record in self._records
            if record.ciphertext == ciphertext
        ]
        # Conflicting records: two different messages behind one ciphertext
        # whose decryption times have both passed — refuse (Figure 7).
        for i, first in enumerate(matches):
            for second in matches[i + 1 :]:
                if (
                    _freeze(first.message) != _freeze(second.message)
                    and tau >= max(first.tau, second.tau)
                ):
                    return BOTTOM
        if not matches:
            # Unknown ciphertext: the adversary explains it (or refuses).
            message = self.session.adversary.on_dec_request(self, ciphertext, tau)
            self._records.append(
                _TLERecord(
                    message=message,
                    ciphertext=ciphertext,
                    tau=tau,
                    tag=None,
                    recorded_at=0,
                    owner=None,
                )
            )
            return message if message is not None else BOTTOM
        record = matches[0]
        if tau >= record.tau:
            return record.message
        if now < record.tau:
            return MORE_TIME
        return INVALID_TIME

    # -- adversarial interface ----------------------------------------------------

    def adv_update(self, pairs: List[Tuple[bytes, bytes]]) -> None:
        """``Update``: the simulator supplies ciphertexts for recorded tags."""
        by_tag = {record.tag: record for record in self._records if record.tag}
        for ciphertext, tag in pairs:
            if ciphertext is None:
                continue
            record = by_tag.get(tag)
            if record is not None and record.ciphertext is None:
                record.ciphertext = ciphertext

    def adv_insert(self, entries: List[Tuple[bytes, Any, int]]) -> None:
        """``Update`` (second form): register adversarial (c, M, τ) triples."""
        for ciphertext, message, tau in entries:
            self._records.append(
                _TLERecord(
                    message=message,
                    ciphertext=ciphertext,
                    tau=tau,
                    tag=None,
                    recorded_at=0,
                    owner=None,
                )
            )

    def adv_leakage(self) -> List[Tuple[Any, Optional[bytes], int]]:
        """``Leakage``: plaintexts with ``τ ≤ leak(Cl)`` + corrupted parties'."""
        horizon = self.leak_fn(self.time)
        leaked = [
            (record.message, record.ciphertext, record.tau)
            for record in self._records
            if record.tau <= horizon
            or (record.owner is not None and self.session.is_corrupted(record.owner))
        ]
        self.record("leakage", len(leaked))
        return leaked


def _size_of(message: Any) -> int:
    from repro.uc.encoding import encode

    try:
        return len(encode(message))
    except TypeError:
        return 0


def _freeze(message: Any) -> Any:
    try:
        hash(message)
        return message
    except TypeError:
        from repro.uc.encoding import encode

        return encode(message)
