"""The random oracle functionality ``FRO`` (paper Figure 3).

A lazily-sampled random function from byte strings to λ-bit digests.  The
oracle is *programmable*: simulators (and the equivocation tests that play
the simulator's part) may install chosen input/output pairs, which is the
standard technique the paper uses for equivocation ([Nie02]); programming
an already-queried point fails — exactly the simulation-abort condition in
the proofs of Lemma 2 and Theorem 2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.crypto.hashing import DIGEST_SIZE
from repro.uc.entity import Functionality

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session


class ProgrammingConflict(Exception):
    """Attempted to program a point that was already queried/programmed."""


class RandomOracle(Functionality):
    """``FRO``: consistent uniformly-random responses, with programming.

    Args:
        session: Owning session.
        fid: Functionality id (distinct oracles have distinct ids and are
            independent, e.g. the paper's ``FRO`` vs ``F*RO``).
        digest_size: Response length in bytes (default λ = 256 bits).
    """

    def __init__(
        self, session: "Session", fid: str = "FRO", digest_size: int = DIGEST_SIZE
    ) -> None:
        super().__init__(session, fid)
        self.digest_size = digest_size
        self._table: Dict[bytes, bytes] = {}
        #: Which entity ids queried which points (used by tests asserting
        #: "the adversary had not queried ρ before programming").
        self.queried_by: Dict[bytes, Set[str]] = {}

    def query(self, x: bytes, querier: str = "?") -> bytes:
        """Return ``H(x)``, sampling it fresh on first use."""
        if not isinstance(x, bytes):
            raise TypeError("oracle inputs are byte strings")
        if x not in self._table:
            self._table[x] = self.session.random_bytes(self.digest_size)
        self.queried_by.setdefault(x, set()).add(querier)
        self.session.metrics.count_ro_query(self.fid, querier)
        return self._table[x]

    def hash_fn(self, querier: str = "?"):
        """A ``bytes -> bytes`` closure querying this oracle as ``querier``."""
        return lambda x: self.query(x, querier=querier)

    # -- simulator-facing interface -------------------------------------

    def was_queried(self, x: bytes, by: Optional[str] = None) -> bool:
        """Whether ``x`` has been queried (optionally: by a given entity)."""
        if x not in self.queried_by:
            return False
        if by is None:
            return True
        return by in self.queried_by[x]

    def program(self, x: bytes, digest: bytes) -> None:
        """Install ``H(x) = digest`` (simulator equivocation).

        Raises:
            ProgrammingConflict: if ``x`` was already queried or programmed
                with a different value — the simulation-abort event of the
                paper's proofs.
        """
        if len(digest) != self.digest_size:
            raise ValueError("programmed digest has wrong size")
        if x in self._table and self._table[x] != digest:
            raise ProgrammingConflict("point already defined with another value")
        if self.was_queried(x):
            raise ProgrammingConflict("point already queried; cannot equivocate")
        self._table[x] = digest
        self.record("program", x[:8])
