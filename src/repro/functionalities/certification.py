"""The certification functionality ``Fcert`` (paper Figure 4).

``Fcert`` abstracts identity-bound signatures: one instance per signer;
verification consults an ideal registry, so signatures are perfectly
unforgeable while the signer is honest.  Once the signer is corrupted the
adversary may register arbitrary message/signature pairs (clause 4 of the
figure: the functionality defers to the simulator's verdict ``ϕ``).

:class:`RealCertification` is the computational realization (Schnorr
signatures + a certificate registry), used when running the fully-composed
world of Corollary 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.crypto.batch import (
    BatchItem,
    BatchPolicy,
    BatchReport,
    current_policy,
    verify_batch,
)
from repro.crypto.schnorr import (
    SchnorrKeyPair,
    schnorr_batch_item,
    schnorr_keygen,
    schnorr_sign,
    schnorr_verify,
)
from repro.uc.entity import Functionality
from repro.uc.errors import CorruptionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uc.session import Session

#: Shared "definitely invalid" item: no equations, exact verdict False
#: (entries that fail structural checks before any crypto runs).
_REJECT_ITEM = BatchItem(bases=(), equations=(), check=lambda: False)


class Certification(Functionality):
    """Ideal ``Fcert`` for one signer.

    Args:
        session: Owning session.
        signer: Party id of the signer this instance is tied to.
        fid: Functionality id (defaults to ``Fcert:<signer>``).
    """

    def __init__(self, session: "Session", signer: str, fid: str = "") -> None:
        super().__init__(session, fid or f"Fcert:{signer}")
        self.signer = signer
        # message -> (signature token, valid flag)
        self._registry: Dict[Tuple[bytes, bytes], bool] = {}
        self._signed: Dict[bytes, bytes] = {}

    def sign(self, pid: str, message: bytes) -> bytes:
        """Sign ``message`` (signer only).

        Raises:
            CorruptionError: if anyone but the designated signer calls.
        """
        if pid != self.signer:
            raise CorruptionError(f"{pid} is not the signer of {self.fid}")
        self.session.metrics.count_signature("sign")
        if message in self._signed:
            signature = self._signed[message]
        else:
            signature = self.session.fresh_tag()
            self._signed[message] = signature
            self._registry[(message, signature)] = True
        self.record("sign", message[:16])
        return signature

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify per the Figure 4 decision procedure."""
        self.session.metrics.count_signature("verify")
        key = (message, signature)
        if key in self._registry:
            return self._registry[key]
        if not self.session.is_corrupted(self.signer):
            # Honest signer, never produced this pair: perfect unforgeability.
            self._registry[key] = False
            return False
        # Corrupted signer: the adversary decides; default to rejecting
        # unless it registered a forgery via adv_register.
        self._registry[key] = False
        return False

    def adv_register(self, message: bytes, signature: bytes, valid: bool = True) -> None:
        """Adversarial forgery registration (signer must be corrupted).

        Raises:
            CorruptionError: if the signer is honest.
        """
        self.require_corrupted(self.signer)
        self._registry[(message, signature)] = valid
        self.record("forge", message[:16])


class RealCertification(Functionality):
    """Computational realization of ``Fcert`` via Schnorr signatures.

    One instance serves *all* signers (it keeps a key registry — the
    trusted certification-authority role of [Can04]).  When a party is
    corrupted its signing key is part of the exposed state, so the
    adversary can sign on its behalf via :meth:`sign` with the corrupted
    pid — matching what corruption means computationally.
    """

    def __init__(self, session: "Session", fid: str = "RealCert") -> None:
        super().__init__(session, fid)
        self._keys: Dict[str, SchnorrKeyPair] = {}

    def ensure_key(self, pid: str) -> SchnorrKeyPair:
        """Generate (once) and return the key pair certified for ``pid``."""
        if pid not in self._keys:
            self._keys[pid] = schnorr_keygen(self.session.rng)
        return self._keys[pid]

    def sign(self, pid: str, message: bytes) -> Tuple[int, int]:
        """Sign ``message`` under ``pid``'s certified key."""
        self.session.metrics.count_signature("sign")
        keypair = self.ensure_key(pid)
        signature = schnorr_sign(keypair, message, self.session.rng)
        return (signature.r, signature.s)

    def verify(self, pid: str, message: bytes, signature: Tuple[int, int]) -> bool:
        """Verify ``signature`` on ``message`` against ``pid``'s key."""
        self.session.metrics.count_signature("verify")
        if pid not in self._keys:
            return False
        from repro.crypto.schnorr import SchnorrSignature

        keypair = self._keys[pid]
        return schnorr_verify(
            keypair.group,
            keypair.public,
            message,
            SchnorrSignature(r=signature[0], s=signature[1]),
        )

    def verify_batch(
        self,
        entries: Sequence[Tuple[str, bytes, Tuple[int, int]]],
        policy: Optional[BatchPolicy] = None,
    ) -> BatchReport:
        """Batch-verify ``(pid, message, (r, s))`` entries via one RLC check.

        Verdicts match :meth:`verify` entry for entry (unknown pids
        resolve to False without joining the combination); signature
        metrics count one verify per entry either way, so batched and
        per-item runs report identical counters.  ``policy`` defaults to
        the ambient :func:`~repro.crypto.batch.current_policy` (or the
        stock parameters when none is installed).
        """
        from repro.crypto.schnorr import SchnorrSignature

        items: List = []
        for pid, message, signature in entries:
            self.session.metrics.count_signature("verify")
            keypair = self._keys.get(pid)
            if keypair is None:
                items.append(_REJECT_ITEM)
                continue
            items.append(
                schnorr_batch_item(
                    keypair.group,
                    keypair.public,
                    message,
                    SchnorrSignature(r=signature[0], s=signature[1]),
                )
            )
        policy = policy or current_policy() or BatchPolicy()
        group = next(iter(self._keys.values())).group if self._keys else None
        if group is None:
            from repro.crypto.groups import TEST_GROUP as group  # no keys yet
        return verify_batch(group, items, seed=policy.seed, min_items=policy.min_items)
