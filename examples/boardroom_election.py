#!/usr/bin/env python3
"""Boardroom election: self-tallying voting without a trusted tallier.

Runs the full ΠSTVS pipeline (Theorem 4):

1. two authorities deal each voter an encrypted share of a secret
   exponent, with shares summing to zero (published commitments let any
   scrutineer verify this);
2. five board members cast ballots ``r^{x_i} · g^{v_i}`` over the SBC
   channel, each with a disjunctive ZK proof of validity and an
   identity-bound signature;
3. after the casting period closes and the SBC release round passes,
   *every voter* tallies the election themselves — no tallying authority,
   and no trusted "control voter" casting last (simultaneity supplies the
   fairness that role provided in [SP15]).

Run:  python examples/boardroom_election.py
"""

from repro.core import build_voting_stack

VOTES = {
    "V0": "approve",
    "V1": "reject",
    "V2": "approve",
    "V3": "approve",
    "V4": "reject",
}


def main() -> None:
    stack = build_voting_stack(
        voters=5,
        authorities=2,
        candidates=("approve", "reject"),
        mode="hybrid",
        seed=99,
    )

    print("Setup: authorities deal exponent shares (Σ_i x_{i,j} = 0)...")
    for authority in stack.authorities.values():
        authority.deal()
    stack.run_rounds(1)

    for voter in stack.parties.values():
        assert voter.secret_exponent is not None, "setup must complete"
    print("  every voter verified its share against the commitments\n")

    print("Casting (over the SBC channel; ballots carry ZK validity proofs):")
    for pid, choice in VOTES.items():
        stack.parties[pid].vote(choice)
        print(f"  {pid} cast a ballot (choice hidden until the release round)")

    stack.run_until_result()

    print("\nSelf-tally (computed independently by every voter):")
    results = stack.results()
    for pid, tally in results.items():
        print(f"  {pid}: {tally}")

    expected = {"approve": 3, "reject": 2}
    assert all(tally == expected for tally in results.values())
    print(f"\nResult: {expected} — unanimous across voters, no tallier involved.")


if __name__ == "__main__":
    main()
