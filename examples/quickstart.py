#!/usr/bin/env python3
"""Quickstart: simultaneous broadcast in three worlds.

Runs the same three-sender session against the ideal functionality, the
hybrid-world protocol (ΠSBC over ideal FUBC/FTLE), and the fully-composed
Corollary 1 stack (ΠSBC over ΠUBC and ΠTLE-over-ΠFBC, resource-metered),
and shows that every honest party receives the identical sorted batch at
the identical round in all three.

Run:  python examples/quickstart.py
"""

from repro.core import build_sbc_stack


def main() -> None:
    messages = {
        "P0": b"alice: commit 0xA1",
        "P1": b"bob:   commit 0xB2",
        "P2": b"carol: commit 0xC3",
    }

    results = {}
    for mode in ("ideal", "hybrid", "composed"):
        stack = build_sbc_stack(n=4, mode=mode, seed=2024)
        for pid, message in messages.items():
            stack.parties[pid].broadcast(message)
        final_round = stack.run_until_delivery()
        results[mode] = (stack.delivered(), final_round)
        print(f"--- {mode} world ---")
        print(f"  broadcast period: rounds 0..{stack.phi}")
        print(f"  release round:    {stack.phi + stack.delta}")
        batch = results[mode][0]["P3"]
        for item in batch:
            print(f"  P3 received: {item!r}")

    batches = {mode: r[0] for mode, r in results.items()}
    assert batches["ideal"] == batches["hybrid"] == batches["composed"]
    print("\nAll three worlds delivered identical batches — the executable")
    print("content of Theorem 2 and Corollary 1.")


if __name__ == "__main__":
    main()
