#!/usr/bin/env python3
"""Distributed randomness beacon (the paper's DURS application).

A set of mutually-distrusting parties want a shared uniform random
string — e.g. to seed a lottery or a committee election.  The naive
design (everyone posts randomness, XOR it all) is biasable by whoever
posts last.  ΠDURS (Theorem 3) routes the contributions through
simultaneous broadcast, so the last mover commits blind and the output
stays uniform even against n−1 corruptions.

This script runs both designs under the same last-mover adversary, many
times, and prints the measured bias.

Run:  python examples/randomness_beacon.py
"""

from repro.analysis.stats import bit_bias
from repro.attacks.bias import BiasingContributor
from repro.baselines.naive_beacon import build_naive_beacon
from repro.core import build_durs_stack
from repro.uc.environment import Environment
from repro.uc.session import Session

TRIALS = 20


def naive_trial(seed: int) -> bytes:
    attack = BiasingContributor(attacker="P3", target_bit=0, expected_honest=3)
    session = Session(seed=seed, adversary=attack)
    parties = build_naive_beacon(session, [f"P{i}" for i in range(4)], close_round=2)
    env = Environment(session)
    env.run_round([(pid, lambda p: p.contribute()) for pid in parties])
    env.run_rounds(3)
    return parties["P0"].urs


def durs_trial(seed: int) -> bytes:
    attack = BiasingContributor(attacker="P3", target_bit=0, phi=3)
    stack = build_durs_stack(n=4, mode="hybrid", seed=seed, adversary=attack)
    stack.parties["P0"].urs_request()
    stack.run_until_urs()
    return stack.urs_values()["P0"]


def main() -> None:
    print(f"Last-mover adversary targets the output's first bit = 0, "
          f"{TRIALS} runs each.\n")

    naive = [naive_trial(seed) for seed in range(TRIALS)]
    print("Naive beacon (contributions in the clear over UBC):")
    print(f"  sample outputs: {[v.hex()[:8] for v in naive[:4]]} ...")
    print(f"  P[first bit = 1] = {bit_bias(naive):.2f}   <- fully biased\n")

    durs = [durs_trial(seed) for seed in range(100, 100 + TRIALS)]
    print("DURS beacon (contributions via simultaneous broadcast):")
    print(f"  sample outputs: {[v.hex()[:8] for v in durs[:4]]} ...")
    print(f"  P[first bit = 1] = {bit_bias(durs):.2f}   <- statistically fair")

    assert bit_bias(naive) == 0.0
    assert 0.15 <= bit_bias(durs) <= 0.85


if __name__ == "__main__":
    main()
