#!/usr/bin/env python3
"""Sealed-bid auction: why simultaneity matters (fair bidding use case).

Part 1 runs the auction naively over an unfair broadcast channel with a
rushing adversary: the adversary reads the honest bids from the channel
leaks and outbids the highest by one — it wins every time, paying the
minimum possible premium.

Part 2 runs the same auction over ΠSBC: bids stay inside time-lock
ciphertexts until the release round, the adversary must commit blind, and
honest bidders win whenever their bid is highest.

Run:  python examples/sealed_bid_auction.py
"""

from repro.attacks.rushing import SBCCopyAttack, UBCCopyAttack
from repro.core import build_sbc_stack
from repro.functionalities.dummy import DummyBroadcastParty
from repro.functionalities.ubc import UnfairBroadcast
from repro.uc.environment import Environment
from repro.uc.session import Session

BIDS = {"P0": 410, "P1": 365, "P2": 298}


def encode_bid(pid: str, amount: int) -> bytes:
    return f"bid:{pid}:{amount:06d}".encode()


def winner(batch) -> str:
    best_amount, best_pid = -1, "?"
    for item in batch:
        try:
            _tag, pid, amount = item.decode().split(":")
        except (ValueError, AttributeError):
            continue
        if int(amount) > best_amount:
            best_amount, best_pid = int(amount), pid
    return f"{best_pid} at {best_amount}"


def outbid(message: bytes) -> bytes:
    _tag, _pid, amount = message.decode().split(":")
    return encode_bid("P3", int(amount) + 1)


def naive_auction() -> None:
    print("=== Part 1: auction over UNFAIR broadcast ===")
    attack = UBCCopyAttack(attacker="P3", transform=outbid)
    session = Session(seed=7, adversary=attack)
    ubc = UnfairBroadcast(session)
    parties = {
        f"P{i}": DummyBroadcastParty(session, f"P{i}", ubc) for i in range(4)
    }
    env = Environment(session)
    env.run_round(
        [
            (pid, (lambda m: (lambda p: p.broadcast(m)))(encode_bid(pid, amount)))
            for pid, amount in BIDS.items()
        ]
    )
    batch = [m for _, m, _ in parties["P0"].outputs]
    print(f"  bids on the wire: {[b.decode() for b in batch]}")
    print(f"  winner: {winner(batch)}   <- the rusher outbid everyone by 1")


def sbc_auction() -> None:
    print("\n=== Part 2: auction over SIMULTANEOUS broadcast ===")
    attack = SBCCopyAttack(
        attacker="P3", is_plaintext=lambda m: isinstance(m, bytes) and m.startswith(b"bid:")
    )
    stack = build_sbc_stack(n=4, mode="composed", seed=7, adversary=attack)
    for pid, amount in BIDS.items():
        stack.parties[pid].broadcast(encode_bid(pid, amount))
    stack.run_until_delivery()
    batch = stack.delivered()["P0"]
    print(f"  bids revealed at round {stack.phi + stack.delta}: "
          f"{[b.decode() for b in batch if isinstance(b, bytes)]}")
    print(f"  honest bids the adversary saw before the release: "
          f"{attack.plaintexts_seen}")
    print(f"  winner: {winner(batch)}   <- the honest high bidder")
    assert attack.plaintexts_seen == []
    assert winner(batch).startswith("P0")


if __name__ == "__main__":
    naive_auction()
    sbc_auction()
