#!/usr/bin/env python3
"""A guided tour of the adaptive (non-atomic) adversary across the stack.

The strong corruption model of [HZ10] lets the adversary corrupt a sender
*after* seeing its message but *before* delivery completes.  What it can
then do differs layer by layer — this is the paper's Section 3 in four
acts:

  1. FRBC / Dolev–Strong: replacement is possible (relaxed validity);
  2. FUBC: replacement is possible and the message leaked in the clear;
  3. F∆,α_FBC: the message is hidden, and once locked, unreplaceable;
  4. ΠSBC: the adversary never even sees honest plaintexts before the
     release round, so there is nothing to react to.

Run:  python examples/adaptive_adversary_tour.py
"""

from repro.attacks.adaptive import UBCReplaceAttack
from repro.attacks.rushing import SBCCopyAttack
from repro.core import build_sbc_stack
from repro.functionalities.dummy import DummyBroadcastParty
from repro.functionalities.fbc import FairBroadcast
from repro.functionalities.rbc import RelaxedBroadcast
from repro.functionalities.ubc import UnfairBroadcast
from repro.uc.entity import Party
from repro.uc.environment import Environment
from repro.uc.session import Session


class Receiver(Party):
    def __init__(self, session, pid):
        super().__init__(session, pid)
        self.received = []

    def on_deliver(self, message, source):
        self.received.append(message)


def act_1_rbc() -> None:
    print("Act 1 — relaxed broadcast (FRBC): corrupt-then-replace lands")
    session = Session(seed=1)
    parties = [Receiver(session, f"P{i}") for i in range(3)]
    rbc = RelaxedBroadcast(session, fid="FRBC")
    rbc.broadcast(parties[0], b"original")
    session.corrupt("P0")                     # mid-round corruption
    rbc.adv_allow(b"replaced")                # ...and replacement
    print(f"  P1 received: {parties[1].received[0][1]!r}\n")


def act_2_ubc() -> None:
    print("Act 2 — unfair broadcast (FUBC): leak + replace, automated")
    attack = UBCReplaceAttack(victim="P0", replacement=b"replaced")
    session = Session(seed=1, adversary=attack)
    ubc = UnfairBroadcast(session)
    parties = {f"P{i}": DummyBroadcastParty(session, f"P{i}", ubc) for i in range(3)}
    Environment(session).run_round([("P0", lambda p: p.broadcast(b"original"))])
    print(f"  adversary saw and replaced: {attack.replaced}")
    print(f"  P1 received: {[m for _, m, _ in parties['P1'].outputs]}\n")


def act_3_fbc() -> None:
    print("Act 3 — fair broadcast (FFBC): the lock stops the same move")
    session = Session(seed=1)
    fbc = FairBroadcast(session, delta=2, alpha=0)
    parties = {f"P{i}": DummyBroadcastParty(session, f"P{i}", fbc) for i in range(3)}
    env = Environment(session)
    tag = fbc.broadcast(parties["P0"], b"original")
    env.run_rounds(2)
    revealed = fbc.adv_output_request(tag)    # adversary reads the value...
    print(f"  adversary read (and thereby locked): {revealed[1]!r}")
    session.corrupt("P0")
    landed = fbc.adv_allow(tag, b"replaced", "P0")
    print(f"  replacement attempt accepted: {landed}")
    env.run_rounds(1)
    print(f"  P1 received: {[m for _, m in parties['P1'].outputs]}\n")
    assert not landed


def act_4_sbc() -> None:
    print("Act 4 — simultaneous broadcast (PiSBC): nothing to react to")
    attack = SBCCopyAttack(
        attacker="P3",
        is_plaintext=lambda m: isinstance(m, bytes) and m.startswith(b"secret"),
    )
    stack = build_sbc_stack(n=4, mode="composed", seed=1, adversary=attack)
    stack.parties["P0"].broadcast(b"secret plan A")
    stack.run_until_delivery()
    print(f"  honest plaintexts in the adversary's pre-release view: "
          f"{attack.plaintexts_seen}")
    print(f"  ciphertext replays it resorted to: {attack.replays} (all dropped)")
    print(f"  P1's final batch: {stack.delivered()['P1']}")
    assert attack.plaintexts_seen == []


if __name__ == "__main__":
    act_1_rbc()
    act_2_ubc()
    act_3_fbc()
    act_4_sbc()
