#!/usr/bin/env python3
"""Multi-party coin flipping — the classic SBC application ([CGMA85]).

Two (or more) mutually-distrusting parties want a fair coin.  Blum-style
commit/reveal over an ordinary channel is vulnerable to the party who
reveals last (they can abort or, over an unfair channel, choose after
seeing the other side).  Simultaneous broadcast removes the ordering:
everyone's contribution is locked before anyone's is visible, so the XOR
of the contributions' first bits is a fair coin even if all but one
participant collude.

This script flips a series of coins via ΠDURS and shows the empirical
distribution, then demonstrates the collusion attempt failing.

Run:  python examples/coin_flip.py
"""

from repro.analysis.stats import bit_bias
from repro.attacks.bias import BiasingContributor
from repro.core import build_durs_stack

FLIPS = 12


def fair_flip(seed: int) -> int:
    """One coin flip among four parties, nobody corrupted."""
    stack = build_durs_stack(n=4, mode="hybrid", seed=seed)
    stack.parties["P0"].urs_request()
    stack.run_until_urs()
    urs = stack.urs_values()["P0"]
    return urs[0] >> 7


def adversarial_flip(seed: int) -> int:
    """One flip where a last-mover tries to force heads (bit = 0)."""
    attack = BiasingContributor(attacker="P3", target_bit=0, phi=3)
    stack = build_durs_stack(n=4, mode="hybrid", seed=seed, adversary=attack)
    stack.parties["P0"].urs_request()
    stack.run_until_urs()
    urs = stack.urs_values()["P0"]
    return urs[0] >> 7


def main() -> None:
    print(f"Flipping {FLIPS} coins over simultaneous broadcast...\n")
    honest = [fair_flip(seed) for seed in range(FLIPS)]
    print(f"honest flips:      {honest}")
    print(f"  heads rate: {1 - sum(honest) / FLIPS:.2f}\n")

    rigged = [adversarial_flip(seed) for seed in range(500, 500 + FLIPS)]
    print(f"one party colludes to force heads:")
    print(f"adversarial flips: {rigged}")
    print(f"  heads rate: {1 - sum(rigged) / FLIPS:.2f}  "
          f"<- still a coin: its contribution locked in blind")

    assert 0 < sum(rigged) < FLIPS, "the coin must stay random under attack"


if __name__ == "__main__":
    main()
