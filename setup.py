"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e . --no-use-pep517 --no-build-isolation`` works in
offline environments whose setuptools predates PEP 660 editable wheels
(the paved path is plain ``pip install -e .``).
"""

from setuptools import setup

setup()
