"""E13 — Repeated SBC runs: amortization over a shared substrate ([FKL08]).

Claim (motivating [FKL08], cited in Section 1): SBC is usually run
repeatedly, so the per-run marginal cost matters.  Sharing the substrate
(clock, UBC channel, TLE service, oracles) across periods keeps the
marginal period cost flat and below a cold-started session.
"""

import time

from conftest import emit, once

from repro.core import build_sbc_stack
from repro.core.repeated import RepeatedSBC


def _cold_period(seed: int) -> float:
    start = time.perf_counter()
    stack = build_sbc_stack(n=3, mode="hybrid", seed=seed, phi=4, delta=2)
    stack.parties["P0"].broadcast(b"m")
    stack.run_until_delivery()
    return time.perf_counter() - start


def test_e13_amortized_periods(benchmark):
    def sweep():
        rows = []
        runner = RepeatedSBC(n=3, seed=20, phi=4, delta=2)
        for period in range(5):
            before = runner.session.metrics.snapshot()
            start = time.perf_counter()
            delivered = runner.run_period({"P0": f"m{period}".encode()})
            elapsed = time.perf_counter() - start
            diff = runner.session.metrics.diff(before)
            assert all(batch == [f"m{period}".encode()] for batch in delivered.values())
            rows.append(
                {
                    "period": period,
                    "warm_wall_s": elapsed,
                    "messages": diff.get("messages.total", 0),
                    "rounds": diff.get("rounds.advanced", 0),
                }
            )
        cold = sum(_cold_period(seed) for seed in range(3)) / 3
        rows.append(
            {"period": "cold-start avg", "warm_wall_s": cold, "messages": "-", "rounds": "-"}
        )
        return rows

    rows = once(benchmark, sweep)
    warm = [row["warm_wall_s"] for row in rows if isinstance(row["period"], int)]
    # marginal periods are stable (no blow-up as state accumulates):
    assert max(warm[1:]) < 5 * min(warm[1:])
    # and per-period message cost is identical every period:
    messages = {row["messages"] for row in rows if isinstance(row["period"], int)}
    assert len(messages) == 1
    emit(
        "E13",
        "Repeated SBC periods: flat marginal cost on a shared substrate",
        rows,
        protocol="sbc-repeated",
        n=3,
        rounds=sum(
            row["rounds"] for row in rows if isinstance(row["rounds"], int)
        ),
        periods=sum(1 for row in rows if isinstance(row["period"], int)),
    )


def test_e13_wallclock(benchmark):
    runner = RepeatedSBC(n=3, seed=21, phi=4, delta=2)
    counter = iter(range(10_000))
    benchmark(lambda: runner.run_period({"P0": f"m{next(counter)}".encode()}))
