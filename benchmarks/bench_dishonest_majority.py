"""E8 — Dishonest majority: where Hevia06 breaks and ΠSBC does not.

Claim (the paper's headline): prior UC SBC tolerates only t < n/2 — a
coalition of ⌈n/2⌉ reconstructs honest messages inside the sharing phase
of the VSS-based construction and correlates its own input.  The paper's
TLE-based ΠSBC keeps simultaneity for every t < n.
"""

from conftest import emit, once

from repro.attacks.rushing import SBCCopyAttack
from repro.baselines.hevia import HeviaCoalitionAttack, HeviaSBCNetwork
from repro.core import build_sbc_stack
from repro.uc.environment import Environment
from repro.uc.session import Session


def _hevia_trial(n: int, coalition_size: int, seed: int = 7) -> bool:
    coalition = [f"P{i}" for i in range(n - coalition_size, n)]
    attack = HeviaCoalitionAttack(coalition)
    session = Session(seed=seed, adversary=attack)
    network = HeviaSBCNetwork.build(session, n=n)
    attack.baseline = network
    env = Environment(session)
    env.run_round([("P0", lambda p: p.broadcast(b"secret"))])
    env.run_rounds(4)
    return bool(attack.learned)  # simultaneity broken?


def _sbc_trial(n: int, coalition_size: int, seed: int = 7) -> bool:
    attack = SBCCopyAttack(
        attacker=f"P{n-1}", is_plaintext=lambda m: m == b"secret"
    )
    stack = build_sbc_stack(n=n, mode="hybrid", seed=seed, adversary=attack)
    for i in range(n - coalition_size, n - 1):
        stack.session.corrupt(f"P{i}")
    stack.parties["P0"].broadcast(b"secret")
    stack.run_until_delivery()
    return bool(attack.plaintexts_seen)


def test_e8_corruption_sweep(benchmark):
    def sweep():
        rows = []
        n = 6
        threshold = (n - 1) // 2
        for coalition in range(1, n):
            hevia_broken = _hevia_trial(n, coalition)
            sbc_broken = _sbc_trial(n, coalition)
            rows.append(
                {
                    "n": n,
                    "coalition_t": coalition,
                    "hevia_tolerates(t<n/2)": coalition <= threshold,
                    "hevia_simultaneity_broken": hevia_broken,
                    "sbc_simultaneity_broken": sbc_broken,
                }
            )
            assert hevia_broken == (coalition > threshold), (
                "the honest-majority baseline must break exactly past n/2"
            )
            assert not sbc_broken, "PiSBC must hold for every t < n"
        return rows

    rows = once(benchmark, sweep)
    emit(
        "E8",
        "Honest-majority SBC breaks at t > n/2; PiSBC holds up to t = n-1",
        rows,
        protocol="sbc-vs-vss",
        n=max(row.get("n", 0) for row in rows) or None,
        rounds=None,
    )


def test_e8_cliff_across_n(benchmark):
    def sweep():
        rows = []
        for n in (4, 5, 6, 7):
            threshold = (n - 1) // 2
            below = _hevia_trial(n, threshold)
            above = _hevia_trial(n, threshold + 1)
            rows.append(
                {
                    "n": n,
                    "t=floor((n-1)/2)": threshold,
                    "broken_at_t": below,
                    "broken_at_t+1": above,
                }
            )
            assert not below and above
        return rows

    rows = once(benchmark, sweep)
    emit("E8b", "The n/2 cliff of the VSS baseline, across n", rows)


def test_e8_hevia_wallclock(benchmark):
    benchmark(lambda: _hevia_trial(6, 3))
