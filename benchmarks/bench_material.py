"""E18 — preprocessing store: shared-attach vs per-worker recompute.

Claim: attaching the offline-built GROUP_2048 fixed-base table (read the
serialized blob out of a shared-memory segment, parse, install) is >= 3x
faster than each worker rebuilding the table with
``precompute_fixed_base`` — so cold-start warm-up drops off the sweep's
critical path, and a process sweep with shared material is no slower
than the recompute-warm-up baseline.  Both speedups are asserted only on
hosts with >= 4 real cores (elsewhere the record still documents the
measurement honestly — the attach ratio is hardware-independent, the
sweep comparison is not).
"""

import os
import tempfile
import time

from conftest import emit, once

from repro.crypto.groups import GROUP_2048, TEST_GROUP, SchnorrGroup
from repro.crypto.preprocessing import deserialize_material
from repro.runtime import ParallelSweep
from repro.runtime.material import MaterialStore

SPEEDUP_MIN_CORES = 4
ATTACH_SPEEDUP_FLOOR = 3.0
SWEEP_SESSIONS = 16
SWEEP_PARAMS = dict(n=3, mode="hybrid", phi=4, delta=2)


def _fresh_2048() -> SchnorrGroup:
    return SchnorrGroup(p=GROUP_2048.p, q=GROUP_2048.q, g=GROUP_2048.g)


def _best_of(repeats, fn):
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


def test_e18_shared_attach_beats_recompute(benchmark):
    cores = os.cpu_count() or 1

    def run():
        with tempfile.TemporaryDirectory() as root:
            store = MaterialStore(root)
            offline_start = time.perf_counter()
            store.build([GROUP_2048], nonces=16, feldman=4)
            offline_s = time.perf_counter() - offline_start
            blob = store.load_blob(GROUP_2048)

            # What every worker paid before the store: rebuild the table.
            compute_s = _best_of(
                2, lambda: _fresh_2048().precompute_fixed_base()
            )

            # The online phase, exactly as a worker runs it: copy the
            # blob out of a shared-memory segment, deserialize, install.
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(
                name=f"repro-e18-{os.getpid()}", create=True, size=len(blob)
            )
            try:
                segment.buf[: len(blob)] = blob
                # A real worker attaches into the module singleton (which
                # exists before the initializer runs), so the target
                # group is constructed outside the timed region.
                target = _fresh_2048()

                def attach():
                    payload = bytes(segment.buf[: len(blob)])
                    deserialize_material(payload).attach(target)

                attach_s = _best_of(2, attach)
            finally:
                segment.close()
                segment.unlink()

            # Correctness before speed: attached == recomputed, entry
            # for entry.
            recomputed = _fresh_2048()
            recomputed.precompute_fixed_base()
            attached = _fresh_2048()
            deserialize_material(blob).attach(attached)
            assert attached._fb_table == recomputed._fb_table

            # Cold sweep wall-clock: shared material vs recompute
            # warm-up, same seeds, both verified against inline digests.
            os.environ["REPRO_MATERIAL_DIR"] = root
            try:
                store.build([TEST_GROUP])  # the sweep workers' parameter set
                sweeps = {}
                for source in ("compute", "shared"):
                    sweep = ParallelSweep(
                        executor="process", workers=min(cores, 4),
                        material=source, **SWEEP_PARAMS
                    )
                    verdict = sweep.verify(range(SWEEP_SESSIONS))
                    assert verdict.matched
                    sweeps[source] = verdict.report.wall_time_s
            finally:
                del os.environ["REPRO_MATERIAL_DIR"]

        attach_speedup = compute_s / max(attach_s, 1e-9)
        if cores >= SPEEDUP_MIN_CORES:
            assert attach_speedup >= ATTACH_SPEEDUP_FLOOR, (
                f"shared-attach only {attach_speedup:.2f}x faster than "
                f"per-worker recompute on {cores} cores"
            )
            assert sweeps["shared"] <= sweeps["compute"] * 1.05, (
                "shared-material sweep slower than recompute warm-up: "
                f"{sweeps['shared']:.3f}s vs {sweeps['compute']:.3f}s"
            )
        rows = [
            {
                "phase": "offline build (once)",
                "wall_ms": round(offline_s * 1000, 2),
                "per_worker": "no",
            },
            {
                "phase": "recompute in worker",
                "wall_ms": round(compute_s * 1000, 2),
                "per_worker": "yes",
            },
            {
                "phase": "shared attach in worker",
                "wall_ms": round(attach_s * 1000, 2),
                "per_worker": "yes",
            },
        ]
        stats = {
            "offline_s": offline_s,
            "compute_s": compute_s,
            "attach_s": attach_s,
            "attach_speedup": attach_speedup,
            "blob_bytes": len(blob),
            "sweep_compute_s": sweeps["compute"],
            "sweep_shared_s": sweeps["shared"],
        }
        return rows, stats

    (rows, stats) = once(benchmark, run)
    cores = os.cpu_count() or 1
    emit(
        "E18",
        f"GROUP_2048 warm-up: shared attach vs recompute ({cores} cores)",
        rows,
        protocol="material",
        n=None,
        rounds=None,
        backend="pooled",
        material_source="shared",
        attach_speedup=round(stats["attach_speedup"], 3),
        attach_ms=round(stats["attach_s"] * 1000, 3),
        compute_ms=round(stats["compute_s"] * 1000, 3),
        offline_build_ms=round(stats["offline_s"] * 1000, 3),
        blob_bytes=stats["blob_bytes"],
        sweep_sessions=SWEEP_SESSIONS,
        sweep_compute_s=round(stats["sweep_compute_s"], 6),
        sweep_shared_s=round(stats["sweep_shared_s"], 6),
        speedup_asserted=cores >= SPEEDUP_MIN_CORES,
    )
