"""E16 — the adversarial scenario matrix as a regenerable experiment.

Claims: (i) every cell of the default conformance matrix (stacks ×
adversaries × fault patterns × backends, plus the targeted timing
scenarios) satisfies its paper-derived property expectations; (ii) each
cell's event trace is identical across the full-trace backends, even
mid-attack; (iii) the whole sweep is cheap enough to regenerate on every
run — adversarial conformance as a standing benchmark, not a one-off;
(iv) sharding matrix cells across process workers preserves cell order
and per-cell digests exactly (E16b).
"""

from collections import defaultdict

from conftest import bench_record, emit, once

from repro.scenarios import default_matrix, extra_scenarios, run_matrix

MATRIX = default_matrix()


def test_e16_scenario_matrix_conformance(benchmark):
    def sweep():
        specs = MATRIX.expand() + extra_scenarios()
        report = run_matrix(specs)
        assert report.ok, [cell.cell_id for cell in report.failures]
        assert report.backend_mismatches() == []
        return report

    report = once(benchmark, sweep)

    per_stack = defaultdict(lambda: {"cells": 0, "rounds": 0, "checks": 0})
    for cell in report.cells:
        bucket = per_stack[cell.stack]
        bucket["cells"] += 1
        bucket["rounds"] += cell.rounds
        bucket["checks"] += len(cell.properties)
    rows = [
        {
            "stack": stack,
            "cells": bucket["cells"],
            "rounds": bucket["rounds"],
            "property_checks": bucket["checks"],
            "all_ok": "yes",
        }
        for stack, bucket in sorted(per_stack.items())
    ]
    emit(
        "E16",
        "Adversarial scenario matrix: every paper property where it must hold",
        rows,
        protocol="scenarios",
        n=max(spec.n for spec in MATRIX.expand()),
        rounds=sum(cell.rounds for cell in report.cells),
        backend="sequential+pooled",
        cells=len(report.cells),
        stacks=len(MATRIX.stacks),
        adversaries=len(MATRIX.adversaries),
        faults=len(MATRIX.faults),
    )


def test_e16b_matrix_cells_shard_across_processes(benchmark):
    def sweep():
        # The smoke subset: enough cells to span several chunks, small
        # enough to keep this a per-run regenerable.
        specs = (MATRIX.expand() + extra_scenarios())[:12]
        inline = run_matrix(specs, executor="inline")
        fanned = run_matrix(specs, executor="process", workers=2, chunksize=3)
        assert fanned.ok, [cell.cell_id for cell in fanned.failures]
        # Deterministic ordering and per-cell digest equality across the
        # process boundary (every matrix cell runs a full-trace backend).
        assert [c.cell_id for c in fanned.cells] == [c.cell_id for c in inline.cells]
        assert [c.digest for c in fanned.cells] == [c.digest for c in inline.cells]
        return inline, fanned

    (inline, fanned) = once(benchmark, sweep)
    bench_record(
        "E16b",
        protocol="scenarios",
        n=max(spec.n for spec in MATRIX.expand()),
        rounds=sum(cell.rounds for cell in fanned.cells),
        backend="sequential+pooled",
        cells=len(fanned.cells),
        executor="process",
        workers=2,
        chunksize=3,
        digests_match_inline=True,
        speedup_vs_inline=round(
            inline.wall_time_s / max(fanned.wall_time_s, 1e-9), 3
        ),
    )
