"""E12 — Resource restriction (Section 3.2 items 2–4).

Claims: under ``Wq`` a party gets q sequential oracle batches per round,
so (i) a difficulty-2 puzzle cannot be solved in the round it arrives —
not even by an adversary spending its whole budget — and (ii) honest
parties' encrypt+solve schedule fits the budget exactly; difficulty 1
*would* be solvable within the receipt round, which is why the paper
mandates difficulty 2.
"""

import random

import pytest
from conftest import emit, once

from repro.functionalities.random_oracle import RandomOracle
from repro.functionalities.wrapper import QueryWrapper
from repro.tle.astrolabous import PuzzleSolver, ast_encrypt
from repro.uc.entity import Party
from repro.uc.errors import ResourceExhausted
from repro.uc.session import Session


def _fresh(q: int, seed: int = 1):
    session = Session(seed=seed)
    oracle = RandomOracle(session, fid="F*RO")
    wrapper = QueryWrapper(session, oracle, q=q)
    Party(session, "A")  # the adversary's corrupted mule
    session.corrupt("A")
    return session, oracle, wrapper


def _attempt_same_round_solve(q: int, difficulty: int) -> int:
    """Try to solve a difficulty-d puzzle within one round; return links done."""
    session, oracle, wrapper = _fresh(q)
    rng = random.Random(7)
    ct = ast_encrypt(
        b"secret", difficulty=difficulty, rate=q, hash_fn=oracle.hash_fn("enc"), rng=rng
    )
    solver = PuzzleSolver(ct)
    done = 0
    try:
        while not solver.solved:
            solver.absorb(wrapper.evaluate_one("A", solver.next_query()))
            done += 1
    except ResourceExhausted:
        pass
    return done


def test_e12_difficulty_two_unsolvable_in_one_round(benchmark):
    def sweep():
        rows = []
        for q in (2, 4, 8, 16):
            done_d2 = _attempt_same_round_solve(q, difficulty=2)
            done_d1 = _attempt_same_round_solve(q, difficulty=1)
            rows.append(
                {
                    "q": q,
                    "difficulty1_links_done": done_d1,
                    "difficulty1_solved_same_round": done_d1 >= q,
                    "difficulty2_links_done": done_d2,
                    "difficulty2_solved_same_round": done_d2 >= 2 * q,
                }
            )
            assert done_d1 == q  # difficulty 1 falls within the round...
            assert done_d2 == q  # ...difficulty 2 never does (Sec. 3.2 item 4)
        return rows

    rows = once(benchmark, sweep)
    emit(
        "E12",
        "Rushing adversary, one round of budget: difficulty 1 falls, 2 stands",
        rows,
        protocol="wrapper",
        n=None,
        rounds=1,
    )


def test_e12_budget_is_sequential_depth_not_width(benchmark):
    def run():
        session, oracle, wrapper = _fresh(q=3)
        Party(session, "H")
        # One batch of 1000 points costs a single query...
        wrapper.evaluate("H", [bytes([i % 256, i // 256]) for i in range(1000)])
        assert wrapper.used("H") == 1
        # ...but a 4th sequential batch is refused.
        wrapper.evaluate("H", [b"a"])
        wrapper.evaluate("H", [b"b"])
        with pytest.raises(ResourceExhausted):
            wrapper.evaluate("H", [b"c"])
        return True

    once(benchmark, run)
    emit(
        "E12b",
        "Wq bounds sequential depth (batches), not parallel width (points)",
        [{"q": 3, "points_in_one_batch": 1000, "batches_allowed": 3}],
    )


def test_e12_wallclock(benchmark):
    benchmark(lambda: _attempt_same_round_solve(8, 2))
