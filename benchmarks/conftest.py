"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index
(E1..E15): it sweeps the experiment's parameters, checks the paper's
qualitative claim as hard assertions, prints the paper-style table, and
persists it under ``benchmarks/results/`` so the run's evidence survives
pytest's output capture.

Besides the human-readable table, every experiment emits one **uniform
JSON record** (``results/BENCH_<experiment>.json``, schema ``bench.v1``)
with the protocol name, party count, round count, wall time and execution
backend — so benchmark trajectories stay comparable across PRs and
backends.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
from typing import Any, Dict, Optional, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Wall-clock seconds of the most recent :func:`once` sweep; used as the
#: default ``wall_time_s`` of the JSON record emitted right after it.
_LAST_ONCE_S: Optional[float] = None


def once(benchmark, fn):
    """Run a sweep exactly once under the benchmark timer, return result.

    Table-producing experiments are too slow (and too deterministic) to
    repeat thousands of times; a single timed pass records their cost in
    the benchmark report while ``--benchmark-only`` still selects them.
    """
    global _LAST_ONCE_S
    start = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    _LAST_ONCE_S = time.perf_counter() - start
    return result


#: Experiments whose claims depend on where worker crypto caches came
#: from; their records must say so explicitly (E17: process fan-out
#: sweep, E18: the preprocessing-store warm-up comparison, E19: online
#: pool spending vs per-call sampling).
MATERIAL_SOURCE_REQUIRED = ("E17", "E18", "E19")

#: Experiments that must also state whether trials spent the
#: preprocessed pools (the offline/online mode axis).
ONLINE_REQUIRED = ("E19",)

#: Experiments that run under the supervised process fan-out; their
#: records must carry the degradation counters (``retries``,
#: ``respawns``, ``quarantined``) so a reference-perf run that silently
#: limped through retries can't pass as healthy.
SUPERVISED_REQUIRED = ("E17",)
SUPERVISION_COUNTERS = ("retries", "respawns", "quarantined")


def bench_record(
    experiment: str,
    protocol: str,
    n: Optional[int] = None,
    rounds: Optional[int] = None,
    wall_time_s: Optional[float] = None,
    backend: str = "sequential",
    material_source: Optional[str] = None,
    online: Optional[bool] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """Write the uniform per-experiment JSON record (schema ``bench.v1``).

    Args:
        experiment: Experiment id (``E6``); names the output file.
        protocol: Protocol/system under test (``sbc``, ``tle``, ...).
        n: Largest party count exercised.
        rounds: Rounds driven (or None when not round-structured).
        wall_time_s: Sweep wall time; defaults to the most recent
            :func:`once` timing.
        backend: Execution backend the sweep ran under.
        material_source: Where worker crypto caches came from
            (``compute``/``disk``/``shared``).  Mandatory for the
            experiments in :data:`MATERIAL_SOURCE_REQUIRED` — a sweep
            speedup claim is not comparable across PRs without it.
        online: Whether trials spent the preprocessed randomness pools
            (the offline/online protocol mode).  Mandatory for
            :data:`ONLINE_REQUIRED` experiments.
        extra: Free-form experiment parameters, stored under ``params``.

    Raises:
        ValueError: a :data:`MATERIAL_SOURCE_REQUIRED` experiment did not
            state its material source, or an :data:`ONLINE_REQUIRED` one
            did not state its online axis.
    """
    if experiment in MATERIAL_SOURCE_REQUIRED and material_source is None:
        raise ValueError(
            f"{experiment} records must carry material_source "
            "(compute/disk/shared); see MATERIAL_SOURCE_REQUIRED"
        )
    if experiment in ONLINE_REQUIRED and online is None:
        raise ValueError(
            f"{experiment} records must state online=True/False; "
            "see ONLINE_REQUIRED"
        )
    if experiment in SUPERVISED_REQUIRED:
        missing = [key for key in SUPERVISION_COUNTERS if key not in extra]
        if missing:
            raise ValueError(
                f"{experiment} records must carry the supervision counters "
                f"{SUPERVISION_COUNTERS} (missing {missing}); "
                "see SUPERVISED_REQUIRED"
            )
    if wall_time_s is None:
        wall_time_s = _LAST_ONCE_S
    record: Dict[str, Any] = {
        "schema": "bench.v1",
        "experiment": experiment,
        "protocol": protocol,
        "n": n,
        "rounds": rounds,
        "wall_time_s": round(wall_time_s, 6) if wall_time_s is not None else None,
        "backend": backend,
        # Multi-core sweeps only beat inline with real cores behind them;
        # recording the host's count keeps cross-run speedups comparable.
        "cpus": os.cpu_count(),
    }
    if material_source is not None:
        record["material_source"] = material_source
    if online is not None:
        record["online"] = online
    if extra:
        record["params"] = extra
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{experiment}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return record


def emit(
    experiment: str,
    title: str,
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    protocol: Optional[str] = None,
    n: Optional[int] = None,
    rounds: Optional[int] = None,
    backend: str = "sequential",
    material_source: Optional[str] = None,
    online: Optional[bool] = None,
    **extra: Any,
) -> str:
    """Format, print and persist one experiment table.

    When ``protocol`` is given, also emits the experiment's uniform JSON
    record via :func:`bench_record` (timed by the surrounding
    :func:`once` call).
    """
    from repro.analysis.tables import format_table

    table = format_table(rows, columns=columns, title=f"[{experiment}] {title}")
    print("\n" + table, file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(table + "\n")
    if protocol is not None:
        bench_record(
            experiment, protocol, n=n, rounds=rounds, backend=backend,
            material_source=material_source, online=online, **extra,
        )
    return table
