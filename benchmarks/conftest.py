"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index
(E1..E12): it sweeps the experiment's parameters, checks the paper's
qualitative claim as hard assertions, prints the paper-style table, and
persists it under ``benchmarks/results/`` so the run's evidence survives
pytest's output capture.
"""

from __future__ import annotations

import pathlib
import sys
from typing import Any, Dict, List, Optional, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def once(benchmark, fn):
    """Run a sweep exactly once under the benchmark timer, return result.

    Table-producing experiments are too slow (and too deterministic) to
    repeat thousands of times; a single timed pass records their cost in
    the benchmark report while ``--benchmark-only`` still selects them.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(
    experiment: str,
    title: str,
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Format, print and persist one experiment table."""
    from repro.analysis.tables import format_table

    table = format_table(rows, columns=columns, title=f"[{experiment}] {title}")
    print("\n" + table, file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(table + "\n")
    return table
