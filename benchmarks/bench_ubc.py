"""E2 — ΠUBC (Lemma 1): multi-sender multi-message unfair broadcast.

Claim: any number of senders may broadcast any number of messages per
round; everything is delivered within the round, and the real adapter's
outputs coincide with the ideal ``FUBC``.
"""

from conftest import emit, once

from repro.functionalities.dummy import DummyBroadcastParty
from repro.functionalities.ubc import UnfairBroadcast
from repro.protocols.ubc_protocol import UBCProtocolAdapter
from repro.uc.environment import Environment
from repro.uc.session import Session


def _run(real: bool, n: int, messages_per_party: int, seed: int = 3):
    session = Session(seed=seed)
    service = UBCProtocolAdapter(session) if real else UnfairBroadcast(session)
    parties = {
        f"P{i}": DummyBroadcastParty(session, f"P{i}", service) for i in range(n)
    }
    env = Environment(session)
    actions = [
        (pid, (lambda m: (lambda p: p.broadcast(m)))(f"{pid}:{j}".encode()))
        for pid in parties
        for j in range(messages_per_party)
    ]
    env.run_round(actions)
    return session, parties


def test_e2_throughput_and_equivalence(benchmark):
    def sweep():
        rows = []
        for n in (3, 6, 9):
            for k in (1, 4):
                outputs = {}
                for real in (False, True):
                    session, parties = _run(real, n, k)
                    outputs[real] = {
                        pid: sorted(m for _, m, _ in p.outputs)
                        for pid, p in parties.items()
                    }
                    total = sum(len(v) for v in outputs[real].values())
                    assert total == n * (n * k)  # everyone got everything
                assert outputs[False] == outputs[True], "Lemma 1: ideal == real"
                rows.append(
                    {
                        "n": n,
                        "msgs/party": k,
                        "delivered_total": n * n * k,
                        "rounds": 1,
                        "ideal==real": True,
                    }
                )
        return rows

    rows = once(benchmark, sweep)
    emit(
        "E2",
        "UBC: one-round delivery at any load; PiUBC == FUBC",
        rows,
        protocol="ubc",
        n=max(row["n"] for row in rows),
        rounds=2,
    )


def test_e2_wallclock_ideal(benchmark):
    benchmark(lambda: _run(False, 6, 4))


def test_e2_wallclock_real(benchmark):
    benchmark(lambda: _run(True, 6, 4))
