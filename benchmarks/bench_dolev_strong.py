"""E1 — Dolev–Strong ΠRBC (Fact 1): t+1 relay rounds, O(n²·t) messages.

Claim: FRBC is realizable for any t < n; the realization costs t+1 relay
rounds and at most n messages per relaying party per round.
"""

from conftest import emit

from repro.protocols.dolev_strong import make_dolev_strong_instance
from repro.uc.environment import Environment
from repro.uc.session import Session


def _run_instance(n: int, t: int, seed: int = 1):
    session = Session(seed=seed)
    pids = [f"P{i}" for i in range(n)]
    parties = make_dolev_strong_instance(session, pids, "P0", t=t)
    env = Environment(session)
    for party in parties.values():
        party.arm(0)
    parties["P0"].broadcast(b"value")
    rounds = 0
    while not all(p.decided for p in parties.values()):
        env.run_rounds(1)
        rounds += 1
        assert rounds < t + 5, "liveness failure"
    return session, parties, rounds


def test_e1_rounds_and_messages(benchmark):
    def sweep():
        rows = []
        for n in (4, 7, 10, 13):
            for t in (1, (n - 1) // 2, n - 1):
                session, parties, rounds = _run_instance(n, t)
                assert all(
                    p.outputs[-1][1] == b"value" for p in parties.values()
                ), "validity"
                rows.append(
                    {
                        "n": n,
                        "t": t,
                        "relay_rounds": rounds,
                        "claimed_rounds": t + 2,  # t+1 relays + decision round
                        "p2p_messages": session.metrics.get("messages.p2p"),
                        "bound_n2(t+1)": n * n * (t + 1),
                        "signatures": session.metrics.get("sig.sign"),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        assert row["relay_rounds"] == row["claimed_rounds"]
        assert row["p2p_messages"] <= row["bound_n2(t+1)"]
    emit(
        "E1",
        "Dolev-Strong: rounds = t+2 (t+1 relays + decision), messages <= n^2(t+1)",
        rows,
        protocol="dolev-strong",
        n=max(row["n"] for row in rows),
        rounds=max(row["relay_rounds"] for row in rows),
    )


def test_e1_wallclock(benchmark):
    benchmark(lambda: _run_instance(7, 3))
