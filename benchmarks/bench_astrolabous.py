"""E4 — Astrolabous TLE: parallel encryption, sequential decryption.

Claims: encryption needs q·τdec *independent* hash queries (one wrapper
batch); decryption needs exactly q·τdec *sequential* queries (τdec rounds
of q batches under the wrapper).
"""

import random

from conftest import emit, once

from repro.crypto.hashing import hash_bytes
from repro.tle.astrolabous import PuzzleSolver, ast_decrypt, ast_encrypt, ast_solve


def _hash(x: bytes) -> bytes:
    return hash_bytes(x, domain=b"bench-oracle")


def _counted_hash():
    count = {"n": 0}

    def fn(x: bytes) -> bytes:
        count["n"] += 1
        return _hash(x)

    return fn, count


def test_e4_query_counts(benchmark):
    def sweep():
        rows = []
        rng = random.Random(1)
        for tau in (1, 2, 4, 8):
            for q in (2, 8):
                enc_hash, enc_count = _counted_hash()
                ct = ast_encrypt(
                    b"m" * 32, difficulty=tau, rate=q, hash_fn=enc_hash, rng=rng
                )
                solve_hash, solve_count = _counted_hash()
                witness = ast_solve(ct, solve_hash)
                assert ast_decrypt(ct, witness) == b"m" * 32
                rows.append(
                    {
                        "tau_dec": tau,
                        "q": q,
                        "enc_queries": enc_count["n"],
                        "solve_queries": solve_count["n"],
                        "claimed_q*tau": q * tau,
                        "rounds_to_solve": tau,
                    }
                )
                assert enc_count["n"] == q * tau
                assert solve_count["n"] == q * tau
        return rows

    rows = once(benchmark, sweep)
    emit(
        "E4",
        "Astrolabous: enc and solve both cost q*tau queries; solve is sequential",
        rows,
        protocol="astrolabous",
        n=None,
        rounds=None,
    )


def test_e4_sequential_depth_is_tau_rounds(benchmark):
    """With q queries per round, solving takes exactly tau rounds."""

    def sweep():
        rng = random.Random(2)
        rows = []
        for tau in (1, 3, 5):
            q = 4
            ct = ast_encrypt(b"x", difficulty=tau, rate=q, hash_fn=_hash, rng=rng)
            solver = PuzzleSolver(ct)
            rounds = 0
            while not solver.solved:
                solver.step(_hash, queries=q)  # one round's budget
                rounds += 1
            rows.append({"tau_dec": tau, "q": q, "rounds_used": rounds})
            assert rounds == tau
        return rows

    rows = once(benchmark, sweep)
    emit("E4b", "Sequential unwinding: q-per-round budget => tau rounds", rows)


def test_e4_encrypt_wallclock(benchmark):
    rng = random.Random(3)
    benchmark(
        lambda: ast_encrypt(b"m" * 64, difficulty=8, rate=8, hash_fn=_hash, rng=rng)
    )


def test_e4_solve_wallclock(benchmark):
    rng = random.Random(4)
    ct = ast_encrypt(b"m" * 64, difficulty=8, rate=8, hash_fn=_hash, rng=rng)
    benchmark(lambda: ast_solve(ct, _hash))
