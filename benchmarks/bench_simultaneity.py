"""E7 — Simultaneity: copy-attack success rate, UBC vs ΠSBC.

Claim: the rushing copy attack (see honest message, submit it as your
own) succeeds with probability 1 over plain UBC and probability 0 over
ΠSBC, where the adversary's pre-release view contains only TLE
ciphertexts and masks.
"""

from conftest import emit, once

from repro.attacks.rushing import SBCCopyAttack, UBCCopyAttack
from repro.core import build_sbc_stack
from repro.functionalities.dummy import DummyBroadcastParty
from repro.functionalities.ubc import UnfairBroadcast
from repro.uc.environment import Environment
from repro.uc.session import Session

TRIALS = 10


def _ubc_trial(seed: int) -> bool:
    attack = UBCCopyAttack(attacker="P2")
    session = Session(seed=seed, adversary=attack)
    ubc = UnfairBroadcast(session)
    parties = {f"P{i}": DummyBroadcastParty(session, f"P{i}", ubc) for i in range(3)}
    secret = f"bid-{seed}".encode()
    Environment(session).run_round([("P0", lambda p: p.broadcast(secret))])
    received = [m for _, m, _ in parties["P1"].outputs]
    return received.count(secret) == 2  # the copy landed


def _sbc_trial(seed: int, mode: str) -> bool:
    secret = f"bid-{seed}".encode()
    attack = SBCCopyAttack(attacker="P3", is_plaintext=lambda m: m == secret)
    stack = build_sbc_stack(n=4, mode=mode, seed=seed, adversary=attack)
    stack.parties["P0"].broadcast(secret)
    stack.run_until_delivery()
    if attack.plaintexts_seen:
        return True  # adversary read the plaintext early: attack succeeded
    batch = [o[1] for o in stack.parties["P1"].outputs if o[0] == "Broadcast"][-1]
    return batch.count(secret) >= 2  # or its replay was accepted


def test_e7_copy_attack_rates(benchmark):
    def sweep():
        rows = []
        ubc_wins = sum(_ubc_trial(seed) for seed in range(TRIALS))
        rows.append(
            {"channel": "UBC", "trials": TRIALS, "copy_success_rate": ubc_wins / TRIALS}
        )
        assert ubc_wins == TRIALS
        for mode in ("hybrid", "composed"):
            wins = sum(_sbc_trial(seed, mode) for seed in range(TRIALS))
            rows.append(
                {
                    "channel": f"PiSBC ({mode})",
                    "trials": TRIALS,
                    "copy_success_rate": wins / TRIALS,
                }
            )
            assert wins == 0
        return rows

    rows = once(benchmark, sweep)
    emit(
        "E7",
        "Copy attack: 100% on UBC, 0% on PiSBC (simultaneity)",
        rows,
        protocol="sbc",
        n=3,
        rounds=None,
    )


def test_e7_ubc_trial_wallclock(benchmark):
    benchmark(lambda: _ubc_trial(1))


def test_e7_sbc_trial_wallclock(benchmark):
    benchmark(lambda: _sbc_trial(1, "hybrid"))
