"""E14/E17 — SessionPool and the multi-core sweep engine.

Claims: (i) a :class:`~repro.runtime.pool.SessionPool` run of 32 repeated
SBC sessions under the throughput runtime (batched driver, light trace)
is faster than the naive sequential loop on the reference backend;
(ii) pooled execution with full tracing produces **byte-identical** event
traces to the sequential loop, seed for seed (the runtime's determinism
contract); (iii) distinct seeds produce distinct executions; (iv) the
chunked process fan-out (:class:`~repro.runtime.sweep.ParallelSweep`)
reproduces the inline digests seed for seed, and on hosts with >= 4 real
cores finishes the sweep >= 2x faster than the inline executor.
"""

import os

from conftest import bench_record, emit, once

from repro.runtime import ParallelSweep, SessionPool, sequential_loop

SESSIONS = 32
PARAMS = dict(n=4, mode="composed", phi=5, delta=3, senders=2)

#: The >=2x speedup claim only binds with real cores behind the workers.
SPEEDUP_MIN_CORES = 4


def test_e14_pool_beats_sequential_loop(benchmark):
    def sweep():
        seeds = list(range(SESSIONS))
        # Two passes each, keep the faster: robust to background-load
        # spikes hitting one side of the comparison on shared runners.
        baseline = min(
            (sequential_loop(seeds, **PARAMS) for _ in range(2)),
            key=lambda report: report.wall_time_s,
        )
        pool = SessionPool(backend="pooled", trace="light", **PARAMS)
        pooled = min(
            (pool.run(seeds) for _ in range(2)),
            key=lambda report: report.wall_time_s,
        )
        batched = SessionPool(backend="batched", **PARAMS).run(seeds)
        rows = []
        for report in (baseline, pooled, batched):
            rows.append(
                {
                    "backend": report.backend,
                    "executor": report.executor,
                    "sessions": report.sessions,
                    "wall_s": round(report.wall_time_s, 4),
                    "per_session_ms": round(
                        report.wall_time_s / report.sessions * 1000, 3
                    ),
                    "rounds": report.total_rounds,
                    "messages": report.total_messages,
                    "speedup": round(baseline.wall_time_s / report.wall_time_s, 2),
                }
            )
        # The acceptance claim: the pooled sweep is demonstrably faster
        # than the cold sequential loop over the same >= 32 seeds.
        assert pooled.wall_time_s < baseline.wall_time_s
        # All executions completed and were round-for-round equivalent.
        assert pooled.total_rounds == baseline.total_rounds
        assert pooled.total_messages == baseline.total_messages
        return rows, baseline

    (rows, baseline) = once(benchmark, sweep)
    emit(
        "E14",
        "SessionPool over 32 SBC sessions: pooled/batched vs sequential loop",
        rows,
        protocol="sbc-pool",
        n=PARAMS["n"],
        rounds=baseline.total_rounds,
        backend="pooled",
        sessions=SESSIONS,
    )


def test_e14_pooled_traces_byte_identical(benchmark):
    def run():
        seeds = list(range(8))
        baseline = sequential_loop(seeds, **PARAMS)
        pooled = SessionPool(backend="pooled", **PARAMS).run(seeds)
        base_digests = [result.digest for result in baseline.results]
        pool_digests = [result.digest for result in pooled.results]
        assert base_digests == pool_digests
        assert len(set(base_digests)) == len(base_digests)  # seeds differ
        return len(base_digests)

    count = once(benchmark, run)
    bench_record(
        "E14b",
        protocol="sbc-pool",
        n=PARAMS["n"],
        rounds=None,
        backend="pooled",
        sessions=count,
        traces_identical=True,
    )


def test_e14_pool_wallclock(benchmark):
    pool = SessionPool(backend="batched", **PARAMS)
    counter = iter(range(100_000))
    benchmark(lambda: pool.run([next(counter)]))


def test_e17_process_fanout_sweep(benchmark):
    cores = os.cpu_count() or 1

    def sweep():
        seeds = list(range(SESSIONS))
        # Material sharing on: workers attach the preprocessing store's
        # fixed-base tables over shared memory instead of recomputing
        # them, so the cold-start warm-up tax drops off the critical
        # path.  verify()'s inline reference still computes its own
        # caches, so the digest check doubles as the cross-source
        # (shared == compute) determinism assertion.
        fanout = ParallelSweep(
            backend="pooled", executor="process", trace="full",
            material="shared", **PARAMS
        )
        plan = fanout.plan(len(seeds))
        # verify() runs the process sweep AND the inline reference, and
        # compares trace digests seed for seed — the determinism contract
        # must hold across process boundaries before any speedup counts.
        # Two passes: the faster one times the speedup, but *every* pass
        # must match (a divergence in the slower run is still a bug).
        verdicts = [fanout.verify(seeds) for _ in range(2)]
        assert all(v.matched for v in verdicts)
        verdict = min(verdicts, key=lambda v: v.report.wall_time_s)
        rows = [
            {
                "executor": report.executor,
                "sessions": report.sessions,
                "workers": report.workers,
                "chunksize": report.chunksize,
                "wall_s": round(report.wall_time_s, 4),
                "speedup": round(
                    verdict.reference.wall_time_s / report.wall_time_s, 2
                ),
            }
            for report in (verdict.reference, verdict.report)
        ]
        # The acceptance claim: >=2x over inline — but only where the
        # hardware can deliver it (process fan-out on a 1-2 core box is
        # all IPC overhead, which the record still documents honestly).
        if cores >= SPEEDUP_MIN_CORES:
            assert verdict.speedup >= 2.0, (
                f"process sweep only {verdict.speedup:.2f}x faster than "
                f"inline on {cores} cores"
            )
        return rows, plan, verdict

    (rows, plan, verdict) = once(benchmark, sweep)
    emit(
        "E17",
        f"Chunked process fan-out over {SESSIONS} SBC sessions ({cores} cores)",
        rows,
        protocol="sbc-sweep",
        n=PARAMS["n"],
        rounds=verdict.report.total_rounds,
        backend="pooled",
        material_source="shared",
        sessions=SESSIONS,
        executor="process",
        workers=plan.workers,
        chunksize=plan.chunksize,
        speedup_vs_inline=round(verdict.speedup, 3),
        digests_match_inline=verdict.matched,
        speedup_asserted=cores >= SPEEDUP_MIN_CORES,
        # Supervision counters (SUPERVISED_REQUIRED): a reference-perf
        # number that limped through retries or pool respawns is not
        # comparable to a clean one, so the record must say so.
        retries=verdict.report.summary().get("retries", 0),
        respawns=verdict.report.summary().get("respawns", 0),
        quarantined=verdict.report.summary().get("quarantined", 0),
    )
