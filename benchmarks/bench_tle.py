"""E5 — ΠTLE (Theorem 1): leak(Cl) = Cl + α, delay = Δ + 1.

Claims: a ciphertext becomes retrievable by its encryptor exactly Δ+1
rounds after the Enc request; every party (not only the encryptor) can
decrypt at τ; the ideal leakage horizon is Cl + α.
"""

from conftest import emit, once

from repro.core import build_tle_stack
from repro.functionalities.tle import MORE_TIME


def _timeline(mode: str, tau: int, seed: int = 4):
    stack = build_tle_stack(n=3, mode=mode, seed=seed)
    delta = getattr(stack.tle, "delta", None)
    stack.enc("P0", b"payload", tau)
    retrieve_round = None
    for round_index in range(tau + 3):
        triples = stack.parties["P0"].retrieve()
        if triples and retrieve_round is None:
            retrieve_round = round_index
        stack.run_rounds(1)
    (_m, c, _t) = stack.parties["P0"].retrieve()[0]
    dec_out = stack.parties["P1"].dec(c, tau)
    return stack, delta, retrieve_round, dec_out


def test_e5_retrieve_delay_and_cross_party_dec(benchmark):
    def sweep():
        rows = []
        for mode in ("ideal", "hybrid", "composed"):
            tau = 9
            stack, delta, retrieve_round, dec_out = _timeline(mode, tau)
            claimed = (delta + 1) if delta is not None else stack.tle.delay
            rows.append(
                {
                    "mode": mode,
                    "tau": tau,
                    "retrieve_round": retrieve_round,
                    "claimed_delay": claimed,
                    "cross_party_dec": dec_out == b"payload",
                }
            )
            assert retrieve_round == claimed, "Theorem 1: delay = Delta + 1"
            assert dec_out == b"payload"
        return rows

    rows = once(benchmark, sweep)
    emit(
        "E5",
        "PiTLE: retrieve at Enc+Delta+1; any party decrypts at tau",
        rows,
        protocol="tle",
        n=3,
        rounds=max(row["retrieve_round"] for row in rows),
    )


def test_e5_dec_gated_until_tau(benchmark):
    def sweep():
        rows = []
        for mode in ("hybrid", "composed"):
            stack = build_tle_stack(n=2, mode=mode, seed=5)
            tau = 10
            stack.enc("P0", b"m", tau)
            stack.run_rounds(6)
            (_m, c, _t) = stack.parties["P0"].retrieve()[0]
            early = stack.parties["P1"].dec(c, tau)
            stack.run_rounds(tau - stack.session.clock.time)
            late = stack.parties["P1"].dec(c, tau)
            rows.append(
                {"mode": mode, "dec_before_tau": str(early), "dec_at_tau": str(late)}
            )
            assert early == MORE_TIME and late == b"m"
        return rows

    rows = once(benchmark, sweep)
    emit("E5b", "Dec refuses before tau (More_Time), answers at tau", rows)


def test_e5_ideal_leakage_horizon(benchmark):
    def run():
        stack = build_tle_stack(n=2, mode="ideal", seed=6, alpha=2)
        stack.enc("P0", b"near", 2)
        stack.enc("P0", b"far", 30)
        leaked_now = {m for m, _c, _t in stack.tle.adv_leakage()}
        assert leaked_now == {b"near"}  # τ=2 ≤ leak(0)=0+2
        stack.run_rounds(28)
        leaked_later = {m for m, _c, _t in stack.tle.adv_leakage()}
        assert leaked_later == {b"near", b"far"}
        return True

    once(benchmark, run)
    emit(
        "E5c",
        "Ideal FTLE leakage: adversary reads plaintexts with tau <= Cl + alpha",
        [
            {"Cl": 0, "alpha": 2, "leaked": "tau<=2 only"},
            {"Cl": 28, "alpha": 2, "leaked": "all"},
        ],
    )


def test_e5_hybrid_wallclock(benchmark):
    benchmark(lambda: _timeline("hybrid", 9))


def test_e5_composed_wallclock(benchmark):
    benchmark(lambda: _timeline("composed", 9))
