"""E15 — Group arithmetic acceleration: fixed-base windows, multi-exp, BSGS.

Claims: (i) fixed-base exponentiation via the precomputed window table is
at least 3x faster than naive ``pow`` at test parameters (and the results
are bit-identical); (ii) baby-step/giant-step recovers small discrete
logs orders of magnitude faster than the former linear scan; (iii) the
accelerated paths speed up the real voting hot path (ballot proof
generation + verification).
"""

import random
import time

from conftest import emit, once

from repro.crypto.groups import TEST_GROUP, SchnorrGroup
from repro.crypto.zkp import ballot_prove, ballot_verify


def _fresh_group() -> SchnorrGroup:
    """A TEST_GROUP clone with cold caches (tables build per instance)."""
    return SchnorrGroup(p=TEST_GROUP.p, q=TEST_GROUP.q, g=TEST_GROUP.g)


def _best_of(repeats, fn):
    """Min wall time over ``repeats`` passes — robust to background load
    (a spike inflates a single pass, never the minimum)."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_e15_fixed_base_speedup(benchmark):
    def sweep():
        group = _fresh_group()
        rng = random.Random(15)
        exponents = [rng.randrange(1, group.q) for _ in range(2000)]

        naive_s, naive = _best_of(
            3, lambda: [pow(group.g, e, group.p) for e in exponents]
        )
        group.precompute_fixed_base()
        fast_s, fast = _best_of(3, lambda: [group.power_of_g(e) for e in exponents])

        assert naive == fast  # bit-identical results
        speedup = naive_s / fast_s
        assert speedup >= 3.0, f"fixed-base speedup only {speedup:.2f}x"
        return [
            {
                "op": "power_of_g",
                "exps": len(exponents),
                "naive_us": round(naive_s / len(exponents) * 1e6, 2),
                "windowed_us": round(fast_s / len(exponents) * 1e6, 2),
                "speedup": round(speedup, 2),
            }
        ]

    rows = once(benchmark, sweep)
    emit(
        "E15",
        "Fixed-base window table: >= 3x over naive pow, bit-identical",
        rows,
        protocol="crypto-groups",
        n=None,
        rounds=None,
        op="power_of_g",
    )


def test_e15_bsgs_vs_linear(benchmark):
    def sweep():
        group = TEST_GROUP
        rows = []
        for exponent in (1_000, 50_000, 900_000):
            target = group.power_of_g(exponent)

            start = time.perf_counter()
            found = group.discrete_log_small(target)
            bsgs_s = time.perf_counter() - start
            assert found == exponent

            # The former linear scan, timed on the same target.
            start = time.perf_counter()
            accumulator = 1
            linear = None
            for candidate in range(1 << 20):
                if accumulator == target:
                    linear = candidate
                    break
                accumulator = group.mul(accumulator, group.g)
            linear_s = time.perf_counter() - start
            assert linear == exponent

            rows.append(
                {
                    "exponent": exponent,
                    "bsgs_ms": round(bsgs_s * 1000, 3),
                    "linear_ms": round(linear_s * 1000, 3),
                    "speedup": round(linear_s / bsgs_s, 1),
                }
            )
        # The tally-sized cases must be dramatically faster.
        assert rows[-1]["speedup"] > 10
        return rows

    rows = once(benchmark, sweep)
    emit(
        "E15b",
        "Baby-step/giant-step discrete log vs the former linear scan",
        rows,
        protocol="crypto-groups",
        n=None,
        rounds=None,
        op="discrete_log_small",
    )


def test_e15_ballot_hot_path(benchmark):
    def sweep():
        group = TEST_GROUP
        rng = random.Random(16)
        choices = list(range(4))
        seed_elt = group.random_element(rng)
        trials = 40

        start = time.perf_counter()
        checked = 0
        for _ in range(trials):
            secret = group.random_scalar(rng)
            w = group.power_of_g(secret)
            vote = rng.choice(choices)
            ballot = group.mul(group.exp(seed_elt, secret), group.power_of_g(vote))
            proof = ballot_prove(
                group, seed_elt, w, ballot, secret, vote, choices, rng
            )
            assert ballot_verify(group, seed_elt, w, ballot, proof, choices)
            checked += 1
        elapsed = time.perf_counter() - start
        return [
            {
                "ballots": checked,
                "choices": len(choices),
                "prove_verify_ms": round(elapsed / trials * 1000, 3),
            }
        ]

    rows = once(benchmark, sweep)
    emit(
        "E15c",
        "Voting hot path: ballot OR-proof prove+verify under acceleration",
        rows,
        protocol="voting-zkp",
        n=None,
        rounds=None,
        op="ballot_prove+verify",
    )


def test_e15_fixed_base_wallclock(benchmark):
    group = TEST_GROUP
    group.precompute_fixed_base()
    rng = random.Random(17)
    benchmark(lambda: group.power_of_g(rng.randrange(1, group.q)))


# ---------------------------------------------------------------------------
# E20 — Arithmetic tier: gmpy2 vs pure-python primitives
# ---------------------------------------------------------------------------


def test_e20_arith_backend_speedup(benchmark):
    """E20: native (gmpy2) vs pure-python big-integer arithmetic.

    Asserted only where gmpy2 is importable (the optional ``native``
    extra); a python-only host records an honest fallback row instead —
    values are identical across tiers either way, so the record is purely
    about speed.
    """
    from repro.crypto.groups import (
        GROUP_2048,
        available_arith_backends,
        get_arith_backend,
        set_arith_backend,
    )

    have_gmpy2 = "gmpy2" in available_arith_backends()

    def sweep():
        rng = random.Random(20)
        group = GROUP_2048
        exponents = [rng.randrange(1, group.q) for _ in range(40)]
        bases = [pow(group.g, e, group.p) for e in exponents[:8]]
        pairs = tuple(zip(bases, exponents[:8]))

        before = get_arith_backend().name
        timings = {}
        results = {}
        try:
            for name in ("python", "gmpy2") if have_gmpy2 else ("python",):
                backend = set_arith_backend(name)
                scratch = SchnorrGroup(p=group.p, q=group.q, g=group.g)
                modexp_s, modexp = _best_of(
                    2,
                    lambda backend=backend: [
                        backend.powmod(base, exponent, group.p)
                        for base, exponent in zip(bases * 5, exponents)
                    ],
                )
                multi_s, multi = _best_of(2, lambda scratch=scratch: scratch.multi_exp(pairs))
                timings[name] = (modexp_s, multi_s)
                results[name] = (modexp, multi)
        finally:
            set_arith_backend(before)

        rows = []
        if have_gmpy2:
            assert results["gmpy2"] == results["python"]  # value parity
            modexp_speedup = timings["python"][0] / timings["gmpy2"][0]
            assert modexp_speedup >= 1.2, (
                f"gmpy2 modexp only {modexp_speedup:.2f}x over python"
            )
            for name in ("python", "gmpy2"):
                modexp_s, multi_s = timings[name]
                rows.append(
                    {
                        "backend": name,
                        "modexp_2048_ms": round(modexp_s * 1000, 2),
                        "multi_exp_8_ms": round(multi_s * 1000, 2),
                        "modexp_speedup": round(
                            timings["python"][0] / modexp_s, 2
                        ),
                    }
                )
        else:
            modexp_s, multi_s = timings["python"]
            rows.append(
                {
                    "backend": "python",
                    "modexp_2048_ms": round(modexp_s * 1000, 2),
                    "multi_exp_8_ms": round(multi_s * 1000, 2),
                    "modexp_speedup": "n/a (gmpy2 unavailable)",
                }
            )
        return rows

    rows = once(benchmark, sweep)
    emit(
        "E20",
        "Arithmetic tier: gmpy2 vs pure-python (2048-bit primitives)",
        rows,
        protocol="crypto-arith",
        n=None,
        rounds=None,
        op="powmod+multi_exp",
        gmpy2_available=have_gmpy2,
        speedup_asserted=have_gmpy2,
    )
