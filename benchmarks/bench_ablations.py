"""A1–A3 — Ablations of the design choices DESIGN.md calls out.

* A1: realizing the UBC layer with actual Dolev–Strong runs (Fact 1 made
  concrete) — what the signature-based layer costs in latency and
  signatures, and the Δ budget ΠSBC must then carry.
* A2: scaling the composed SBC stack in n — rounds stay constant while
  oracle work and messages grow.
* A3: the wrapper rate q — more parallelism per round changes the query
  *points* but never the round count (sequential depth is the resource).
"""

import time

from conftest import emit, once

from repro.core import build_sbc_stack
from repro.core.stacks import MSG_LEN_SBC
from repro.functionalities.random_oracle import RandomOracle
from repro.functionalities.tle import TimeLockEncryption
from repro.protocols.ds_ubc import DolevStrongUBCAdapter
from repro.protocols.sbc_protocol import SBCParty, SBCProtocolAdapter
from repro.uc.environment import Environment
from repro.uc.session import Session


def _sbc_over_ds(n: int, t: int, phi: int = 6, seed: int = 9):
    session = Session(seed=seed)
    pids = [f"P{i}" for i in range(n)]
    ubc = DolevStrongUBCAdapter(session, pids=pids, t=t, fid="DSUBC")
    tle = TimeLockEncryption(session, leak=lambda cl: cl + 1, delay=1, fid="FTLE")
    oracle = RandomOracle(session, fid="FRO:sbc", digest_size=MSG_LEN_SBC)
    delta = 3 + t + 2  # budget for the DS latency
    sbc = SBCProtocolAdapter(
        session, ubc=ubc, tle=tle, oracle=oracle, phi=phi, delta=delta
    )
    parties = {pid: SBCParty(session, pid, sbc) for pid in pids}
    for party in parties.values():
        ubc.attach(party)
    env = Environment(session)
    parties["P0"].broadcast(b"msg")
    rounds = 0
    limit = phi + delta + t + 6
    while not all(p.outputs for p in parties.values()):
        env.run_rounds(1)
        rounds += 1
        assert rounds <= limit
    return session, rounds - 1, delta


def test_a1_ds_backed_ubc_cost(benchmark):
    def sweep():
        rows = []
        for n, t in ((3, 1), (4, 2), (5, 3)):
            session, final_round, delta = _sbc_over_ds(n, t)
            rows.append(
                {
                    "n": n,
                    "t": t,
                    "ds_latency": t + 2,
                    "delta_budgeted": delta,
                    "final_round": final_round,
                    "signatures": session.metrics.get("sig.sign"),
                    "verifies": session.metrics.get("sig.verify"),
                    "p2p_messages": session.metrics.get("messages.p2p"),
                }
            )
        return rows

    rows = once(benchmark, sweep)
    # Latency grows with t (signature chains), never with message count:
    assert rows[0]["final_round"] < rows[-1]["final_round"]
    assert all(row["signatures"] > 0 for row in rows)
    emit(
        "A1",
        "SBC over signature-backed Dolev-Strong UBC: latency/signature cost",
        rows,
    )


def test_a2_scaling_in_n(benchmark):
    def sweep():
        rows = []
        for n in (3, 5, 8, 12):
            start = time.perf_counter()
            stack = build_sbc_stack(n=n, mode="composed", seed=10)
            for i in range(min(3, n)):
                stack.parties[f"P{i}"].broadcast(f"m{i}".encode())
            stack.run_until_delivery()
            elapsed = time.perf_counter() - start
            metrics = stack.session.metrics
            rows.append(
                {
                    "n": n,
                    "rounds": stack.phi + stack.delta,
                    "ro_points": metrics.get("ro.points"),
                    "messages": metrics.get("messages.total"),
                    "wall_s": elapsed,
                }
            )
        return rows

    rows = once(benchmark, sweep)
    assert len({row["rounds"] for row in rows}) == 1  # constant rounds
    assert rows[-1]["ro_points"] > rows[0]["ro_points"]  # work grows in n
    emit(
        "A2",
        "Composed SBC scaling: rounds constant in n, work linearish",
        rows,
        protocol="sbc-composed",
        n=max(row["n"] for row in rows),
        rounds=max(row["rounds"] for row in rows),
    )


def test_a3_wrapper_rate_sweep(benchmark):
    def sweep():
        rows = []
        for q in (2, 4, 8):
            stack = build_sbc_stack(n=4, mode="composed", seed=11, q=q)
            stack.parties["P0"].broadcast(b"m")
            stack.run_until_delivery()
            metrics = stack.session.metrics
            rows.append(
                {
                    "q": q,
                    "rounds": stack.phi + stack.delta,
                    "ro_batches": metrics.get("ro.batches"),
                    "ro_points": metrics.get("ro.points"),
                }
            )
        return rows

    rows = once(benchmark, sweep)
    assert len({row["rounds"] for row in rows}) == 1
    # Chains are q·τ long: more q, more points — but identical rounds.
    assert rows[-1]["ro_points"] > rows[0]["ro_points"]
    emit("A3", "Wrapper rate q: points scale with q, rounds do not", rows)


def test_a1_wallclock(benchmark):
    benchmark(lambda: _sbc_over_ds(3, 1))
