"""E21 — Batch verification: one RLC multi-exp vs N per-item checks.

Claims: (i) at production parameters (GROUP_2048) batch-verifying N=64
Schnorr signatures through one random-linear-combination multi-exp is at
least 3x faster than verifying them one by one (asserted on the 4-vCPU
reference runner; recorded honestly elsewhere); (ii) the verdict vector
is identical to per-item verification, including under forgeries, where
bisection still beats N full verifications while naming the culprits.
"""

import os
import random
import time

from conftest import emit, once

from repro.crypto.batch import verify_batch
from repro.crypto.groups import GROUP_2048, TEST_GROUP, SchnorrGroup
from repro.crypto.schnorr import (
    SchnorrSignature,
    schnorr_batch_item,
    schnorr_keygen,
    schnorr_sign,
    schnorr_verify,
)

N_ITEMS = 64
SPEEDUP_MIN_CORES = 4


def _best_of(repeats, fn):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _signed_batch(group: SchnorrGroup, count: int, forge=()):
    """``count`` (keypair, message, signature) triples over ``group``."""
    rng = random.Random(21)
    batch = []
    for index in range(count):
        keypair = schnorr_keygen(rng, group=group)
        message = f"bench-{index}".encode()
        signature = schnorr_sign(keypair, message, rng)
        if index in forge:
            signature = SchnorrSignature(r=signature.r, s=(signature.s + 1) % group.q)
        batch.append((keypair, message, signature))
    return batch


def _measure(group: SchnorrGroup, label: str, forge=()):
    group.warm_up()  # isolate verification cost from table construction
    batch = _signed_batch(group, N_ITEMS, forge=forge)
    items = [
        schnorr_batch_item(group, kp.public, message, signature)
        for kp, message, signature in batch
    ]

    per_item_s, per_item = _best_of(
        2,
        lambda: [
            schnorr_verify(kp.group, kp.public, message, signature)
            for kp, message, signature in batch
        ],
    )
    batch_s, report = _best_of(2, lambda: verify_batch(group, items))

    assert tuple(per_item) == report.verdicts  # exact verdict parity
    assert report.culprits == tuple(sorted(forge))
    speedup = per_item_s / batch_s
    return {
        "group": label,
        "items": N_ITEMS,
        "forged": len(forge),
        "evaluations": report.evaluations,
        "per_item_ms": round(per_item_s * 1000, 2),
        "batched_ms": round(batch_s * 1000, 2),
        "speedup": round(speedup, 2),
    }


def test_e21_batch_verify_speedup(benchmark):
    cores = os.cpu_count() or 1

    def sweep():
        rows = [
            _measure(GROUP_2048, "2048-bit"),
            _measure(GROUP_2048, "2048-bit", forge={17}),
            # Test parameters: honest record — at 256 bits per-item pow is
            # already cheap, so the RLC win is real but much smaller.
            _measure(
                SchnorrGroup(p=TEST_GROUP.p, q=TEST_GROUP.q, g=TEST_GROUP.g),
                "256-bit",
            ),
        ]
        # The acceptance claim holds at production parameters on the
        # reference runner; slower/odd hosts still record the honest rows.
        if cores >= SPEEDUP_MIN_CORES:
            clean = rows[0]["speedup"]
            assert clean >= 3.0, (
                f"batch verify only {clean:.2f}x faster than per-item at "
                f"N={N_ITEMS} on 2048-bit parameters"
            )
        return rows

    rows = once(benchmark, sweep)
    emit(
        "E21",
        f"RLC batch verification vs per-item, N={N_ITEMS} Schnorr signatures",
        rows,
        protocol="crypto-batch",
        n=N_ITEMS,
        rounds=None,
        items=N_ITEMS,
        speedup_2048=rows[0]["speedup"],
        speedup_256=rows[2]["speedup"],
        speedup_asserted=cores >= SPEEDUP_MIN_CORES,
    )
