"""E9 — Round complexity vs the SBC lineage (Section 1's comparison).

Claim: [CGMA85] linear rounds, [CR87] logarithmic, [Gen00]/[FKL08]/
[Hev06] constant — all honest-majority, mostly without composability —
versus this paper: constant rounds (Φ+Δ, independent of n and t), UC,
adaptive, dishonest majority.  The "this-paper" row is *measured* by
running ΠSBC; the rest are the papers' asymptotics as analytic models.
"""

from conftest import emit, once

from repro.baselines.rounds_models import COMPLEXITY_MODELS, complexity_table
from repro.core import build_sbc_stack


def _measured_sbc_rounds(n: int, phi: int = 4, delta: int = 3, seed: int = 8) -> int:
    stack = build_sbc_stack(n=n, mode="composed", seed=seed, phi=phi, delta=delta)
    stack.parties["P0"].broadcast(b"m")
    rounds = -1
    while not all(p.outputs for p in stack.parties.values()):
        stack.run_rounds(1)  # executes clock round `rounds + 1`
        rounds += 1
        assert rounds < phi + delta + 3
    return rounds


def _measured_gen00_rounds(n: int, seed: int = 8) -> int:
    from repro.baselines.gennaro import GennaroSBCNetwork
    from repro.uc.environment import Environment
    from repro.uc.session import Session

    session = Session(seed=seed)
    net = GennaroSBCNetwork.build(session, n=n)
    env = Environment(session)
    env.run_round([("P0", lambda p: p.broadcast(b"m"))])
    rounds = 0
    while not all(p.outputs for p in net.parties.values()):
        env.run_rounds(1)
        assert rounds <= 6
        rounds += 1
    return rounds


def test_e9_lineage_table(benchmark):
    def sweep():
        rows = complexity_table([4, 16, 64])
        measured = {n: _measured_sbc_rounds(n) for n in (4, 8)}
        for n, rounds in measured.items():
            rows.append(
                {
                    "model": "this-paper (measured)",
                    "n": n,
                    "max_t": n - 1,
                    "rounds": rounds,
                    "messages": "-",
                    "composable": True,
                    "adaptive": True,
                }
            )
        for n in (4, 8):
            rows.append(
                {
                    "model": "Gen00 (measured)",
                    "n": n,
                    "max_t": (n - 1) // 2,
                    "rounds": _measured_gen00_rounds(n),
                    "messages": "-",
                    "composable": False,
                    "adaptive": False,
                }
            )
        return rows, measured

    rows, measured = once(benchmark, sweep)
    # The measured protocol is constant-round and matches the model:
    assert len(set(measured.values())) == 1
    assert next(iter(measured.values())) == COMPLEXITY_MODELS["this-paper"].rounds(4, 3)
    # Shape checks across the lineage:
    big, small = 64, 4
    table = {(r["model"], r["n"]): r for r in rows if isinstance(r["rounds"], int)}
    assert table[("CGMA85", big)]["rounds"] > 8 * table[("CGMA85", small)]["rounds"]
    assert table[("this-paper", big)]["rounds"] == table[("this-paper", small)]["rounds"]
    emit(
        "E9",
        "SBC lineage: rounds/messages/tolerance/composability (models + measured)",
        rows,
        columns=["model", "n", "max_t", "rounds", "messages", "composable", "adaptive"],
        protocol="sbc-lineage",
        n=max(row["n"] for row in rows),
        rounds=None,
    )


def test_e9_measured_wallclock(benchmark):
    benchmark(lambda: _measured_sbc_rounds(4))
