"""Bench-trajectory regression guard: diff two reference-perf artifacts.

CI's ``reference-perf`` job uploads the ``bench.v1`` JSON records of the
speedup-gated experiments; this script compares the current run's
records against the previous run's and fails (exit 1) when any guarded
experiment's wall time regressed by more than the threshold — i.e. a
>30% throughput regression by default.  A missing baseline (first run,
expired artifacts) is reported and exits 0: the guard accumulates a
trajectory, it does not invent one.

Usage::

    python benchmarks/compare_trajectory.py \
        --baseline previous-results/ --current benchmarks/results/ \
        [--threshold 0.30] [--experiments E14,E17,E18,E19]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional, Sequence, Tuple

#: Experiments whose wall time the guard watches by default: the pooled
#: sweep (E14), process fan-out (E17), material attach (E18) and online
#: pool spending (E19) — the cross-PR performance trajectory.
GUARDED_EXPERIMENTS = ("E14", "E17", "E18", "E19")

#: Allowed relative wall-time growth before the guard fails (0.30 =
#: current may take up to 1.3x the baseline's wall time).
DEFAULT_THRESHOLD = 0.30


def load_record(root: pathlib.Path, experiment: str) -> Optional[Dict]:
    """The experiment's ``bench.v1`` record under ``root``, or ``None``."""
    path = root / f"BENCH_{experiment}.json"
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if record.get("schema") != "bench.v1":
        return None
    return record


def compare(
    baseline_dir: pathlib.Path,
    current_dir: pathlib.Path,
    threshold: float = DEFAULT_THRESHOLD,
    experiments: Sequence[str] = GUARDED_EXPERIMENTS,
) -> Tuple[List[str], List[str]]:
    """Diff guarded experiments; returns ``(report_lines, regressions)``.

    A comparison only happens when both sides carry a positive wall
    time *and* ran on the same cpu count — a 1-core dev record against
    a 4-core CI record says nothing about the code.
    """
    lines: List[str] = []
    regressions: List[str] = []
    for experiment in experiments:
        baseline = load_record(baseline_dir, experiment)
        current = load_record(current_dir, experiment)
        if current is None:
            lines.append(f"{experiment}: no current record (skipped)")
            continue
        if baseline is None:
            lines.append(f"{experiment}: no baseline record (first run?)")
            continue
        base_s = baseline.get("wall_time_s") or 0
        cur_s = current.get("wall_time_s") or 0
        if base_s <= 0 or cur_s <= 0:
            lines.append(f"{experiment}: unusable wall times (skipped)")
            continue
        if baseline.get("cpus") != current.get("cpus"):
            lines.append(
                f"{experiment}: cpu counts differ "
                f"({baseline.get('cpus')} vs {current.get('cpus')}; skipped)"
            )
            continue
        ratio = cur_s / base_s
        verdict = "ok"
        if ratio > 1 + threshold:
            verdict = f"REGRESSION (> {1 + threshold:.2f}x)"
            regressions.append(
                f"{experiment}: {base_s:.3f}s -> {cur_s:.3f}s ({ratio:.2f}x)"
            )
        lines.append(
            f"{experiment}: {base_s:.3f}s -> {cur_s:.3f}s ({ratio:.2f}x) {verdict}"
        )
    return lines, regressions


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >threshold wall-time regressions between two "
        "bench-artifact directories"
    )
    parser.add_argument("--baseline", required=True, type=pathlib.Path,
                        help="directory holding the previous run's BENCH_*.json")
    parser.add_argument("--current", required=True, type=pathlib.Path,
                        help="directory holding this run's BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed relative wall-time growth (default 0.30)")
    parser.add_argument(
        "--experiments", default=",".join(GUARDED_EXPERIMENTS),
        help="comma-separated experiment ids to guard",
    )
    args = parser.parse_args(argv)
    if not args.baseline.is_dir():
        print(f"no baseline directory at {args.baseline}; nothing to compare")
        return 0
    experiments = [e for e in args.experiments.split(",") if e]
    lines, regressions = compare(
        args.baseline, args.current, threshold=args.threshold,
        experiments=experiments,
    )
    for line in lines:
        print(line)
    if regressions:
        print(f"\n{len(regressions)} experiment(s) regressed past "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
