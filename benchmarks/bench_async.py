"""E22 — service mode: N concurrent sessions on one asyncio event loop.

Claims: (i) :class:`~repro.runtime.aio.AsyncSessionHost` sustains >= 1000
concurrent coroutine sessions on a single event loop, with sessions
finishing out of submission order (the interleaving evidence) and a
``sessions/sec`` headline recorded for the cross-PR trajectory; (ii) a
hosted full-protocol voting service stays digest-equal to the
synchronous reference trial, seed for seed — concurrency never touches
the trace; (iii) with the preprocessing store attached, concurrently
hosted online sessions spend **disjoint** pool slices (zero
double-spend, checked span-by-span via
:func:`~repro.runtime.aio.online_ranges_disjoint`).

The 1000-session headline uses the full-protocol *voting* coroutine
only for a small slice and a lightweight awaited workload for the bulk —
the claim under test is host scalability, and the record says exactly
which sessions ran which workload.
"""

import asyncio
import os
import tempfile

from conftest import emit, once

from repro.crypto.groups import TEST_GROUP
from repro.runtime import (
    AsyncSessionHost,
    MaterialStore,
    SweepConfig,
    async_voting_session,
    online_ranges_disjoint,
    run_voting_trial,
)

#: The concurrency headline: sessions hosted on one loop in one process.
HOST_SESSIONS = 1000
#: Full-protocol slices (digest check, online spend) stay small so the
#: bench is honest on small runners; the record carries both counts.
VOTING_SESSIONS = 8
ONLINE_SESSIONS = 8


async def _hop_session(seed):
    """Heterogeneous awaited workload: seed decides the await count."""
    hops = (seed % 11) + 1
    for _ in range(hops):
        await asyncio.sleep(0)
    return (seed, hops)


def test_e22_service_mode_concurrency(benchmark):
    def run():
        # (i) 1000 concurrent sessions, one loop, one process.
        host = AsyncSessionHost(
            _hop_session,
            config=SweepConfig(backend="async", executor="inline", warmup=False),
        )
        bulk = host.run(range(HOST_SESSIONS))
        assert bulk.sessions == HOST_SESSIONS
        assert sorted(bulk.completion_order) == list(range(HOST_SESSIONS))
        # Short sessions overtake long ones only under real interleaving.
        assert bulk.interleaved > HOST_SESSIONS // 2

        # (ii) hosted full-protocol voting == the synchronous reference,
        # digest for digest, while VOTING_SESSIONS of them interleave.
        service = AsyncSessionHost(
            async_voting_session,
            config=SweepConfig(backend="async", executor="inline"),
        )
        voting = service.run(range(VOTING_SESSIONS))
        assert voting.sessions == VOTING_SESSIONS
        for seed, result in zip(range(VOTING_SESSIONS), voting.results):
            reference = run_voting_trial(seed)
            assert result.digest == reference.digest, (
                f"hosted session {seed} diverged from the sync reference"
            )
            assert result.outputs == reference.outputs

        # (iii) online service: every concurrent session leases its own
        # pool slot; the spent ranges must be pairwise disjoint per pool.
        with tempfile.TemporaryDirectory() as root:
            os.environ["REPRO_MATERIAL_DIR"] = root
            try:
                MaterialStore(root).build(
                    [TEST_GROUP], nonces=ONLINE_SESSIONS * 8, feldman=ONLINE_SESSIONS * 2
                )
                online_host = AsyncSessionHost(
                    async_voting_session,
                    config=SweepConfig(
                        backend="async",
                        executor="inline",
                        material="shared",
                        online=True,
                    ),
                )
                online = online_host.run(range(ONLINE_SESSIONS))
            finally:
                del os.environ["REPRO_MATERIAL_DIR"]
        assert online.sessions == ONLINE_SESSIONS
        assert online.online_spend is not None
        assert online.online_spend["nonces_spent"] > 0
        disjoint, spans = online_ranges_disjoint(online.results)
        assert spans > 0, "online host recorded no spend spans to check"
        assert disjoint, "concurrent sessions double-spent a pool slice"

        rows = [
            {
                "workload": "awaited no-op x1000",
                "sessions": bulk.sessions,
                "wall_s": round(bulk.wall_time_s, 4),
                "sessions_per_s": round(bulk.sessions_per_s, 1),
                "interleaved": bulk.interleaved,
            },
            {
                "workload": "voting (digest-checked)",
                "sessions": voting.sessions,
                "wall_s": round(voting.wall_time_s, 4),
                "sessions_per_s": round(voting.sessions_per_s, 1),
                "interleaved": voting.interleaved,
            },
            {
                "workload": "voting online (disjoint spend)",
                "sessions": online.sessions,
                "wall_s": round(online.wall_time_s, 4),
                "sessions_per_s": round(online.sessions_per_s, 1),
                "interleaved": online.interleaved,
            },
        ]
        stats = {
            "bulk": bulk,
            "voting": voting,
            "online": online,
            "spend_spans": spans,
        }
        return rows, stats

    (rows, stats) = once(benchmark, run)
    emit(
        "E22",
        f"AsyncSessionHost: {HOST_SESSIONS} concurrent sessions on one loop",
        rows,
        protocol="service-host",
        n=3,
        rounds=None,
        backend="async",
        material_source="shared",
        online=True,
        sessions=HOST_SESSIONS,
        sessions_per_s=round(stats["bulk"].sessions_per_s, 1),
        voting_sessions=VOTING_SESSIONS,
        voting_sessions_per_s=round(stats["voting"].sessions_per_s, 2),
        online_sessions=ONLINE_SESSIONS,
        spend_spans_checked=stats["spend_spans"],
        interleaved=stats["bulk"].interleaved,
    )
