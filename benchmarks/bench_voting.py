"""E11 — Self-tallying voting (Theorem 4): correct tallies, fairness timing.

Claims: ΠSTVS self-tallies correctly for any voter/candidate mix without
a trusted control voter; no tally information exists before
``t_tally − α`` (fairness); cost scales with voters × candidates.
"""

import time

from conftest import emit, once

from repro.core import build_voting_stack


def _election(voters: int, candidates, votes, seed: int = 9, mode: str = "hybrid"):
    stack = build_voting_stack(
        voters=voters, mode=mode, seed=seed, candidates=candidates
    )
    if mode == "ideal":
        stack.service.init()
    else:
        for authority in stack.authorities.values():
            authority.deal()
        stack.run_rounds(1)
    for pid, candidate in votes:
        stack.parties[pid].vote(candidate)
    stack.run_until_result()
    return stack


def test_e11_tally_correctness_sweep(benchmark):
    def sweep():
        rows = []
        for voters, candidates in ((3, ("yes", "no")), (5, ("a", "b", "c")), (7, ("x", "y"))):
            pattern = [
                (f"V{i}", candidates[i % len(candidates)]) for i in range(voters)
            ]
            expected = {}
            for _pid, cand in pattern:
                expected[cand] = expected.get(cand, 0) + 1
            for cand in candidates:
                expected.setdefault(cand, 0)
            start = time.perf_counter()
            stack = _election(voters, candidates, pattern)
            elapsed = time.perf_counter() - start
            results = stack.results()
            assert all(r == expected for r in results.values()), results
            rows.append(
                {
                    "voters": voters,
                    "candidates": len(candidates),
                    "tally": str(expected),
                    "all_voters_agree": True,
                    "wall_s": elapsed,
                }
            )
        return rows

    rows = once(benchmark, sweep)
    emit(
        "E11",
        "PiSTVS self-tally correct for every voter/candidate mix",
        rows,
        protocol="voting",
        n=max(row["voters"] for row in rows),
        rounds=None,
    )


def test_e11_fairness_no_early_tally(benchmark):
    """In the ideal world the Result leak appears exactly at t_tally − α;
    in the protocol world no adversary-visible artifact reveals votes
    before the SBC release."""

    def run():
        stack = _election(
            3, ("yes", "no"), [("V0", "yes"), ("V1", "no"), ("V2", "yes")],
            mode="ideal", seed=10,
        )
        service = stack.service
        leaks = [
            e
            for e in stack.session.log.filter(kind="leak", source="FVS")
            if e.detail and e.detail[0] == "Result"
        ]
        assert leaks
        first = min(e.time for e in leaks)
        assert first == service.t_tally - service.alpha
        return {
            "t_tally": service.t_tally,
            "alpha": service.alpha,
            "first_result_leak": first,
        }

    row = once(benchmark, run)
    emit("E11b", "Fairness: the result exists no earlier than t_tally - alpha", [row])


def test_e11_protocol_hides_votes_from_adversary(benchmark):
    def run():
        stack = _election(
            3, ("yes", "no"), [("V0", "yes"), ("V1", "no"), ("V2", "yes")], seed=11
        )
        # Scan everything the adversary observed for vote identifiers
        # before the tally round: honest votes travel only inside SBC.
        for _fid, detail in stack.session.adversary.observed:
            text = repr(detail)
            assert "'yes'" not in text and "'no'" not in text
        return True

    once(benchmark, run)
    emit(
        "E11c",
        "Adversary view contains no vote values (votes ride the SBC channel)",
        [{"leaks_scanned": True, "vote_values_found": 0}],
    )


def test_e11_wallclock(benchmark):
    benchmark(
        lambda: _election(3, ("yes", "no"), [("V0", "yes"), ("V1", "no"), ("V2", "yes")])
    )
