"""E10 — DURS (Theorem 3): an unbiasable beacon vs the naive strawman.

Claim: a last-mover biases the commit-in-the-clear beacon with
probability 1; against ΠDURS its blind submission leaves the output bit
statistically fair; agreement and the ∆-round delivery hold throughout.
"""

from conftest import emit, once

from repro.analysis.stats import bit_bias, uniformity_pvalue
from repro.attacks.bias import BiasingContributor
from repro.baselines.naive_beacon import build_naive_beacon
from repro.core import build_durs_stack
from repro.uc.environment import Environment
from repro.uc.session import Session

TRIALS = 24


def _naive_trial(seed: int) -> bytes:
    attack = BiasingContributor(attacker="P3", target_bit=0, expected_honest=3)
    session = Session(seed=seed, adversary=attack)
    parties = build_naive_beacon(session, [f"P{i}" for i in range(4)], close_round=2)
    env = Environment(session)
    env.run_round([(pid, lambda p: p.contribute()) for pid in parties])
    env.run_rounds(3)
    return parties["P0"].urs


def _durs_trial(seed: int) -> bytes:
    attack = BiasingContributor(attacker="P3", target_bit=0, phi=3)
    stack = build_durs_stack(n=4, mode="hybrid", seed=seed, adversary=attack)
    stack.parties["P0"].urs_request()
    stack.run_until_urs()
    return stack.urs_values()["P0"]


def test_e10_bias_rates(benchmark):
    def sweep():
        naive = [_naive_trial(seed) for seed in range(TRIALS)]
        durs = [_durs_trial(seed) for seed in range(1000, 1000 + TRIALS)]
        return naive, durs

    naive, durs = once(benchmark, sweep)
    naive_rate = bit_bias(naive, bit=0)
    durs_rate = bit_bias(durs, bit=0)
    rows = [
        {
            "beacon": "naive (UBC, clear)",
            "trials": TRIALS,
            "P[bit=1]": naive_rate,
            "p_value_fair": uniformity_pvalue(naive, bit=0),
        },
        {
            "beacon": "PiDURS (SBC)",
            "trials": TRIALS,
            "P[bit=1]": durs_rate,
            "p_value_fair": uniformity_pvalue(durs, bit=0),
        },
    ]
    assert naive_rate == 0.0  # attacker forced the bit in every run
    assert 0.2 <= durs_rate <= 0.8  # statistically fair
    emit(
        "E10",
        "Last-mover bias: total on the naive beacon, absent on DURS",
        rows,
        protocol="durs",
        n=4,
        rounds=None,
    )


def test_e10_delivery_delay(benchmark):
    """FDURS delivers exactly ∆ rounds after the first request."""

    def sweep():
        rows = []
        for phi, delta in ((2, 5), (3, 6), (4, 9)):
            stack = build_durs_stack(n=3, mode="hybrid", seed=2, phi=phi, delta=delta)
            stack.parties["P0"].urs_request()
            rounds = -1
            while stack.urs_values()["P0"] is None:
                stack.run_rounds(1)  # executes clock round `rounds + 1`
                rounds += 1
                assert rounds < delta + 3
            rows.append({"phi": phi, "delta": delta, "delivered_round": rounds})
            assert rounds == delta
        return rows

    rows = once(benchmark, sweep)
    emit("E10b", "PiDURS delivery at exactly Delta rounds after first request", rows)


def test_e10_agreement(benchmark):
    def run():
        stack = build_durs_stack(n=5, mode="hybrid", seed=3)
        for pid in ("P0", "P2", "P4"):
            stack.parties[pid].urs_request()
        stack.run_until_urs()
        stack.run_rounds(2)
        values = {party.urs for party in stack.parties.values()}
        assert len(values) == 1
        return values

    once(benchmark, run)
    emit(
        "E10c",
        "All parties (requesters or not) agree on one URS",
        [{"n": 5, "distinct_urs_values": 1}],
    )


def test_e10_naive_wallclock(benchmark):
    benchmark(lambda: _naive_trial(5))


def test_e10_durs_wallclock(benchmark):
    benchmark(lambda: _durs_trial(5))
