"""E6 — ΠSBC (Theorem 2, Corollary 1): constant-round SBC, delivery at Φ+Δ.

Claims: delivery happens exactly Δ rounds after the broadcast period ends
(Φ + Δ from its start), independent of n; the fully-composed stack
(Corollary 1: Φ > 3, Δ > 2, α = 3) produces the same outputs as the
hybrid and ideal worlds; cost scales with n in messages, not rounds.
"""

from conftest import emit, once

from repro.core import build_sbc_stack


def _run(mode: str, n: int, phi: int, delta: int, seed: int = 6, senders=2):
    stack = build_sbc_stack(n=n, mode=mode, seed=seed, phi=phi, delta=delta)
    for i in range(senders):
        stack.parties[f"P{i}"].broadcast(f"msg-{i}".encode())
    delivered_at = None
    for round_index in range(phi + delta + 3):
        stack.run_rounds(1)  # executes clock round `round_index`
        if all(p.outputs for p in stack.parties.values()):
            delivered_at = round_index
            break
    return stack, delivered_at


def test_e6_delivery_round_constant_in_n(benchmark):
    def sweep():
        rows = []
        phi, delta = 5, 3
        for mode in ("ideal", "hybrid", "composed"):
            for n in (3, 5, 8):
                stack, delivered_at = _run(mode, n, phi, delta)
                rows.append(
                    {
                        "mode": mode,
                        "n": n,
                        "phi": phi,
                        "delta": delta,
                        "delivered_round": delivered_at,
                        "claimed": phi + delta,
                        "messages": stack.session.metrics.get("messages.total"),
                    }
                )
                assert delivered_at == phi + delta
        return rows

    rows = once(benchmark, sweep)
    emit(
        "E6",
        "SBC delivery at exactly phi+delta, for all n and all worlds",
        rows,
        protocol="sbc",
        n=max(row["n"] for row in rows),
        rounds=max(row["delivered_round"] for row in rows),
        modes="ideal/hybrid/composed",
    )


def test_e6_phi_delta_sweep(benchmark):
    def sweep():
        rows = []
        for phi, delta in ((4, 3), (5, 3), (6, 4), (8, 5)):
            stack, delivered_at = _run("composed", 4, phi, delta)
            rows.append(
                {
                    "phi": phi,
                    "delta": delta,
                    "delivered_round": delivered_at,
                    "claimed": phi + delta,
                }
            )
            assert delivered_at == phi + delta
        return rows

    rows = once(benchmark, sweep)
    emit("E6b", "Composed SBC across (phi, delta): delivery tracks phi+delta", rows)


def test_e6_worlds_agree(benchmark):
    def run():
        batches = {}
        for mode in ("ideal", "hybrid", "composed"):
            stack, _ = _run(mode, 4, 5, 3, seed=123, senders=3)
            batches[mode] = stack.delivered()
        assert batches["ideal"] == batches["hybrid"] == batches["composed"]
        return batches

    batches = once(benchmark, run)
    emit(
        "E6c",
        "Corollary 1 composition: identical outputs in all three worlds",
        [
            {
                "worlds": "ideal/hybrid/composed",
                "batches_equal": True,
                "batch": str(batches["ideal"]["P0"]),
            }
        ],
    )


def test_e6_hybrid_wallclock(benchmark):
    benchmark(lambda: _run("hybrid", 4, 5, 3))


def test_e6_composed_wallclock(benchmark):
    benchmark(lambda: _run("composed", 4, 5, 3))
