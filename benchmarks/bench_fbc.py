"""E3 — ΠFBC (Lemma 2): delivery at exactly Δ=2; lock beats adaptive corruption.

Claims: (i) every message is delivered to every honest party exactly two
rounds after the request, independent of n and of activation order;
(ii) corrupt-after-leak replacement — which succeeds on UBC with
probability 1 — never lands on the fair channel once the value is locked.
"""

from conftest import emit, once

from repro.attacks.adaptive import OutputRequestProbe, UBCReplaceAttack
from repro.core.stacks import build_fbc_fixture
from repro.functionalities.dummy import DummyBroadcastParty
from repro.functionalities.fbc import FairBroadcast
from repro.functionalities.ubc import UnfairBroadcast
from repro.uc.environment import Environment
from repro.uc.session import Session


def _real_world(n, seed=1, q=4, adversary=None):
    session = Session(seed=seed, adversary=adversary)
    fixture = build_fbc_fixture(session, q=q)
    parties = {}
    for i in range(n):
        party = DummyBroadcastParty(session, f"P{i}", fixture.fbc)
        fixture.fbc.attach(party)
        parties[f"P{i}"] = party
    return session, fixture, parties, Environment(session)


def _delivery_delay(n, q, seed=1):
    session, fixture, parties, env = _real_world(n, seed=seed, q=q)
    env.run_round([("P0", lambda p: p.broadcast(b"m"))])
    rounds = 0
    while not all(p.outputs for p in parties.values()):
        env.run_rounds(1)
        rounds += 1
        assert rounds < 10
    return rounds + 1, session  # +1: request round itself


def test_e3_delivery_exactly_two_rounds(benchmark):
    def sweep():
        rows = []
        for n in (3, 5, 8):
            for q in (2, 4, 8):
                elapsed, session = _delivery_delay(n, q)
                rows.append(
                    {
                        "n": n,
                        "q": q,
                        "delivery_rounds": elapsed - 1,
                        "claimed_delta": 2,
                        "ro_batches": session.metrics.get("ro.F*RO:fbc"),
                    }
                )
                assert elapsed - 1 == 2, "Lemma 2: Delta = 2"
        return rows

    rows = once(benchmark, sweep)
    emit(
        "E3",
        "PiFBC delivers after exactly Delta=2 rounds for all n, q",
        rows,
        protocol="fbc",
        n=max(row["n"] for row in rows),
        rounds=2,
    )


def test_e3_simulator_advantage_alpha_equals_two(benchmark):
    """On the ideal F^{2,2}_FBC the value is readable at age Δ−α = 0."""

    def run():
        probe = OutputRequestProbe()
        session = Session(seed=2, adversary=probe)
        fbc = FairBroadcast(session, delta=2, alpha=2)
        _parties = {
            f"P{i}": DummyBroadcastParty(session, f"P{i}", fbc) for i in range(3)
        }
        env = Environment(session)
        env.run_round([("P0", lambda p: p.broadcast(b"m"))])
        env.run_rounds(3)
        return probe.reveal_ages

    ages = once(benchmark, run)
    assert ages == [0]
    emit(
        "E3b",
        "Ideal F(2,2)_FBC: adversary reads at request age Delta-alpha = 0",
        [{"delta": 2, "alpha": 2, "reveal_age": ages[0]}],
    )


def test_e3_lock_defeats_replacement(benchmark):
    """Replacement attempts on locked values fail; on UBC they succeed."""

    def run():
        rows = []
        # Ideal FBC, attempt after the lock:
        session = Session(seed=3)
        fbc = FairBroadcast(session, delta=2, alpha=0)
        parties = {
            f"P{i}": DummyBroadcastParty(session, f"P{i}", fbc) for i in range(3)
        }
        env = Environment(session)
        tag = fbc.broadcast(parties["P0"], b"good")
        env.run_rounds(2)
        assert fbc.adv_output_request(tag) is not None  # lock it
        session.corrupt("P0")
        landed = fbc.adv_allow(tag, b"evil", "P0")
        rows.append({"channel": "FBC (locked)", "replacement_landed": landed})
        assert not landed

        # UBC for contrast:
        attack = UBCReplaceAttack(victim="P0", replacement=b"evil")
        session2 = Session(seed=3, adversary=attack)
        ubc = UnfairBroadcast(session2)
        _parties2 = {
            f"P{i}": DummyBroadcastParty(session2, f"P{i}", ubc) for i in range(3)
        }
        Environment(session2).run_round([("P0", lambda p: p.broadcast(b"good"))])
        rows.append({"channel": "UBC", "replacement_landed": bool(attack.replaced)})
        assert attack.replaced
        return rows

    rows = once(benchmark, run)
    emit("E3c", "Adaptive replacement: lands on UBC, never on locked FBC", rows)


def test_e3_wallclock(benchmark):
    benchmark(lambda: _delivery_delay(5, 4))
