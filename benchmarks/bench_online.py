"""E19 — online mode: spend preprocessed nonce pools vs sample per call.

Claim: Schnorr signing that *spends* a preprocessed ``(k, g^k)`` pool
entry (the online phase of the offline/online split) is at least 2x
faster per signature than sampling the nonce and exponentiating inside
the call, because the fixed-base exponentiation — the dominant cost at
production parameters — moved to the offline phase.  The ratio is a
single-process crypto property, so unlike E17/E18 it is asserted on
every host; an end-to-end online voting sweep (ballots burn pool
nonces) is verified for seed-for-seed digest equality alongside, with
its wall-clock recorded for the cross-PR trajectory.
"""

import os
import tempfile
import time

from conftest import emit, once

from repro.crypto.groups import GROUP_2048, TEST_GROUP, SchnorrGroup
from repro.crypto.preprocessing import build_material
from repro.crypto.randomness import spending
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign, schnorr_verify
from repro.runtime import MaterialStore, ParallelSweep, run_voting_trial
from repro.runtime.material import MaterialCursor

ONLINE_SPEEDUP_FLOOR = 2.0
SIGNATURES = 48
SWEEP_SESSIONS = 8


def _fresh_2048() -> SchnorrGroup:
    return SchnorrGroup(p=GROUP_2048.p, q=GROUP_2048.q, g=GROUP_2048.g)


def _sign_many(keypair, rng, count):
    start = time.perf_counter()
    signatures = [
        schnorr_sign(keypair, f"msg{i}".encode(), rng) for i in range(count)
    ]
    return time.perf_counter() - start, signatures


def test_e19_online_signing_beats_per_call(benchmark):
    import random

    def run():
        group = _fresh_2048()
        group.precompute_fixed_base()  # warm, as an attached worker would be
        material = build_material(group, nonces=SIGNATURES, feldman=0)
        keypair = schnorr_keygen(random.Random(7), group=group)

        # Per-call baseline: every signature samples k and pays g^k.
        percall_s, percall_sigs = _sign_many(
            keypair, random.Random(11), SIGNATURES
        )

        # Online: the same signatures spend the preprocessed pool.
        cursor = MaterialCursor(
            material.fingerprint, material, nonce_range=(0, SIGNATURES)
        )
        with spending(cursor):
            online_s, online_sigs = _sign_many(
                keypair, random.Random(11), SIGNATURES
            )

        # Correctness before speed: every signature verifies, the whole
        # pool was spent, and nothing fell back to sampling.
        for i, signature in enumerate(percall_sigs + online_sigs):
            assert schnorr_verify(
                group, keypair.public, f"msg{i % SIGNATURES}".encode(), signature
            )
        spend = cursor.spend_summary()
        assert spend["nonces_spent"] == SIGNATURES
        assert spend["nonces_sampled"] == 0

        speedup = percall_s / max(online_s, 1e-9)
        assert speedup >= ONLINE_SPEEDUP_FLOOR, (
            f"online signing only {speedup:.2f}x faster than per-call "
            f"({online_s * 1000:.1f}ms vs {percall_s * 1000:.1f}ms for "
            f"{SIGNATURES} signatures)"
        )

        # End to end: an online voting sweep over the disk store, digest
        # -verified against the inline reference spending the same plan.
        with tempfile.TemporaryDirectory() as root:
            os.environ["REPRO_MATERIAL_DIR"] = root
            try:
                MaterialStore(root).build(
                    [TEST_GROUP], nonces=SWEEP_SESSIONS * 8, feldman=8
                )
                sweep = ParallelSweep(
                    runner=run_voting_trial,
                    executor="process",
                    workers=min(os.cpu_count() or 1, 4),
                    material="shared",
                    online=True,
                    trace="full",
                    voters=3,
                )
                verdict = sweep.verify(range(SWEEP_SESSIONS))
                assert verdict.matched, "online sweep diverged from inline replay"
                assert verdict.report.online_spend["nonces_spent"] > 0
                sweep_s = verdict.report.wall_time_s
            finally:
                del os.environ["REPRO_MATERIAL_DIR"]

        rows = [
            {
                "path": "sample per call (g^k online)",
                "signatures": SIGNATURES,
                "wall_ms": round(percall_s * 1000, 2),
                "per_sig_us": round(percall_s / SIGNATURES * 1e6, 1),
            },
            {
                "path": "spend preprocessed pool",
                "signatures": SIGNATURES,
                "wall_ms": round(online_s * 1000, 2),
                "per_sig_us": round(online_s / SIGNATURES * 1e6, 1),
            },
        ]
        stats = {
            "percall_s": percall_s,
            "online_s": online_s,
            "speedup": speedup,
            "sweep_s": sweep_s,
        }
        return rows, stats

    (rows, stats) = once(benchmark, run)
    emit(
        "E19",
        f"GROUP_2048 signing: pool spend vs per-call ({SIGNATURES} signatures)",
        rows,
        protocol="schnorr",
        n=None,
        rounds=None,
        backend="pooled",
        material_source="disk",
        online=True,
        online_speedup=round(stats["speedup"], 3),
        percall_ms=round(stats["percall_s"] * 1000, 3),
        online_ms=round(stats["online_s"] * 1000, 3),
        online_sweep_s=round(stats["sweep_s"], 6),
        sweep_sessions=SWEEP_SESSIONS,
        signatures=SIGNATURES,
    )
