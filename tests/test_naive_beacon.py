"""The naive commit-in-the-clear beacon baseline."""

from repro.baselines.naive_beacon import build_naive_beacon
from repro.functionalities.durs import URS_LEN
from repro.uc.environment import Environment
from repro.uc.session import Session


def _run(seed=1, n=4, close_round=2):
    session = Session(seed=seed)
    parties = build_naive_beacon(session, [f"P{i}" for i in range(n)], close_round)
    env = Environment(session)
    env.run_round([(pid, lambda p: p.contribute()) for pid in parties])
    env.run_rounds(close_round + 2)
    return session, parties


def test_all_agree():
    _session, parties = _run()
    values = {party.urs for party in parties.values()}
    assert len(values) == 1
    assert len(next(iter(values))) == URS_LEN


def test_output_emitted_once():
    _session, parties = _run()
    for party in parties.values():
        assert len([o for o in party.outputs if o[0] == "URS"]) == 1


def test_contribution_idempotent():
    session = Session(seed=2)
    parties = build_naive_beacon(session, ["P0", "P1"], close_round=2)
    env = Environment(session)
    env.run_round([("P0", lambda p: (p.contribute(), p.contribute()))])
    env.run_round([("P1", lambda p: p.contribute())])
    env.run_rounds(3)
    # P0 contributed once despite the double call: 2 contributions total.
    assert len(parties["P1"].contributions) == 2


def test_late_contribution_ignored():
    session = Session(seed=3)
    parties = build_naive_beacon(session, ["P0", "P1", "P2"], close_round=1)
    env = Environment(session)
    env.run_round([("P0", lambda p: p.contribute())])
    env.run_rounds(2)  # past close_round
    env.run_round([("P1", lambda p: p.contribute())])
    env.run_rounds(2)
    for party in parties.values():
        if party.urs is not None:
            assert len(party.contributions) == 1  # the late one never counted


def test_non_contribution_payloads_ignored():
    session = Session(seed=4)
    parties = build_naive_beacon(session, ["P0", "P1"], close_round=2)
    ubc = parties["P0"].ubc
    session.corrupt("P1")
    ubc.adv_broadcast("P1", b"short")  # wrong length: not a contribution
    ubc.adv_broadcast("P1", ("not", "bytes"))
    env = Environment(session)
    env.run_round([("P0", lambda p: p.contribute())])
    env.run_rounds(3)
    assert len(parties["P0"].contributions) == 1


def test_leaks_expose_contributions():
    """The defining weakness: contributions are in the adversary's view."""
    session, parties = _run(seed=5)
    leaked = [
        d[2]
        for _f, d in session.adversary.observed
        if isinstance(d, tuple) and len(d) == 4 and d[0] == "Broadcast"
    ]
    assert len(leaked) == 4  # every contribution visible in the clear
