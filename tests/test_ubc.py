"""FUBC vs ΠUBC (Lemma 1): matching behaviour, and UBC's unfairness."""

import pytest

from repro.attacks.adaptive import UBCReplaceAttack
from repro.attacks.rushing import UBCCopyAttack
from repro.functionalities.dummy import DummyBroadcastParty
from repro.functionalities.ubc import UnfairBroadcast
from repro.protocols.ubc_protocol import UBCProtocolAdapter
from repro.uc.entity import CorruptionError
from repro.uc.environment import Environment
from repro.uc.session import Session

from tests.conftest import broadcast_action


def _world(real: bool, seed: int = 1, n: int = 4, adversary=None):
    session = Session(seed=seed, adversary=adversary)
    service = (
        UBCProtocolAdapter(session) if real else UnfairBroadcast(session)
    )
    parties = {
        f"P{i}": DummyBroadcastParty(session, f"P{i}", service) for i in range(n)
    }
    return session, service, parties, Environment(session)


@pytest.mark.parametrize("real", [False, True])
def test_broadcast_delivered_to_all(real):
    session, service, parties, env = _world(real)
    env.run_round([("P0", broadcast_action(b"msg"))])
    for party in parties.values():
        assert ("Broadcast", b"msg", "P0") in party.outputs


@pytest.mark.parametrize("real", [False, True])
def test_multiple_messages_per_round(real):
    _session, _service, parties, env = _world(real)
    env.run_round(
        [
            ("P0", broadcast_action(b"one")),
            ("P0", broadcast_action(b"two")),
            ("P1", broadcast_action(b"three")),
        ]
    )
    received = [m for _, m, _ in parties["P2"].outputs]
    assert sorted(received) == [b"one", b"three", b"two"]


@pytest.mark.parametrize("real", [False, True])
def test_agreement(real):
    _session, _service, parties, env = _world(real)
    env.run_round([("P1", broadcast_action(("structured", 1)))])
    views = {pid: tuple(party.outputs) for pid, party in parties.items()}
    assert len(set(views.values())) == 1


@pytest.mark.parametrize("real", [False, True])
def test_ideal_real_outputs_identical(real):
    """The executable content of Lemma 1: same script, same outputs."""
    session, _service, parties, env = _world(real, seed=42)
    env.run_round([("P0", broadcast_action(b"a")), ("P2", broadcast_action(b"b"))])
    env.run_round([("P1", broadcast_action(b"c"))])
    outputs = {pid: [m for _, m, _ in party.outputs] for pid, party in parties.items()}
    expected = {pid: [b"a", b"b", b"c"] for pid in parties}
    assert {pid: sorted(v) for pid, v in outputs.items()} == expected


@pytest.mark.parametrize("real", [False, True])
def test_unfairness_message_leaked_before_delivery(real):
    session, service, parties, env = _world(real)
    if real:
        service.broadcast(parties["P0"], b"secret")
        leaks = [d for f, d in session.adversary.observed if d[0] == "Broadcast"]
        assert any(b"secret" in repr(leak).encode() or leak[1] == b"secret" for leak in leaks)
    else:
        service.broadcast(parties["P0"], b"secret")
        assert any(
            d[0] == "Broadcast" and d[2] == b"secret"
            for _f, d in session.adversary.observed
            if isinstance(d, tuple) and len(d) == 4
        )
    # nothing delivered yet
    assert parties["P1"].outputs == []


@pytest.mark.parametrize("real", [False, True])
def test_adaptive_replacement_succeeds(real):
    """UBC is unfair: corrupt-after-leak replacement lands (both worlds)."""
    attack = UBCReplaceAttack(victim="P0", replacement=b"replaced")
    session, _service, parties, env = _world(real, adversary=attack)
    env.run_round([("P0", broadcast_action(b"original"))])
    assert attack.replaced == [b"original"]
    received = [m for _, m, _ in parties["P1"].outputs]
    assert received == [b"replaced"]


@pytest.mark.parametrize("real", [False, True])
def test_copy_attack_succeeds_on_ubc(real):
    """No simultaneity at the UBC layer: the copy attack wins."""
    attack = UBCCopyAttack(attacker="P3")
    session, _service, parties, env = _world(real, adversary=attack)
    env.run_round([("P0", broadcast_action(b"sealed-bid-42"))])
    assert attack.copied == [b"sealed-bid-42"]
    received = [m for _, m, _ in parties["P1"].outputs]
    assert received.count(b"sealed-bid-42") == 2  # original + copy


def test_adv_broadcast_requires_corruption():
    session, service, parties, _env = _world(False)
    with pytest.raises(CorruptionError):
        service.adv_broadcast("P0", b"x")


def test_pending_flushed_only_on_own_tick():
    session, service, parties, env = _world(False, n=2)
    service.broadcast(parties["P0"], b"m")
    assert service.pending_of("P0") == [b"m"]
    # P1's tick does not flush P0's queue:
    service.on_party_tick(parties["P1"])
    assert service.pending_of("P0") == [b"m"]
    service.on_party_tick(parties["P0"])
    assert service.pending_of("P0") == []
