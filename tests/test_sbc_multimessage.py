"""Multi-message senders and cross-world equality with busy schedules."""

import pytest

from repro.core import build_sbc_stack

ALL_MODES = ("ideal", "hybrid", "composed")


@pytest.mark.parametrize("mode", ALL_MODES)
def test_one_sender_many_messages(mode):
    stack = build_sbc_stack(n=3, mode=mode, seed=91, phi=5)
    party = stack.parties["P0"]
    party.broadcast(b"m1")
    stack.run_rounds(1)
    party.broadcast(b"m2")
    party.broadcast(b"m3")
    stack.run_until_delivery()
    for batch in stack.delivered().values():
        assert batch == [b"m1", b"m2", b"m3"]


def test_busy_schedule_identical_across_worlds():
    script = {
        0: [("P0", b"r0-a"), ("P1", b"r0-b")],
        1: [("P2", b"r1-c"), ("P0", b"r1-d")],
    }
    results = {}
    for mode in ALL_MODES:
        stack = build_sbc_stack(n=4, mode=mode, seed=92, phi=5)
        for message_round in (0, 1):
            for pid, payload in script[message_round]:
                stack.parties[pid].broadcast(payload)
            stack.run_rounds(1)
        stack.run_until_delivery()
        results[mode] = stack.delivered()
    assert results["ideal"] == results["hybrid"] == results["composed"]
    assert sorted(results["ideal"]["P3"]) == [b"r0-a", b"r0-b", b"r1-c", b"r1-d"]


@pytest.mark.parametrize("mode", ("hybrid", "composed"))
def test_sbc_batch_leak_timing(mode):
    """The adversary's batch preview arrives exactly at t_end + Δ − α."""
    stack = build_sbc_stack(n=3, mode=mode, seed=93)
    stack.parties["P0"].broadcast(b"m")
    stack.run_rounds(stack.phi + stack.delta + 2)
    # In the protocol worlds the analogue of FSBC's preview is the moment
    # the adversary could first decrypt: the TLE leakage horizon.  We
    # check the *ideal-world* timing against the trace instead:
    ideal = build_sbc_stack(n=3, mode="ideal", seed=93)
    ideal.parties["P0"].broadcast(b"m")
    ideal.run_rounds(ideal.phi + ideal.delta + 2)
    previews = [
        e
        for e in ideal.session.log.filter(kind="leak", source="FSBC")
        if e.detail and e.detail[0] == "Broadcast"
    ]
    assert previews
    alpha = ideal.sbc.alpha
    assert previews[0].time == ideal.phi + ideal.delta - alpha


def test_empty_session_never_delivers():
    """No broadcast ever happens: no period opens, nothing is delivered."""
    stack = build_sbc_stack(n=3, mode="hybrid", seed=94)
    stack.run_rounds(15)
    assert all(not party.outputs for party in stack.parties.values())
