"""Hypothesis property tests for the crypto primitives.

Algebraic laws and completeness properties checked over generated
inputs rather than hand-picked vectors: group laws (including the
``discrete_log_small`` bound semantics), ElGamal and SKE roundtrips,
Shamir reconstruction from *any* ``t + 1`` share subset, and
Schnorr/Σ-protocol completeness.  All runs are seeded and
example-bounded (``derandomize=True``) so CI time stays deterministic.
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.elgamal import (
    elgamal_decrypt,
    elgamal_decrypt_exponent,
    elgamal_encrypt,
    elgamal_encrypt_exponent,
    elgamal_keygen,
    elgamal_multiply,
)
from repro.crypto.groups import TEST_GROUP
from repro.crypto.schnorr import schnorr_keygen, schnorr_sign, schnorr_verify
from repro.crypto.shamir import (
    feldman_share,
    feldman_verify,
    reconstruct_secret,
    share_secret,
)
from repro.crypto.ske import DecryptionError, ske_decrypt, ske_encrypt, ske_gen
from repro.crypto.zkp import (
    ballot_prove,
    ballot_verify,
    cp_prove,
    cp_verify,
    pok_prove,
    pok_verify,
)

G = TEST_GROUP

#: Bounded, derandomized profile: identical examples on every run.
CI = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

scalars = st.integers(min_value=1, max_value=G.q - 1)
exponents = st.integers(min_value=0, max_value=G.q - 1)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


# ---------------------------------------------------------------------------
# Group laws
# ---------------------------------------------------------------------------


@CI
@given(a=exponents, b=exponents)
def test_group_exponent_homomorphism(a, b):
    assert G.mul(G.power_of_g(a), G.power_of_g(b)) == G.power_of_g((a + b) % G.q)
    assert G.power_of_g(a) == pow(G.g, a, G.p)


@CI
@given(a=scalars, b=scalars, c=scalars)
def test_group_mul_laws(a, b, c):
    x, y, z = G.power_of_g(a), G.power_of_g(b), G.power_of_g(c)
    assert G.mul(G.mul(x, y), z) == G.mul(x, G.mul(y, z))  # associative
    assert G.mul(x, y) == G.mul(y, x)  # abelian
    assert G.mul(x, 1) == x  # identity
    assert G.mul(x, G.inv(x)) == 1  # inverse
    assert G.is_member(G.mul(x, y))  # closure


@CI
@given(e=st.integers(min_value=0, max_value=499))
def test_discrete_log_small_within_bound(e):
    assert G.discrete_log_small(G.power_of_g(e), bound=500) == e


@CI
@given(e=st.integers(min_value=500, max_value=5000))
def test_discrete_log_small_rejects_out_of_bound(e):
    with pytest.raises(ValueError):
        G.discrete_log_small(G.power_of_g(e), bound=500)


# ---------------------------------------------------------------------------
# ElGamal
# ---------------------------------------------------------------------------


@CI
@given(seed=seeds, m=scalars)
def test_elgamal_roundtrip(seed, m):
    rng = _rng(seed)
    secret, public = elgamal_keygen(rng, G)
    message = G.power_of_g(m)
    ciphertext = elgamal_encrypt(G, public, message, rng)
    assert elgamal_decrypt(G, secret, ciphertext) == message


@CI
@given(seed=seeds, a=st.integers(min_value=0, max_value=800),
       b=st.integers(min_value=0, max_value=800))
def test_elgamal_exponent_homomorphism(seed, a, b):
    rng = _rng(seed)
    secret, public = elgamal_keygen(rng, G)
    ca = elgamal_encrypt_exponent(G, public, a, rng)
    cb = elgamal_encrypt_exponent(G, public, b, rng)
    combined = elgamal_multiply(G, ca, cb)
    assert elgamal_decrypt_exponent(G, secret, combined, bound=2000) == a + b


# ---------------------------------------------------------------------------
# SKE
# ---------------------------------------------------------------------------


@CI
@given(seed=seeds, plaintext=st.binary(min_size=0, max_size=256))
def test_ske_roundtrip(seed, plaintext):
    rng = _rng(seed)
    key = ske_gen(rng)
    assert ske_decrypt(key, ske_encrypt(key, plaintext, rng)) == plaintext


@CI
@given(seed=seeds, plaintext=st.binary(min_size=1, max_size=64),
       position=st.integers(min_value=0, max_value=10**6))
def test_ske_rejects_any_single_byte_tamper(seed, plaintext, position):
    rng = _rng(seed)
    key = ske_gen(rng)
    ciphertext = bytearray(ske_encrypt(key, plaintext, rng))
    index = position % len(ciphertext)
    ciphertext[index] ^= 0x01
    with pytest.raises(DecryptionError):
        ske_decrypt(key, bytes(ciphertext))


@CI
@given(seed=seeds, plaintext=st.binary(min_size=0, max_size=64))
def test_ske_rejects_wrong_key(seed, plaintext):
    rng = _rng(seed)
    key, other = ske_gen(rng), ske_gen(rng)
    with pytest.raises(DecryptionError):
        ske_decrypt(other, ske_encrypt(key, plaintext, rng))


# ---------------------------------------------------------------------------
# Shamir / Feldman
# ---------------------------------------------------------------------------


@CI
@given(seed=seeds, secret=st.integers(min_value=0, max_value=G.q - 1),
       threshold=st.integers(min_value=0, max_value=5),
       extra=st.integers(min_value=1, max_value=4),
       subset_seed=seeds)
def test_shamir_reconstructs_from_any_t_plus_1_subset(
    seed, secret, threshold, extra, subset_seed
):
    rng = _rng(seed)
    parties = threshold + extra
    shares = share_secret(secret, threshold, parties, G.q, rng)
    picker = _rng(subset_seed)
    subset = picker.sample(shares, threshold + 1)
    assert reconstruct_secret(subset, G.q) == secret
    # Full reconstruction agrees too.
    assert reconstruct_secret(shares, G.q) == secret


@CI
@given(seed=seeds, secret=st.integers(min_value=0, max_value=G.q - 1),
       threshold=st.integers(min_value=0, max_value=3),
       extra=st.integers(min_value=1, max_value=3))
def test_feldman_shares_all_verify(seed, secret, threshold, extra):
    rng = _rng(seed)
    shares, commitment = feldman_share(G, secret, threshold, threshold + extra, rng)
    assert commitment.degree == threshold
    assert all(feldman_verify(G, share, commitment) for share in shares)
    # A perturbed share must not verify.
    bad = shares[0].__class__(x=shares[0].x, y=(shares[0].y + 1) % G.q)
    assert not feldman_verify(G, bad, commitment)


# ---------------------------------------------------------------------------
# Schnorr signatures and Σ-protocols: completeness
# ---------------------------------------------------------------------------


@CI
@given(seed=seeds, message=st.binary(min_size=0, max_size=128))
def test_schnorr_completeness(seed, message):
    rng = _rng(seed)
    keypair = schnorr_keygen(rng, G)
    signature = schnorr_sign(keypair, message, rng)
    assert schnorr_verify(G, keypair.public, message, signature)
    assert not schnorr_verify(G, keypair.public, message + b"x", signature)


@CI
@given(seed=seeds, secret=scalars, base_exp=scalars)
def test_pok_completeness(seed, secret, base_exp):
    rng = _rng(seed)
    base = G.power_of_g(base_exp)
    public = G.exp(base, secret)
    proof = pok_prove(G, base, public, secret, rng)
    assert pok_verify(G, base, public, proof)
    assert not pok_verify(G, base, G.mul(public, G.g), proof)


@CI
@given(seed=seeds, secret=scalars, b1=scalars, b2=scalars)
def test_cp_completeness(seed, secret, b1, b2):
    rng = _rng(seed)
    base1, base2 = G.power_of_g(b1), G.power_of_g(b2)
    public1, public2 = G.exp(base1, secret), G.exp(base2, secret)
    proof = cp_prove(G, base1, public1, base2, public2, secret, rng)
    assert cp_verify(G, base1, public1, base2, public2, proof)
    assert not cp_verify(G, base1, G.mul(public1, G.g), base2, public2, proof)


@CI
@given(seed=seeds, secret=scalars, seed_exp=scalars,
       vote_index=st.integers(min_value=0, max_value=2))
def test_ballot_proof_completeness(seed, secret, seed_exp, vote_index):
    rng = _rng(seed)
    choices = [0, 1, 2]
    vote = choices[vote_index]
    ballot_seed = G.power_of_g(seed_exp)
    w = G.power_of_g(secret)
    ballot = G.mul(G.exp(ballot_seed, secret), G.power_of_g(vote))
    proof = ballot_prove(G, ballot_seed, w, ballot, secret, vote, choices, rng)
    assert ballot_verify(G, ballot_seed, w, ballot, proof, choices)
    # The same proof must not verify against a different ballot.
    other = G.mul(ballot, G.g)
    assert not ballot_verify(G, ballot_seed, w, other, proof, choices)
