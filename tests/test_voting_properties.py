"""Property-based voting: random electorates always self-tally correctly."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_voting_stack
from repro.protocols.voting_protocol import Election


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    votes=st.lists(
        st.integers(min_value=0, max_value=2), min_size=2, max_size=5
    ),
)
def test_random_electorates_tally_correctly(seed, votes):
    candidates = ("red", "green", "blue")
    stack = build_voting_stack(
        voters=len(votes), mode="hybrid", seed=seed, candidates=candidates
    )
    for authority in stack.authorities.values():
        authority.deal()
    stack.run_rounds(1)
    expected = Counter()
    for index, choice_index in enumerate(votes):
        choice = candidates[choice_index]
        stack.parties[f"V{index}"].vote(choice)
        expected[choice] += 1
    for candidate in candidates:
        expected.setdefault(candidate, 0)
    stack.run_until_result()
    for result in stack.results().values():
        assert result == dict(expected)


@settings(max_examples=10, deadline=None)
@given(
    voters=st.integers(min_value=1, max_value=9),
    candidates=st.integers(min_value=1, max_value=4),
    total=st.integers(min_value=0, max_value=10_000),
)
def test_tally_encoding_roundtrip(voters, candidates, total):
    """decode(encode(counts)) == counts whenever counts fit the base."""
    election = Election(
        voters=tuple(f"V{i}" for i in range(voters)),
        candidates=tuple(f"C{j}" for j in range(candidates)),
    )
    base = voters + 1
    counts = {}
    remaining = total
    for name in election.candidates:
        counts[name] = remaining % base
        remaining //= base
    encoded = sum(
        counts[name] * election.exponent_of(name) for name in election.candidates
    )
    assert election.decode_tally(encoded) == counts
    assert encoded < election.tally_bound
