"""Hash utilities: determinism, domain separation, XOR, expansion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import (
    DIGEST_SIZE,
    expand,
    hash_bytes,
    hash_to_int,
    xor_bytes,
)


def test_hash_deterministic():
    assert hash_bytes(b"a", b"b") == hash_bytes(b"a", b"b")


def test_hash_length():
    assert len(hash_bytes(b"x")) == DIGEST_SIZE


def test_domain_separation():
    assert hash_bytes(b"x", domain=b"one") != hash_bytes(b"x", domain=b"two")


def test_length_prefixing_prevents_ambiguity():
    assert hash_bytes(b"ab", b"c") != hash_bytes(b"a", b"bc")


def test_hash_to_int_in_range():
    for modulus in (2, 3, 17, 2**255 - 19):
        value = hash_to_int(b"seed", modulus=modulus)
        assert 0 <= value < modulus


def test_hash_to_int_invalid_modulus():
    with pytest.raises(ValueError):
        hash_to_int(b"x", modulus=0)


def test_xor_roundtrip():
    a, b = b"\x01\x02\x03", b"\xff\x00\x10"
    assert xor_bytes(xor_bytes(a, b), b) == a


def test_xor_length_mismatch():
    with pytest.raises(ValueError):
        xor_bytes(b"ab", b"a")


def test_expand_length_and_determinism():
    out = expand(b"seed", 100)
    assert len(out) == 100
    assert out == expand(b"seed", 100)
    assert out != expand(b"seed2", 100)


def test_expand_prefix_consistency():
    assert expand(b"s", 64)[:32] == expand(b"s", 32)


@given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
def test_xor_involution_property(a, b):
    if len(a) == len(b):
        assert xor_bytes(xor_bytes(a, b), a) == b


@given(st.integers(min_value=2, max_value=2**128), st.binary(max_size=32))
def test_hash_to_int_range_property(modulus, seed):
    assert 0 <= hash_to_int(seed, modulus=modulus) < modulus
